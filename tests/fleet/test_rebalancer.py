"""Transfer-ledger bookkeeping and the rebalance planners."""

from repro.fleet import TransferLedger, plan_greedy, plan_proportional


def test_ledger_records_and_sums():
    ledger = TransferLedger()
    ledger.record("a", "b", 5, "reserve")
    ledger.record("c", "b", 3, "reclaim")
    ledger.record("b", "a", 2, "reserve")
    assert len(ledger) == 3
    assert [e.serial for e in ledger.entries] == [0, 1, 2]
    assert ledger.inbound("b") == 8 and ledger.outbound("b") == 2
    assert ledger.inbound("a") == 2 and ledger.outbound("a") == 5
    assert ledger.entries[1].snapshot()["kind"] == "reclaim"


def test_greedy_drains_richest_first():
    donors = [("a", 3), ("b", 10), ("c", 5)]
    assert plan_greedy(12, donors) == [("b", 10), ("c", 2)]
    # Ties break by name; zero-spare donors are skipped.
    assert plan_greedy(4, [("z", 2), ("a", 2), ("m", 0)]) == [
        ("a", 2), ("z", 2)]
    assert plan_greedy(0, donors) == []
    # Unsatisfiable need takes everything available.
    assert plan_greedy(100, donors) == [("b", 10), ("c", 5), ("a", 3)]


def test_proportional_spreads_by_spare():
    donors = [("a", 10), ("b", 10)]
    assert sorted(plan_proportional(6, donors)) == [("a", 3), ("b", 3)]
    # Proportionality: the bigger donor gives more.
    plan = dict(plan_proportional(6, [("a", 20), ("b", 4)]))
    assert plan["a"] > plan["b"]
    # Conservation: exactly min(need, pool) moves.
    for need in (1, 7, 24, 100):
        plan = plan_proportional(need, [("a", 9), ("b", 3), ("c", 12)])
        assert sum(take for _, take in plan) == min(need, 24)
        assert all(take > 0 for _, take in plan)
    assert plan_proportional(5, []) == []
    assert plan_proportional(0, donors) == []


def test_planners_never_exceed_spare():
    donors = [("a", 2), ("b", 1), ("c", 7)]
    for planner in (plan_greedy, plan_proportional):
        for need in range(0, 15):
            plan = planner(need, donors)
            spare = dict(donors)
            for name, take in plan:
                assert 0 < take <= spare[name]
