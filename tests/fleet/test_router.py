"""FleetRouter behaviour: placement, routing, rebalancing, lifecycle."""

import random

import pytest

from repro.core.requests import Request, RequestKind
from repro.errors import ControllerError, FleetError
from repro.fleet import FleetConfig, FleetRouter
from repro.service import ControllerSession, SessionConfig
from repro.service.config import ControllerSpec
from repro.workloads.catalogue import get_scenario
from repro.workloads.scenarios import TreeMirror, request_spec


def drive(fleet, steps, clients=8, seed=0, kinds=(RequestKind.ADD_LEAF,)):
    """Serve ``steps`` random feasible requests via origin routing."""
    rng = random.Random(seed)
    for _ in range(steps):
        client = f"client-{rng.randrange(clients)}"
        tree = fleet.tree_of(client)
        node = rng.choice(list(tree.nodes()))
        fleet.serve(Request(rng.choice(kinds), node), origin=client)


# ----------------------------------------------------------------------
# Placement and routing.
# ----------------------------------------------------------------------
def test_placement_is_deterministic_and_sticky():
    config = FleetConfig.of(shards=4, m_total=400, w_total=8, u=1024)
    fleet = FleetRouter(config)
    twin = FleetRouter(FleetConfig.of(shards=4, m_total=400, w_total=8,
                                      u=1024))
    for i in range(50):
        origin = f"user-{i}"
        index = fleet.place(origin)
        assert index == fleet.place(origin)          # sticky
        assert index == fleet.ring_place(origin)     # ring answer
        assert index == twin.place(origin)           # cross-instance
    assert len(fleet.placements) == 50
    # The ring spreads origins over more than one shard.
    assert len(set(fleet.placements.values())) > 1
    fleet.close(), twin.close()


def test_hash_and_sticky_policies_agree_under_fixed_ring():
    sticky = FleetRouter(FleetConfig.of(shards=3, m_total=90, w_total=6,
                                        u=512, placement="sticky"))
    hashed = FleetRouter(FleetConfig.of(shards=3, m_total=90, w_total=6,
                                        u=512, placement="hash"))
    for i in range(40):
        assert sticky.place(f"o{i}") == hashed.place(f"o{i}")
    sticky.close(), hashed.close()


def test_node_ownership_routes_without_origin():
    config = FleetConfig.of(shards=2, m_total=100, w_total=4, u=512)
    fleet = FleetRouter(config)
    for shard in fleet.shards:
        record = fleet.serve(Request(RequestKind.ADD_LEAF,
                                     shard.tree.root))
        assert record.outcome.granted
        # The new leaf is registered to the same shard.
        leaf = record.outcome.new_node
        assert fleet.owner_of(leaf) == shard.index
    fleet.close()


def test_foreign_node_and_cross_shard_origin_are_rejected_eagerly():
    from repro.tree.dynamic_tree import DynamicTree
    config = FleetConfig.of(shards=2, m_total=100, w_total=4, u=512)
    fleet = FleetRouter(config)
    foreign = DynamicTree()
    with pytest.raises(FleetError, match="not owned"):
        fleet.serve(Request(RequestKind.ADD_LEAF, foreign.root))
    # An origin placed on shard A cannot target shard B's tree.
    origin = "pinned"
    index = fleet.place(origin)
    other = fleet.shards[1 - index].tree
    with pytest.raises(FleetError, match="places on shard"):
        fleet.serve(Request(RequestKind.ADD_LEAF, other.root),
                    origin=origin)
    fleet.close()


def test_removed_node_tombstone_routes_to_cancel():
    config = FleetConfig.of(shards=2, m_total=100, w_total=4, u=512)
    fleet = FleetRouter(config)
    shard = fleet.shards[0]
    record = fleet.serve(Request(RequestKind.ADD_LEAF, shard.tree.root))
    leaf = record.outcome.new_node
    assert fleet.serve(Request(RequestKind.REMOVE_LEAF,
                               leaf)).outcome.granted
    # The node is gone, but its tombstone still routes the request to
    # the owning engine, which answers CANCELLED.
    late = fleet.serve(Request(RequestKind.ADD_LEAF, leaf))
    assert late.outcome.status.value == "cancelled"
    fleet.close()


# ----------------------------------------------------------------------
# Budget lifecycle: rollover, transfers, reject wave.
# ----------------------------------------------------------------------
def test_tranche_rollover_borrows_from_siblings():
    config = FleetConfig.of(shards=2, m_total=60, w_total=8, u=2048,
                            tranche=10, weights=[3, 1])
    fleet = FleetRouter(config)
    drive(fleet, 200, seed=3)
    tally = fleet.tally()
    assert tally["granted"] == 60            # the full global budget
    assert tally["rejected"] == 140          # then the reject wave
    assert fleet.reject_wave
    assert len(fleet.ledger) >= 1            # cross-shard transfers flowed
    assert fleet.audit().passed
    # Ledger double-entry: per-shard books match the ledger columns.
    for shard in fleet.shards:
        assert shard.inbound == fleet.ledger.inbound(shard.name)
        assert shard.outbound == fleet.ledger.outbound(shard.name)
    fleet.close()


@pytest.mark.parametrize("policy", ["greedy", "proportional"])
def test_fleet_waste_is_zero_at_reject_wave(policy):
    """The fleet rejects only once the global budget is fully granted:
    clawback recovers every unspent permit before the wave starts."""
    config = FleetConfig.of(shards=3, m_total=45, w_total=9, u=2048,
                            tranche=6, rebalance=policy)
    fleet = FleetRouter(config)
    drive(fleet, 150, seed=policy == "greedy")
    assert fleet.granted_total == config.m_total
    assert fleet.tally()["rejected"] > 0
    report = fleet.audit()
    assert report.passed, report.violations[:3]
    fleet.close()


def test_reclaim_transfers_drain_live_siblings():
    # Shard 1 gets nearly nothing; all load lands on it, so it must
    # reclaim spare locked inside shard 0's live session.
    config = FleetConfig.of(shards=2, m_total=40, w_total=4, u=2048,
                            weights=[39, 1])
    fleet = FleetRouter(config)
    starved = fleet.shards[1]
    for _ in range(10):
        fleet.serve(Request(RequestKind.ADD_LEAF, starved.tree.root))
    kinds = {entry.kind for entry in fleet.ledger.entries}
    assert "reclaim" in kinds
    assert starved.granted == 10
    assert fleet.audit().passed
    fleet.close()


def test_zero_allocation_shard_still_serves_by_borrowing():
    config = FleetConfig.of(shards=2, m_total=1, w_total=2, u=512,
                            weights=[1, 1000])
    fleet = FleetRouter(config)
    poor = min(fleet.shards, key=lambda s: s.allocation)
    assert poor.allocation == 0
    record = fleet.serve(Request(RequestKind.ADD_LEAF, poor.tree.root))
    assert record.outcome.granted
    assert fleet.audit().passed
    fleet.close()


# ----------------------------------------------------------------------
# Session-surface parity.
# ----------------------------------------------------------------------
def test_single_shard_matches_plain_session_bit_for_bit():
    spec = get_scenario("mixed_flood").scaled(0.25)
    fleet_tree = spec.build_tree(seed=11)
    stream = [request_spec(r) for r in spec.stream(fleet_tree, seed=12)]
    fleet = FleetRouter(
        FleetConfig.of(shards=1, m_total=spec.m, w_total=spec.w, u=spec.u),
        trees=[fleet_tree])
    fleet_records = fleet.serve_stream(
        TreeMirror(fleet_tree).requests(stream))

    plain_tree = spec.build_tree(seed=11)
    plain = ControllerSession(
        SessionConfig(controller=ControllerSpec(
            "terminating", m=spec.m, w=spec.w, u=spec.u)),
        tree=plain_tree)
    plain_records = [plain.serve(r)
                     for r in TreeMirror(plain_tree).requests(stream)]

    assert fleet.tally() == plain.tally()
    assert (fleet.shards[0].counters.snapshot()
            == plain.controller.counters.snapshot())
    assert ([r.outcome.status for r in fleet_records]
            == [r.outcome.status for r in plain_records])
    assert fleet.audit().passed
    fleet.close(), plain.close()


def test_submit_drain_matches_serve_and_is_exactly_once():
    def build():
        return FleetRouter(FleetConfig.of(shards=2, m_total=80, w_total=4,
                                          u=1024))

    rng = random.Random(9)
    plan = [(f"c{rng.randrange(5)}", rng.random()) for _ in range(60)]

    served = build()
    for client, pick in plan:
        tree = served.tree_of(client)
        nodes = list(tree.nodes())
        served.serve(Request(RequestKind.ADD_LEAF,
                             nodes[int(pick * len(nodes))]), origin=client)

    queued = build()
    tickets = []
    for client, pick in plan:
        tree = queued.tree_of(client)
        nodes = list(tree.nodes())
        tickets.append(queued.submit(
            Request(RequestKind.ADD_LEAF, nodes[int(pick * len(nodes))]),
            origin=client))
    drained = list(queued.drain())
    assert len(drained) == len(plan)
    assert queued.tally() == served.tally()
    # Exactly-once: drained records stay readable through tickets, and
    # a second drain yields nothing.
    assert [t.result().envelope_id for t in tickets] == [
        r.envelope_id for r in drained]
    assert list(queued.drain()) == []
    served.close(), queued.close()


def test_backpressure_at_the_fleet_window():
    config = FleetConfig.of(shards=2, m_total=50, w_total=4, u=512,
                            max_in_flight=4)
    fleet = FleetRouter(config)
    root = fleet.shards[0].tree.root
    tickets = [fleet.submit(Request(RequestKind.PLAIN, root))
               for _ in range(6)]
    verdicts = [t.result().verdict.value for t in tickets]
    assert verdicts.count("backpressure") == 2
    assert fleet.backpressured == 2
    fleet.close()


def test_close_is_idempotent_and_refuses_new_work():
    fleet = FleetRouter(FleetConfig.of(shards=2, m_total=10, w_total=2,
                                       u=64))
    root = fleet.shards[0].tree.root
    with fleet:
        fleet.serve(Request(RequestKind.PLAIN, root))
    fleet.close()  # idempotent
    assert fleet.closed
    with pytest.raises(ControllerError, match="closed"):
        fleet.serve(Request(RequestKind.PLAIN, root))
    with pytest.raises(ControllerError, match="closed"):
        fleet.submit(Request(RequestKind.PLAIN, root))


def test_gateway_fronts_a_fleet_unchanged():
    from repro.gateway import Gateway
    from repro.metrics.invariants import audit_gateway
    fleet = FleetRouter(FleetConfig.of(shards=2, m_total=200, w_total=4,
                                       u=1024))
    gateway = Gateway(fleet)
    rng = random.Random(21)
    requests = []
    for i in range(40):
        tree = fleet.shards[i % 2].tree
        requests.append(Request(RequestKind.ADD_LEAF,
                                rng.choice(list(tree.nodes()))))
    tickets = gateway.submit_many(requests)
    gateway.run_until_idle()
    assert all(t.result().record.verdict.value == "granted"
               for t in tickets)
    report = audit_gateway(gateway)
    assert report.passed, report.violations[:3]
    gateway.close()
