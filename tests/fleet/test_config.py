"""Fleet config validation and the budget carve."""

import pytest

from repro.errors import ConfigError
from repro.fleet import FleetConfig, ShardSpec, carve
from repro.service.config import ControllerSpec


def template(u=1024, **options):
    return ControllerSpec("terminating", m=0, w=0, u=u, options=options)


def test_carve_conserves_and_is_proportional():
    shares = carve(100, [1, 1, 1, 1])
    assert shares == (25, 25, 25, 25)
    shares = carve(10, [3, 1])
    assert sum(shares) == 10 and shares[0] > shares[1]
    # Remainders distribute without minting or burning.
    for total in (0, 1, 7, 97):
        for weights in ([1], [1, 2, 3], [5, 1, 1, 1]):
            assert sum(carve(total, weights)) == total


def test_carve_rejects_bad_inputs():
    with pytest.raises(ConfigError):
        carve(-1, [1])
    with pytest.raises(ConfigError):
        carve(10, [])
    with pytest.raises(ConfigError):
        carve(10, [1, 0])


def test_shard_spec_validates_eagerly():
    with pytest.raises(ConfigError, match="non-empty"):
        ShardSpec(name="", template=template())
    with pytest.raises(ConfigError, match="weight"):
        ShardSpec(name="a", template=template(), weight=0)
    with pytest.raises(ConfigError, match="cannot shard"):
        ShardSpec(name="a", template=ControllerSpec(
            "centralized", m=0, w=0, u=64))
    with pytest.raises(ConfigError, match="m=0"):
        ShardSpec(name="a", template=ControllerSpec(
            "terminating", m=10, w=0, u=64))
    with pytest.raises(ConfigError, match="node bound u"):
        ShardSpec(name="a", template=ControllerSpec(
            "terminating", m=0, w=0, u=0))


def test_fleet_config_validates_eagerly():
    specs = (ShardSpec("a", template()), ShardSpec("b", template()))
    with pytest.raises(ConfigError, match="at least one shard"):
        FleetConfig(shards=(), m_total=10, w_total=2)
    with pytest.raises(ConfigError, match="unique"):
        FleetConfig(shards=(specs[0], specs[0]), m_total=10, w_total=2)
    with pytest.raises(ConfigError, match="w_total"):
        FleetConfig(shards=specs, m_total=10, w_total=1)
    with pytest.raises(ConfigError, match="rebalance"):
        FleetConfig(shards=specs, m_total=10, w_total=2, rebalance="nope")
    with pytest.raises(ConfigError, match="placement"):
        FleetConfig(shards=specs, m_total=10, w_total=2, placement="nope")
    with pytest.raises(ConfigError, match="tranche"):
        FleetConfig(shards=specs, m_total=10, w_total=2, tranche=-1)
    with pytest.raises(ConfigError, match="max_in_flight"):
        FleetConfig(shards=specs, m_total=10, w_total=2, max_in_flight=0)


def test_budget_and_waste_shares_conserve():
    config = FleetConfig.of(shards=4, m_total=103, w_total=11, u=256,
                            weights=[4, 2, 1, 1])
    assert sum(config.budget_shares()) == 103
    shares = config.waste_shares()
    assert sum(shares) == 11
    assert all(share >= 1 for share in shares)
    # Weight skew reaches the carve.
    assert config.budget_shares()[0] > config.budget_shares()[3]


def test_of_builds_uniform_fleet_and_snapshot_roundtrips():
    config = FleetConfig.of(shards=3, m_total=60, w_total=6, u=512,
                            tranche=5, rebalance="proportional")
    assert [spec.name for spec in config.shards] == [
        "shard-0", "shard-1", "shard-2"]
    snap = config.snapshot()
    assert snap["m_total"] == 60 and snap["rebalance"] == "proportional"
    assert len(snap["shards"]) == 3
    with pytest.raises(ConfigError):
        FleetConfig.of(shards=0, m_total=1, w_total=1, u=8)
    with pytest.raises(ConfigError):
        FleetConfig.of(shards=2, m_total=1, w_total=2, u=8, weights=[1])
