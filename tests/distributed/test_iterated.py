"""Tests for the distributed halving-iteration driver (Theorem 4.7)."""

import random

from repro import DynamicTree, OutcomeStatus, Request, RequestKind
from repro.distributed import DistributedIteratedController
from repro.workloads import NodePicker, build_random_tree, random_request


def batch(tree, seed, count, mix=None):
    rng = random.Random(seed)
    picker = NodePicker(tree)
    requests = [random_request(tree, rng, mix=mix, picker=picker)
                for _ in range(count)]
    picker.detach()
    return requests


def test_small_w_serves_almost_everything():
    tree = DynamicTree()
    controller = DistributedIteratedController(tree, m=120, w=1, u=200)
    requests = [Request(RequestKind.PLAIN, tree.root) for _ in range(150)]
    outcomes = controller.process(requests)
    granted = sum(1 for o in outcomes if o.granted)
    assert granted >= 119
    assert controller.stages_run > 1


def test_w_zero_exact_m():
    tree = DynamicTree()
    controller = DistributedIteratedController(tree, m=40, w=0, u=100)
    requests = [Request(RequestKind.PLAIN, tree.root) for _ in range(60)]
    outcomes = controller.process(requests)
    granted = sum(1 for o in outcomes if o.granted)
    rejected = sum(1 for o in outcomes if o.rejected)
    assert granted == 40
    assert rejected == 20


def test_dynamic_batches_across_stages():
    tree = build_random_tree(15, seed=1)
    controller = DistributedIteratedController(tree, m=200, w=3, u=1500)
    total_granted = 0
    for round_seed in range(6):
        # Requests must be generated against the *current* tree.
        requests = batch(tree, seed=round_seed, count=60)
        outcomes = controller.process(requests)
        total_granted += sum(1 for o in outcomes if o.granted)
        assert all(o.status is not OutcomeStatus.PENDING for o in outcomes)
    assert total_granted <= 200
    if controller.rejecting:
        assert total_granted >= 200 - 3
    tree.validate()


def test_stage_resets_are_charged():
    tree = DynamicTree()
    controller = DistributedIteratedController(tree, m=100, w=1, u=100)
    controller.process(
        [Request(RequestKind.PLAIN, tree.root) for _ in range(120)]
    )
    assert controller.stages_run >= 2
    # broadcast_messages includes 2(n-1) per stage termination plus
    # 3(n-1) per rollover; with n == 1 that is 0, so instead verify the
    # stage count implies terminations happened.
    assert controller.granted >= 99
