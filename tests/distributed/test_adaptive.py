"""Tests for the distributed unknown-U controller (Appendix A)."""

import random

import pytest

from repro.errors import ControllerError
from repro import DynamicTree, OutcomeStatus, Request, RequestKind
from repro.distributed import DistributedAdaptiveController
from repro.workloads import NodePicker, build_random_tree, random_request


def drive(controller, tree, rounds, per_round, seed, mix=None):
    rng = random.Random(seed)
    outcomes = []
    for _ in range(rounds):
        picker = NodePicker(tree)
        requests = [random_request(tree, rng, mix=mix, picker=picker)
                    for _ in range(per_round)]
        picker.detach()
        outcomes += controller.process(requests)
    return outcomes


def test_epochs_roll_with_churn():
    tree = build_random_tree(10, seed=1)
    controller = DistributedAdaptiveController(tree, m=5000, w=50)
    drive(controller, tree, rounds=6, per_round=60, seed=2)
    assert controller.epochs_run > 1
    tree.validate()


def test_safety():
    tree = build_random_tree(10, seed=3)
    controller = DistributedAdaptiveController(tree, m=80, w=10)
    outcomes = drive(controller, tree, rounds=6, per_round=60, seed=4)
    granted = sum(1 for o in outcomes if o.granted)
    assert granted <= 80
    assert granted == controller.granted


def test_liveness_with_epoch_slack():
    """At reject time granted >= M - W minus one wasted main permit per
    epoch boundary (the re-served boundary request)."""
    for seed in range(3):
        tree = build_random_tree(8, seed=seed)
        controller = DistributedAdaptiveController(tree, m=150, w=12)
        drive(controller, tree, rounds=10, per_round=60, seed=seed + 9)
        if controller.rejecting:
            slack = controller.epochs_run
            assert controller.granted >= 150 - 12 - slack


def test_rejections_sticky():
    tree = DynamicTree()
    controller = DistributedAdaptiveController(tree, m=5, w=1)
    requests = [Request(RequestKind.PLAIN, tree.root) for _ in range(15)]
    outcomes = controller.process(requests)
    statuses = [o.status for o in outcomes]
    first = statuses.index(OutcomeStatus.REJECTED)
    assert all(s is OutcomeStatus.REJECTED for s in statuses[first:])


def test_both_permits_needed_for_topological_changes():
    """The change counter terminates after U_i/4..U_i/2 changes, forcing
    epoch rollovers even while the main budget is plentiful."""
    tree = build_random_tree(6, seed=5)
    controller = DistributedAdaptiveController(tree, m=10_000, w=100)
    drive(controller, tree, rounds=5, per_round=40, seed=6,
          mix={RequestKind.ADD_LEAF: 1.0})
    assert controller.epochs_run >= 3
    assert tree.size > 100


def test_w_zero_rejected_by_constructor():
    tree = DynamicTree()
    with pytest.raises(ControllerError):
        DistributedAdaptiveController(tree, m=10, w=0)
