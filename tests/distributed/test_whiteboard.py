"""Tests for the whiteboard map used by the distributed controller."""

from repro import DynamicTree
from repro.core.packages import MobilePackage
from repro.distributed.whiteboard import Whiteboard, WhiteboardMap


def test_fresh_whiteboard_is_empty():
    board = Whiteboard()
    assert board.is_empty
    assert board.locked_by is None
    assert not board.queue


def test_map_is_lazy():
    tree = DynamicTree()
    boards = WhiteboardMap()
    assert boards.peek(tree.root) is None
    board = boards.get(tree.root)
    assert boards.peek(tree.root) is board


def test_total_parked_permits():
    tree = DynamicTree()
    child = tree.add_leaf(tree.root)
    boards = WhiteboardMap()
    boards.get(tree.root).store.mobile.append(MobilePackage(level=2, size=4))
    boards.get(child).store.static_permits = 3
    assert boards.total_parked_permits() == 7


def test_discard_and_clear():
    tree = DynamicTree()
    boards = WhiteboardMap()
    boards.get(tree.root).store.static_permits = 1
    taken = boards.discard(tree.root)
    assert taken is not None and taken.store.static_permits == 1
    assert boards.discard(tree.root) is None
    boards.get(tree.root)
    boards.clear()
    assert boards.peek(tree.root) is None
