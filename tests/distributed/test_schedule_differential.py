"""Differential / metamorphic tests across schedule policies.

The metamorphic relation (satellite contract of the adversarial-engine
PR): replaying the *identical* request stream under two different
schedule policies must

* grant the same multiset of permits when no waste can occur — the
  W = 0 regime.  (The distributed engine's parameter arithmetic
  requires W >= 1, so zero waste is realized the way it manifests:
  cancellation-free streams served reject-free, where the waste
  allowance is never drawn on and Lemma 4.3's serializability collapses
  to identity on outcomes.)
* never differ by more than the waste bound otherwise: every rejecting
  run lands in ``[M - W, M]``, so two runs differ by at most W.

REGRESSION_SEEDS is the development-time fuzz corpus: seeds 0-7 were
swept over all four policies in both regimes without finding a
divergence (tight-budget runs granted exactly M under every policy);
the corpus pins that behaviour so any future scheduler/locking change
that breaks the relation fails loudly here.
"""

import dataclasses

import pytest

from repro.distributed import DistributedController
from repro.metrics import audit_controller
from repro.sim import Scheduler, make_policy
from repro.workloads import get_scenario
from repro.workloads.scenarios import TreeMirror, request_spec


REGRESSION_SEEDS = (0, 1, 2, 5, 7)
POLICIES = ("fifo", "random", "lifo", "adversary")


def _tight_spec():
    return get_scenario("near_exhaustion").scaled(0.3)


def _ample_spec():
    spec = _tight_spec()
    return dataclasses.replace(spec, m=8 * spec.steps)


def _replay(spec, seed, policy):
    """One distributed run of the spec's stream under ``policy``.

    Returns (granted positions, rejected count, controller)."""
    reference = spec.build_tree(seed=seed)
    stream_specs = [request_spec(r)
                    for r in spec.stream(reference, seed=seed)]
    twin = spec.build_tree(seed=seed)
    mirror = TreeMirror(twin)
    requests = [mirror.request(s) for s in stream_specs]
    mirror.detach()
    controller = DistributedController(
        twin, m=spec.m, w=spec.w, u=spec.u,
        scheduler=Scheduler(policy=make_policy(policy, seed=seed)))
    outcomes = controller.submit_batch(requests, stagger=0.25)
    report = audit_controller(controller)
    assert report.passed, report.violations[:3]
    granted = sorted(i for i, o in enumerate(outcomes) if o.granted)
    rejected = sum(1 for o in outcomes if o.rejected)
    return granted, rejected, controller


@pytest.mark.parametrize("seed", REGRESSION_SEEDS)
def test_zero_waste_replays_grant_identical_multisets(seed):
    """Ample budget, PLAIN/ADD_LEAF-only stream: every policy grants the
    identical multiset of permits (same stream positions)."""
    spec = _ample_spec()
    baseline = None
    for policy in POLICIES:
        granted, rejected, _ = _replay(spec, seed, policy)
        assert rejected == 0
        if baseline is None:
            baseline = granted
        else:
            assert granted == baseline, (
                f"policy {policy} granted a different permit multiset "
                f"(symmetric difference "
                f"{sorted(set(granted) ^ set(baseline))[:10]})")


@pytest.mark.parametrize("seed", REGRESSION_SEEDS)
def test_rejecting_replays_stay_within_the_waste_bound(seed):
    """Tight budget: every policy's grant total sits in [M - W, M], so
    any two policies differ by at most W."""
    spec = _tight_spec()
    totals = {}
    for policy in POLICIES:
        granted, rejected, controller = _replay(spec, seed, policy)
        assert rejected > 0  # the stream outruns the budget by design
        assert spec.m - spec.w <= len(granted) <= spec.m
        assert controller.granted == len(granted)
        totals[policy] = len(granted)
    assert max(totals.values()) - min(totals.values()) <= spec.w, totals


def test_policy_changes_the_interleaving_not_the_contract():
    """The policies genuinely reorder execution (different event pop
    sequences), yet the outcome tallies agree — evidence the
    equivalence tests above compare distinct executions rather than one
    execution four times."""
    spec = _ample_spec()
    executed = {}
    for policy in ("fifo", "adversary"):
        _, _, controller = _replay(spec, 0, policy)
        executed[policy] = (controller.scheduler.executed,
                            round(controller.scheduler.now, 6))
    # Same number of events is not required, but identical quiescence
    # times across fifo and the maximal reorderer would mean the
    # adversary never reordered anything.
    assert executed["fifo"][1] != executed["adversary"][1], executed
