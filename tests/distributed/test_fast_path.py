"""Trace-identical equivalence of the fast-path engine.

The fast path's contract (``repro.sim.fastsched``) is not "statistically
similar" — it is *the same execution*: identical callback order means
identical RNG consumption, so outcome tallies, message counters, the
kernel trace's transition sequence, and the final simulated clock must
all be bit-identical to the reference FIFO engine on any workload.
These tests drive both engines over the adversarial catalogue and
compare everything; the fallback tests pin the escape hatch (non-FIFO
policies warn once and run on the reference scheduler, unchanged).
"""

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import DistributedController
from repro.distributed.adaptive import DistributedAdaptiveController
from repro.distributed.iterated import DistributedIteratedController
from repro.errors import ConfigError
from repro.service import ControllerSession, ControllerSpec, SessionConfig
from repro.sim import FastPathFallbackWarning, FastScheduler, Scheduler
from repro.workloads import get_scenario
from repro.workloads.catalogue import CATALOGUE
from repro.workloads.scenarios import TreeMirror, request_spec


def _materialize(spec, seed):
    reference = spec.build_tree(seed=seed)
    return [request_spec(r) for r in spec.stream(reference, seed=seed)]


def _twin_requests(spec, seed, stream_specs):
    tree = spec.build_tree(seed=seed)
    mirror = TreeMirror(tree)
    requests = [mirror.request(s) for s in stream_specs]
    mirror.detach()
    return tree, requests


def _run_session_arm(spec, seed, stream_specs, *, fast, policy="fifo",
                     expect_warning=False):
    """One session-driven run; returns every behavioural artefact the
    equivalence contract covers (plus the invariant audit verdict)."""
    tree, requests = _twin_requests(spec, seed, stream_specs)
    config = SessionConfig(
        controller=ControllerSpec(
            "distributed", m=spec.m, w=spec.w, u=spec.u,
            options={"fast_path": fast}),
        schedule_policy=policy, seed=seed,
        max_in_flight=max(len(requests), 1), trace=True)
    if expect_warning:
        with pytest.warns(FastPathFallbackWarning):
            session = ControllerSession(config, tree=tree)
    else:
        session = ControllerSession(config, tree=tree)
    session.submit_many(requests, stagger=0.25)
    records = list(session.drain())
    report = session.audit()
    assert report.passed, report.violations[:3]
    verdicts = tuple(r.verdict.value for r in records)
    counters = tuple(sorted(session.controller.counters.snapshot().items()))
    trace_events = tuple(session.trace.events)
    now = session.now
    scheduler = session.scheduler
    session.close()
    return verdicts, counters, trace_events, now, scheduler


@given(name=st.sampled_from(sorted(CATALOGUE)),
       seed=st.integers(min_value=0, max_value=5))
@settings(max_examples=10, deadline=None)
def test_fast_path_is_trace_identical_on_the_catalogue(name, seed):
    spec = get_scenario(name).scaled(0.25)
    stream_specs = _materialize(spec, seed)
    reference = _run_session_arm(spec, seed, stream_specs, fast=False)
    fast = _run_session_arm(spec, seed, stream_specs, fast=True)
    assert isinstance(reference[4], Scheduler)
    assert isinstance(fast[4], FastScheduler)
    # Per-request verdict sequence, counters, the full kernel-trace
    # transition log, and the final simulated clock: all identical.
    assert fast[:4] == reference[:4]


def test_fast_path_kernel_trace_is_nonempty():
    """The equivalence assertion must compare real evidence: deep_burst
    at small scale still performs permit/package transitions."""
    spec = get_scenario("deep_burst").scaled(0.2)
    stream_specs = _materialize(spec, 0)
    _verdicts, _counters, trace_events, _now, _sched = _run_session_arm(
        spec, 0, stream_specs, fast=True)
    assert len(trace_events) > 0


# ----------------------------------------------------------------------
# Fallback: non-FIFO policies stay on the reference engine, warned once.
# ----------------------------------------------------------------------
def test_non_fifo_policy_falls_back_with_warning():
    spec = get_scenario("hot_spot").scaled(0.2)
    stream_specs = _materialize(spec, 3)
    plain = _run_session_arm(spec, 3, stream_specs, fast=False,
                             policy="random")
    fallback = _run_session_arm(spec, 3, stream_specs, fast=True,
                                policy="random", expect_warning=True)
    # The fallback session runs the reference scheduler and behaves
    # exactly as if fast_path had never been requested.
    assert isinstance(fallback[4], Scheduler)
    assert not isinstance(fallback[4], FastScheduler)
    assert fallback[:4] == plain[:4]


def test_fallback_warns_once_per_location():
    spec = get_scenario("hot_spot").scaled(0.1)
    stream_specs = _materialize(spec, 0)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(3):
            tree, requests = _twin_requests(spec, 0, stream_specs)
            config = SessionConfig(
                controller=ControllerSpec(
                    "distributed", m=spec.m, w=spec.w, u=spec.u,
                    options={"fast_path": True}),
                schedule_policy="lifo", seed=0,
                max_in_flight=max(len(requests), 1))
            ControllerSession(config, tree=tree).close()
    fallbacks = [w for w in caught
                 if issubclass(w.category, FastPathFallbackWarning)]
    assert len(fallbacks) == 1  # the default filter dedups by location


def test_fast_path_rejected_for_synchronous_flavours():
    spec = get_scenario("hot_spot").scaled(0.1)
    tree = spec.build_tree(seed=0)
    config = SessionConfig(
        controller=ControllerSpec("iterated", m=spec.m, w=spec.w,
                                  u=spec.u, options={"fast_path": True}))
    with pytest.raises(ConfigError, match="fast_path"):
        ControllerSession(config, tree=tree)


def test_externally_wired_reference_scheduler_warns():
    spec = get_scenario("hot_spot").scaled(0.1)
    tree = spec.build_tree(seed=0)
    with pytest.warns(FastPathFallbackWarning):
        DistributedController(tree, m=spec.m, w=spec.w, u=spec.u,
                              scheduler=Scheduler(), fast_path=True)


# ----------------------------------------------------------------------
# Staged wrappers: the shared scheduler puts every stage on the fast path.
# ----------------------------------------------------------------------
def _drive_wrapper(make_controller, spec, seed, stream_specs):
    tree, requests = _twin_requests(spec, seed, stream_specs)
    controller = make_controller(tree)
    outcomes = controller.process(requests)
    verdicts = tuple(o.status.value for o in outcomes)
    counters = tuple(sorted(controller.counters.snapshot().items()))
    return verdicts, counters, type(controller.scheduler)


@pytest.mark.parametrize("seed", [0, 2])
def test_iterated_wrapper_fast_path_is_equivalent(seed):
    spec = get_scenario("grow_shrink").scaled(0.25)
    stream_specs = _materialize(spec, seed)
    reference = _drive_wrapper(
        lambda tree: DistributedIteratedController(
            tree, m=spec.m, w=spec.w, u=spec.u),
        spec, seed, stream_specs)
    fast = _drive_wrapper(
        lambda tree: DistributedIteratedController(
            tree, m=spec.m, w=spec.w, u=spec.u, fast_path=True),
        spec, seed, stream_specs)
    assert reference[2] is Scheduler and fast[2] is FastScheduler
    assert fast[:2] == reference[:2]


@pytest.mark.parametrize("seed", [1])
def test_adaptive_wrapper_fast_path_is_equivalent(seed):
    spec = get_scenario("grow_shrink").scaled(0.25)
    stream_specs = _materialize(spec, seed)
    reference = _drive_wrapper(
        lambda tree: DistributedAdaptiveController(
            tree, m=spec.m, w=spec.w),
        spec, seed, stream_specs)
    fast = _drive_wrapper(
        lambda tree: DistributedAdaptiveController(
            tree, m=spec.m, w=spec.w, fast_path=True),
        spec, seed, stream_specs)
    assert reference[2] is Scheduler and fast[2] is FastScheduler
    assert fast[:2] == reference[:2]
