"""Targeted tests of the graceful-change path splices (Section 4.2).

The subtle distributed cases: an internal node inserted under a node an
agent is waiting at, deletion of an agent's origin by its own request,
and deletions that relocate packages and queued agents.  Each test
constructs the interleaving explicitly via submission times.
"""

import random

from repro import OutcomeStatus, Request, RequestKind
from repro.distributed import DistributedController
from repro.sim.delays import UnitDelay
from repro.workloads import NodePicker, build_path, build_random_tree, random_request


def test_insert_below_waiting_agent_keeps_distances_consistent():
    """Agent B waits at v while agent I inserts a node between v and B's
    topmost locked node w; B's path and Distance must absorb the splice."""
    tree = build_path(8)
    nodes = sorted(tree.nodes(), key=tree.depth)
    v, w = nodes[3], nodes[4]
    deep = nodes[-1]
    controller = DistributedController(tree, m=100, w=50, u=50,
                                       delays=UnitDelay())
    outcomes = []
    # I: insert between v and w (arrives at v, locks v..root first).
    controller.submit(Request(RequestKind.ADD_INTERNAL, v, child=w),
                      delay=0.0, callback=outcomes.append)
    # B: a plain request from the deep end, launched so it queues at v.
    controller.submit(Request(RequestKind.PLAIN, deep),
                      delay=0.5, callback=outcomes.append)
    controller.run()
    assert [o.status for o in outcomes] == [OutcomeStatus.GRANTED] * 2
    assert controller.active_agents == 0
    for node, board in controller.boards.items():
        assert board.locked_by is None and not board.queue
    tree.validate()
    assert tree.depth(deep) == 8  # one deeper than built


def test_self_deletion_of_origin():
    tree = build_path(10)
    deep = max(tree.nodes(), key=tree.depth)
    controller = DistributedController(tree, m=100, w=50, u=50)
    outcome = controller.submit_and_run(
        Request(RequestKind.REMOVE_LEAF, deep))
    assert outcome.granted
    assert deep not in tree
    assert controller.active_agents == 0
    for node, board in controller.boards.items():
        assert board.locked_by is None


def test_deletion_relocates_packages_and_static_pool():
    tree = build_path(30)
    nodes = sorted(tree.nodes(), key=tree.depth)
    deep = nodes[-1]
    controller = DistributedController(tree, m=1000, w=500, u=60)
    controller.submit_and_run(Request(RequestKind.PLAIN, deep))
    static_before = controller.boards.get(deep).store.static_permits
    assert static_before > 0
    parent = deep.parent
    controller.submit_and_run(Request(RequestKind.REMOVE_LEAF, deep))
    assert (controller.boards.get(parent).store.static_permits
            == static_before - 1)
    assert controller.counters.relocation_messages >= 1


def test_fresh_waiter_rehomed_on_origin_deletion():
    """A plain request created at a node being deleted migrates to the
    parent and is eventually granted there."""
    tree = build_path(12)
    deep = max(tree.nodes(), key=tree.depth)
    parent = deep.parent
    controller = DistributedController(tree, m=100, w=50, u=50,
                                       delays=UnitDelay())
    outcomes = []
    # The deletion agent starts first and locks ``deep``.
    controller.submit(Request(RequestKind.REMOVE_LEAF, deep),
                      delay=0.0, callback=outcomes.append)
    # This plain request arrives at ``deep`` while it is locked, so it
    # queues there and is carried to the parent by the deletion.
    controller.submit(Request(RequestKind.PLAIN, deep),
                      delay=0.5, callback=outcomes.append)
    controller.run()
    statuses = sorted(o.status.value for o in outcomes)
    assert statuses == ["granted", "granted"]
    assert controller.active_agents == 0


def test_topological_waiter_cancelled_on_origin_deletion():
    """A second deletion request for the same node is cancelled when the
    node disappears under it."""
    tree = build_path(12)
    deep = max(tree.nodes(), key=tree.depth)
    controller = DistributedController(tree, m=100, w=50, u=50,
                                       delays=UnitDelay())
    outcomes = []
    controller.submit(Request(RequestKind.REMOVE_LEAF, deep),
                      delay=0.0, callback=outcomes.append)
    controller.submit(Request(RequestKind.REMOVE_LEAF, deep),
                      delay=0.5, callback=outcomes.append)
    controller.run()
    statuses = {o.status for o in outcomes}
    assert OutcomeStatus.GRANTED in statuses
    assert OutcomeStatus.CANCELLED in statuses
    assert controller.active_agents == 0


def test_mixed_concurrent_splice_storm():
    """Randomized stress focused on topological churn with overlap."""
    mix = {
        RequestKind.ADD_LEAF: 0.25,
        RequestKind.ADD_INTERNAL: 0.30,
        RequestKind.REMOVE_LEAF: 0.25,
        RequestKind.REMOVE_INTERNAL: 0.20,
    }
    for seed in range(5):
        tree = build_random_tree(30, seed=seed)
        controller = DistributedController(tree, m=800, w=200, u=2000)
        rng = random.Random(seed + 60)
        picker = NodePicker(tree)
        outcomes = []
        at = 0.0
        for _ in range(250):
            request = random_request(tree, rng, mix=mix, picker=picker)
            controller.submit(request, delay=at, callback=outcomes.append)
            at += 0.25
        controller.run()
        picker.detach()
        assert len(outcomes) == 250
        assert controller.active_agents == 0
        for node, board in controller.boards.items():
            assert board.locked_by is None and not board.queue
        tree.validate()
