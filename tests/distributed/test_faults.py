"""Fault injection: stalls, delivery pauses, churn storms.

Every injected fault is legal under the asynchronous model, so the
tests assert the controller's guarantees *survive* the faults: stalled
agents resume and complete (liveness), paused deliveries land after the
window, and a churn storm aimed at locked paths never orphans a
package, a lock, or a waiter.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.core.requests import Request, RequestKind
from repro.distributed import (
    DistributedController,
    FaultInjector,
    FaultPlan,
    parse_fault_spec,
)
from repro.metrics import audit_controller
from repro.sim import Scheduler, make_policy
from repro.sim.delays import UnitDelay
from repro.workloads import NodePicker, build_path, build_random_tree, random_request


# ----------------------------------------------------------------------
# Plan parsing.
# ----------------------------------------------------------------------
def test_parse_fault_spec_roundtrip():
    plan = parse_fault_spec("stall=0.05,pauses=2,storms=3,seed=7")
    assert plan.stall_prob == 0.05
    assert plan.pauses == 2
    assert plan.storms == 3
    assert plan.seed == 7
    assert not plan.is_noop


def test_parse_fault_spec_empty_and_none():
    assert parse_fault_spec(None).is_noop
    assert parse_fault_spec("").is_noop
    assert parse_fault_spec("none").is_noop


def test_parse_fault_spec_rejects_garbage():
    with pytest.raises(SimulationError):
        parse_fault_spec("stall")
    with pytest.raises(SimulationError):
        parse_fault_spec("gremlins=4")
    with pytest.raises(SimulationError):
        parse_fault_spec("stall=lots")
    with pytest.raises(SimulationError):
        parse_fault_spec("stall=1.5")  # FaultPlan validation


# ----------------------------------------------------------------------
# Agent stalls: liveness under pauses.
# ----------------------------------------------------------------------
def test_stalled_agents_resume_and_complete():
    """With every hop stalled 100x, all requests still resolve and the
    outcome totals match the fault-free run (stalls are just slow
    messages — the paper's model makes no timing assumptions)."""
    baseline = None
    for stall_prob in (0.0, 1.0):
        tree = build_path(20)
        injector = FaultInjector(FaultPlan(seed=3, stall_prob=stall_prob,
                                           stall_factor=100.0))
        controller = DistributedController(tree, m=200, w=50, u=100,
                                           delays=UnitDelay(),
                                           faults=injector)
        nodes = list(tree.nodes())
        requests = [Request(RequestKind.PLAIN, nodes[i % len(nodes)])
                    for i in range(30)]
        outcomes = controller.submit_batch(requests, stagger=0.5)
        assert len(outcomes) == 30
        assert controller.active_agents == 0
        tally = sorted(o.status.value for o in outcomes)
        if baseline is None:
            baseline = tally
        else:
            assert tally == baseline
            assert injector.stats["stalls"] > 0
        assert audit_controller(controller).passed


def test_delivery_pause_delays_but_never_drops():
    tree = build_path(15)
    plan = FaultPlan(seed=1, pauses=3, pause_duration=30.0, horizon=40.0)
    injector = FaultInjector(plan)
    controller = DistributedController(tree, m=100, w=25, u=60,
                                       delays=UnitDelay(), faults=injector)
    deep = max(tree.nodes(), key=tree.depth)
    outcomes = controller.submit_batch(
        [Request(RequestKind.PLAIN, deep) for _ in range(5)], stagger=1.0)
    assert all(o.granted for o in outcomes)
    assert injector.stats["paused_deliveries"] > 0
    # Paused hops land at/after their window's end, never vanish.
    assert controller.active_agents == 0
    assert audit_controller(controller).passed


# ----------------------------------------------------------------------
# Churn storms: the graceful hand-over under bombardment.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy_name", ["fifo", "random", "adversary"])
def test_churn_storm_never_orphans_package_or_lock(policy_name):
    """Storms fire while agents are mid-climb; afterwards every permit is
    accounted for (conservation), no dead node holds state, and no lock
    or waiter is left behind — on every schedule policy."""
    splices_seen = 0
    for seed in range(4):
        tree = build_random_tree(50, seed=seed)
        plan = FaultPlan(seed=seed * 31 + 1, storms=4, storm_size=8,
                         horizon=25.0)
        injector = FaultInjector(plan)
        controller = DistributedController(
            tree, m=900, w=220, u=4000,
            scheduler=Scheduler(policy=make_policy(policy_name, seed=seed)),
            faults=injector)
        rng = random.Random(seed)
        picker = NodePicker(tree)
        outcomes = []
        for i in range(80):
            controller.submit(random_request(tree, rng, picker=picker),
                              delay=i * 0.3, callback=outcomes.append)
        controller.run()
        picker.detach()
        assert len(outcomes) == 80
        assert controller.active_agents == 0
        report = audit_controller(controller)
        assert report.passed, report.violations[:3]
        assert injector.stats["storm_ops"] > 0
        splices_seen += injector.stats["storm_splices"]
        tree.validate()
    # Across the seeds, the storm must actually have exercised the
    # Section 4.2 splice hand-over, not just leaf churn.
    assert splices_seen > 0


def test_storm_respects_locking_discipline():
    """A storm never deletes a locked node (the one removal the
    hand-over cannot absorb is a foreign mid-path deletion)."""
    tree = build_path(25)
    plan = FaultPlan(seed=5, storms=6, storm_size=10, horizon=20.0)
    injector = FaultInjector(plan)
    controller = DistributedController(tree, m=400, w=100, u=2000,
                                       delays=UnitDelay(), faults=injector)
    deep = max(tree.nodes(), key=tree.depth)
    # A deep climb keeps a long path locked across the storm window.
    outcomes = controller.submit_batch(
        [Request(RequestKind.PLAIN, deep) for _ in range(10)], stagger=2.0)
    assert len(outcomes) == 10
    assert controller.active_agents == 0
    assert audit_controller(controller).passed


def test_injector_cannot_attach_twice():
    injector = FaultInjector(FaultPlan(seed=0))
    tree = build_path(4)
    DistributedController(tree, m=10, w=5, u=8, faults=injector)
    with pytest.raises(SimulationError):
        FaultInjector.attach(injector, object())


def test_auto_horizon_resolution():
    plan = parse_fault_spec("storms=2")      # horizon unset -> auto
    assert plan.needs_horizon and plan.horizon == 0.0
    with pytest.raises(SimulationError):
        FaultInjector(plan)                  # unresolved: refuse to guess
    resolved = plan.resolved(120.0)
    assert resolved.horizon == 120.0
    FaultInjector(resolved)                  # now constructible
    explicit = parse_fault_spec("storms=2,horizon=33")
    assert explicit.resolved(120.0).horizon == 33  # explicit wins
    # Plans without pauses/storms never need a horizon.
    stall_only = parse_fault_spec("stall=0.5")
    assert not stall_only.needs_horizon
    FaultInjector(stall_only)
