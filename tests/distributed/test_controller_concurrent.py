"""Concurrent distributed executions: locks, FIFO, safety, liveness.

These tests inject many overlapping requests under adversarial
(heavy-tailed) message delays — the regime in which the locking
discipline of Section 4.3 earns its keep.  The assertions are the
correctness conditions of Section 2.2 plus structural sanity: no
deadlock (every agent finishes, every lock is released), permits
conserved, and safety/liveness bounds honored.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import OutcomeStatus, Request, RequestKind
from repro.distributed import DistributedController
from repro.sim.delays import HeavyTailDelay, UniformDelay, UnitDelay
from repro.workloads import NodePicker, build_path, build_random_tree, random_request


def storm(tree, controller, requests, seed, spacing=0.4):
    """Inject ``requests`` overlapping requests, return outcomes."""
    rng = random.Random(seed)
    picker = NodePicker(tree)
    outcomes = []
    at = 0.0
    for _ in range(requests):
        request = random_request(tree, rng, picker=picker)
        controller.submit(request, delay=at, callback=outcomes.append)
        at += spacing
    controller.run()
    picker.detach()
    return outcomes


@pytest.mark.parametrize("delay_model", [
    UnitDelay(),
    UniformDelay(seed=3),
    HeavyTailDelay(seed=4),
])
def test_storm_terminates_and_releases_everything(delay_model):
    tree = build_random_tree(50, seed=1)
    controller = DistributedController(tree, m=600, w=150, u=1500,
                                       delays=delay_model)
    outcomes = storm(tree, controller, requests=300, seed=2)
    assert len(outcomes) == 300
    assert controller.active_agents == 0
    for node, board in controller.boards.items():
        assert board.locked_by is None
        assert not board.queue
    tree.validate()


def test_safety_under_concurrency():
    tree = build_random_tree(30, seed=5)
    controller = DistributedController(tree, m=50, w=10, u=800,
                                       delays=HeavyTailDelay(seed=6))
    storm(tree, controller, requests=400, seed=7, spacing=0.2)
    assert controller.granted <= 50


def test_liveness_under_concurrency():
    for seed in range(3):
        tree = build_random_tree(25, seed=seed)
        controller = DistributedController(tree, m=60, w=15, u=800,
                                           delays=HeavyTailDelay(seed=seed))
        storm(tree, controller, requests=400, seed=seed + 40, spacing=0.2)
        if controller.rejecting:
            assert controller.granted >= 60 - 15


def test_permit_conservation_under_concurrency():
    tree = build_random_tree(40, seed=8)
    controller = DistributedController(tree, m=700, w=200, u=1500,
                                       delays=UniformDelay(seed=9))
    storm(tree, controller, requests=350, seed=10)
    assert controller.granted + controller.unused_permits() == 700


def test_deterministic_given_seed():
    results = []
    for _ in range(2):
        tree = build_random_tree(30, seed=11)
        controller = DistributedController(tree, m=400, w=100, u=900,
                                           delays=UniformDelay(seed=12))
        storm(tree, controller, requests=200, seed=13)
        results.append((controller.granted, controller.rejected,
                        controller.cancelled,
                        controller.counters.snapshot()["total"],
                        tree.size))
    assert results[0] == results[1]


def test_terminating_mode_never_rejects():
    tree = build_random_tree(20, seed=14)
    controller = DistributedController(tree, m=15, w=5, u=400,
                                       terminate_on_exhaustion=True)
    outcomes = storm(tree, controller, requests=150, seed=15)
    statuses = {o.status for o in outcomes}
    assert OutcomeStatus.REJECTED not in statuses
    assert OutcomeStatus.PENDING in statuses
    assert controller.terminated
    assert 15 - 5 <= controller.granted <= 15


def test_concurrent_requests_at_same_node_fifo():
    """Many plain requests at one deep node: each should be served, the
    first paying the climb and the rest from the static pool."""
    tree = build_path(60)
    deep = max(tree.nodes(), key=tree.depth)
    controller = DistributedController(tree, m=2000, w=1000, u=120)
    phi = controller.params.phi
    assert phi >= 3
    outcomes = []
    for _ in range(phi):
        controller.submit(Request(RequestKind.PLAIN, deep),
                          callback=outcomes.append)
    controller.run()
    assert all(o.granted for o in outcomes)
    # One climb bought phi permits; the rest were served locally.
    assert controller.counters.agent_hops <= 4 * 2 * 60


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5000), m=st.integers(5, 200),
       w=st.integers(1, 40))
def test_concurrent_property_no_deadlock_and_safety(seed, m, w):
    tree = build_random_tree(20, seed=seed)
    controller = DistributedController(
        tree, m=m, w=w, u=600, delays=HeavyTailDelay(seed=seed + 1))
    outcomes = storm(tree, controller, requests=120, seed=seed + 2,
                     spacing=0.3)
    assert len(outcomes) == 120
    assert controller.active_agents == 0
    assert controller.granted <= m
    if controller.rejecting:
        assert controller.granted >= m - w
