"""The distributed engine's batched request queue."""

import random

from repro.distributed.controller import DistributedController
from repro.core.requests import Request, RequestKind
from repro.workloads import build_random_tree


def make_requests(tree, count, seed):
    rng = random.Random(seed)
    nodes = list(tree.nodes())
    return [Request(RequestKind.PLAIN, nodes[rng.randrange(len(nodes))])
            for _ in range(count)]


def test_batch_resolves_in_submission_order():
    tree = build_random_tree(120, seed=4)
    controller = DistributedController(tree, m=400, w=100, u=400)
    requests = make_requests(tree, 60, seed=5)
    outcomes = controller.submit_batch(requests)
    assert [o.request.request_id for o in outcomes] \
        == [r.request_id for r in requests]
    assert all(o.granted for o in outcomes)
    assert controller.active_agents == 0


def test_batch_pipelines_in_simulated_time():
    """Concurrent agents must beat one-at-a-time round trips on the
    simulated clock (that's the point of the batched queue)."""
    tree_seq = build_random_tree(100, seed=6)
    seq = DistributedController(tree_seq, m=400, w=100, u=400)
    for request in make_requests(tree_seq, 50, seed=7):
        seq.submit_and_run(request)
    sequential_time = seq.scheduler.now

    tree_bat = build_random_tree(100, seed=6)
    bat = DistributedController(tree_bat, m=400, w=100, u=400)
    bat.submit_batch(make_requests(tree_bat, 50, seed=7))
    assert bat.granted == seq.granted == 50
    assert bat.scheduler.now < sequential_time


def test_batch_respects_safety_under_exhaustion():
    tree = build_random_tree(80, seed=8)
    controller = DistributedController(tree, m=30, w=10, u=300)
    outcomes = controller.submit_batch(make_requests(tree, 120, seed=9))
    granted = sum(1 for o in outcomes if o.granted)
    assert granted <= 30
    assert controller.rejecting
    assert len(outcomes) == 120
    assert controller.active_agents == 0


def test_batch_with_topological_requests():
    tree = build_random_tree(60, seed=10)
    controller = DistributedController(tree, m=300, w=60, u=400)
    rng = random.Random(11)
    nodes = list(tree.nodes())
    requests = [Request(RequestKind.ADD_LEAF,
                        nodes[rng.randrange(len(nodes))])
                for _ in range(40)]
    outcomes = controller.submit_batch(requests, stagger=0.25)
    granted = sum(1 for o in outcomes if o.granted)
    assert granted == 40
    assert tree.size == 100
    tree.validate()
