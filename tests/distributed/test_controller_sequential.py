"""Sequential distributed execution vs. the centralized reference.

Lemma 4.5 proves that a distributed execution in which each request
completes before the next arrives performs *exactly* the centralized
data-structure operations.  We check that reduction observably: the
same seeded scenario driven through both engines yields identical
grant/reject totals and identical parked-permit distributions, and the
distributed message count stays within the 4x-plus-overheads envelope
of the centralized move count.
"""

import random

import pytest

from repro import CentralizedController
from repro.distributed import DistributedController
from repro.workloads import (
    NodePicker,
    build_path,
    build_random_tree,
    random_request,
)


def run_twin_scenarios(n, steps, m, w, u, seed, builder=build_random_tree):
    """Drive the same request sequence through both engines."""
    tree_c = builder(n, seed=seed) if builder is build_random_tree else builder(n)
    tree_d = builder(n, seed=seed) if builder is build_random_tree else builder(n)
    central = CentralizedController(tree_c, m=m, w=w, u=u)
    distributed = DistributedController(tree_d, m=m, w=w, u=u)
    rng_c, rng_d = random.Random(seed + 1), random.Random(seed + 1)
    picker_c, picker_d = NodePicker(tree_c), NodePicker(tree_d)
    for _ in range(steps):
        req_c = random_request(tree_c, rng_c, picker=picker_c)
        req_d = random_request(tree_d, rng_d, picker=picker_d)
        assert req_c.kind == req_d.kind
        central.handle(req_c)
        distributed.submit_and_run(req_d)
    return central, distributed


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_same_grant_totals(seed):
    central, distributed = run_twin_scenarios(
        n=30, steps=150, m=400, w=100, u=1000, seed=seed)
    assert central.granted == distributed.granted
    assert central.rejected == distributed.rejected
    assert central.tree.size == distributed.tree.size


@pytest.mark.parametrize("seed", [0, 1])
def test_same_parked_permit_distribution(seed):
    central, distributed = run_twin_scenarios(
        n=25, steps=120, m=500, w=120, u=900, seed=seed)
    assert (central.unused_permits()
            == distributed.unused_permits())
    assert (central.stores.total_parked_permits()
            == distributed.boards.total_parked_permits())
    assert central.storage == distributed.storage


def test_deep_path_same_behaviour():
    central, distributed = run_twin_scenarios(
        n=500, steps=100, m=3000, w=1500, u=1000, seed=5,
        builder=build_path)
    assert central.granted == distributed.granted
    assert central.storage == distributed.storage


def test_message_count_tracks_move_count():
    """Messages ~ 4x moves (up, Proc down, return up, unlock down) plus
    per-request constant overheads."""
    central, distributed = run_twin_scenarios(
        n=400, steps=120, m=3000, w=1500, u=900, seed=7,
        builder=build_path)
    moves = central.counters.package_moves
    hops = distributed.counters.agent_hops
    assert hops <= 4 * moves + 10 * 120
    assert hops >= moves  # the agent at least walks the package's route


def test_all_locks_released_after_each_request():
    tree = build_random_tree(20, seed=9)
    controller = DistributedController(tree, m=200, w=50, u=500)
    rng = random.Random(10)
    picker = NodePicker(tree)
    for _ in range(60):
        controller.submit_and_run(random_request(tree, rng, picker=picker))
        for node, board in controller.boards.items():
            assert board.locked_by is None
            assert not board.queue
    assert controller.active_agents == 0
