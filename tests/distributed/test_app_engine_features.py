"""The distributed engine's application hooks: interval mode and the
permit-flow observer.

Both features exist so the Section 5 apps can run event-driven; the
reference semantics is the centralized engine's, so a *serialized*
distributed run (fifo, one request at a time) must agree with it
exactly — identical serials, identical per-node flow totals.
"""

from collections import defaultdict

from repro.core.centralized import CentralizedController
from repro.core.requests import Request, RequestKind
from repro.distributed.controller import DistributedController
from repro.workloads import TreeMirror, build_path, build_random_tree, \
    request_spec


def _requests(tree, kinds):
    nodes = list(tree.nodes())
    return [Request(RequestKind.ADD_LEAF, nodes[i % len(nodes)])
            for i in range(kinds)]


def test_distributed_intervals_match_centralized_serials():
    n, count = 24, 30
    tree_c = build_random_tree(n, seed=5)
    stream = [request_spec(r) for r in _requests(tree_c, count)]

    mirror_c = TreeMirror(tree_c)
    central = CentralizedController(tree_c, m=count, w=4, u=4 * n,
                                    track_intervals=True, interval_base=n)
    serials_c = [central.handle(mirror_c.request(s)).serial
                 for s in stream]
    mirror_c.detach()

    tree_d = build_random_tree(n, seed=5)
    mirror_d = TreeMirror(tree_d)
    distributed = DistributedController(tree_d, m=count, w=4, u=4 * n,
                                        track_intervals=True,
                                        interval_base=n)
    serials_d = [distributed.submit_and_run(mirror_d.request(s)).serial
                 for s in stream]
    mirror_d.detach()

    assert serials_c == serials_d
    assert all(s is not None for s in serials_d)
    # Serials are carved out of [interval_base + 1, interval_base + m].
    assert all(n + 1 <= s <= n + count for s in serials_d)
    assert len(set(serials_d)) == count  # each permit's serial is unique


def test_distributed_interval_splits_conserve_the_range():
    """Parked packages carry disjoint sub-intervals whose union (plus
    the granted serials and the unparked remainder) is the root range —
    Proc's halving threads intervals losslessly."""
    n = 40
    tree = build_path(n)
    deep = list(tree.nodes())[-1]
    m = 32
    controller = DistributedController(tree, m=m, w=4, u=4 * n,
                                       track_intervals=True,
                                       interval_base=0)
    outcome = controller.submit_and_run(
        Request(RequestKind.PLAIN, deep))
    assert outcome.granted and outcome.serial is not None
    covered = []
    for _node, board in controller.boards.items():
        for package in board.store.mobile:
            assert package.interval is not None
            lo, hi = package.interval
            assert hi - lo + 1 == package.size
            covered.extend(range(lo, hi + 1))
        for lo, hi in board.store.static_intervals:
            covered.extend(range(lo, hi + 1))
    covered.append(outcome.serial)
    assert len(covered) == len(set(covered))  # disjoint
    # Everything carved from storage is accounted for.
    assert len(covered) == m - controller.storage


def test_distributed_permit_flow_matches_centralized():
    n = 30
    tree_c = build_path(n)
    stream = [request_spec(r) for r in _requests(tree_c, 20)]

    flows_c = defaultdict(int)
    mirror_c = TreeMirror(tree_c)
    central = CentralizedController(
        tree_c, m=200, w=10, u=4 * n,
        permit_flow_observer=lambda node, permits:
        flows_c.__setitem__(node.node_id, flows_c[node.node_id] + permits))
    for s in stream:
        central.handle(mirror_c.request(s))
    mirror_c.detach()

    flows_d = defaultdict(int)
    tree_d = build_path(n)
    mirror_d = TreeMirror(tree_d)
    distributed = DistributedController(
        tree_d, m=200, w=10, u=4 * n,
        permit_flow_observer=lambda node, permits:
        flows_d.__setitem__(node.node_id, flows_d[node.node_id] + permits))
    for s in stream:
        distributed.submit_and_run(mirror_d.request(s))
    mirror_d.detach()

    assert dict(flows_c) == dict(flows_d)
    assert flows_d  # the hook actually fired
