"""Tests for the dynamic tree substrate and its listener contract."""

import pytest

from repro.errors import TopologyError
from repro.tree import DynamicTree, TreeListener


class RecordingListener(TreeListener):
    def __init__(self):
        self.events = []

    def on_add_leaf(self, node):
        self.events.append(("add_leaf", node))

    def on_add_internal(self, node, parent, child):
        self.events.append(("add_internal", node, parent, child))

    def on_remove_leaf(self, node, parent):
        self.events.append(("remove_leaf", node, parent))

    def on_remove_internal(self, node, parent, children):
        self.events.append(("remove_internal", node, parent, tuple(children)))


def test_fresh_tree_is_just_the_root():
    tree = DynamicTree()
    assert tree.size == 1
    assert tree.root.is_root and tree.root.is_leaf
    assert tree.total_ever == 1


def test_add_leaf_basics():
    tree = DynamicTree()
    child = tree.add_leaf(tree.root)
    assert tree.size == 2
    assert child.parent is tree.root
    assert tree.root.children == [child]
    assert tree.depth(child) == 1
    tree.validate()


def test_add_internal_splits_edge_preserving_order():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)
    b = tree.add_leaf(tree.root)
    mid = tree.add_internal(tree.root, a)
    assert tree.root.children == [mid, b]
    assert mid.children == [a]
    assert a.parent is mid
    assert tree.depth(a) == 2
    tree.validate()


def test_add_internal_requires_parenthood():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)
    b = tree.add_leaf(a)
    with pytest.raises(TopologyError):
        tree.add_internal(tree.root, b)  # b is a grandchild


def test_remove_leaf():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)
    tree.remove_leaf(a)
    assert tree.size == 1
    assert not a.alive
    assert a not in tree
    tree.validate()


def test_remove_leaf_rejects_internal_nodes_and_root():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)
    tree.add_leaf(a)
    with pytest.raises(TopologyError):
        tree.remove_leaf(a)
    with pytest.raises(TopologyError):
        tree.remove_leaf(tree.root)


def test_remove_internal_reattaches_children_in_place():
    tree = DynamicTree()
    left = tree.add_leaf(tree.root)
    mid = tree.add_leaf(tree.root)
    right = tree.add_leaf(tree.root)
    c1 = tree.add_leaf(mid)
    c2 = tree.add_leaf(mid)
    tree.remove_internal(mid)
    assert tree.root.children == [left, c1, c2, right]
    assert c1.parent is tree.root and c2.parent is tree.root
    assert not mid.alive
    tree.validate()


def test_remove_internal_rejects_leaves_and_root():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)
    with pytest.raises(TopologyError):
        tree.remove_internal(a)
    tree.add_leaf(tree.root)
    with pytest.raises(TopologyError):
        tree.remove_internal(tree.root)


def test_operations_on_dead_nodes_rejected():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)
    tree.remove_leaf(a)
    with pytest.raises(TopologyError):
        tree.add_leaf(a)
    with pytest.raises(TopologyError):
        tree.remove_leaf(a)


def test_listeners_see_every_mutation():
    tree = DynamicTree()
    listener = RecordingListener()
    tree.add_listener(listener)
    a = tree.add_leaf(tree.root)
    b = tree.add_leaf(a)
    mid = tree.add_internal(a, b)
    tree.remove_leaf(b)
    tree.remove_internal(a)  # a's child mid moves to root
    tags = [e[0] for e in listener.events]
    assert tags == ["add_leaf", "add_leaf", "add_internal",
                    "remove_leaf", "remove_internal"]
    assert listener.events[2][1:] == (mid, a, b)
    assert listener.events[4][1:] == (a, tree.root, (mid,))


def test_listener_removal():
    tree = DynamicTree()
    listener = RecordingListener()
    tree.add_listener(listener)
    tree.add_leaf(tree.root)
    tree.remove_listener(listener)
    tree.add_leaf(tree.root)
    assert len(listener.events) == 1


def test_size_history_records_pre_change_sizes():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)       # size was 1
    tree.add_leaf(a)                   # size was 2
    tree.remove_leaf(tree.root.children[0].children[0])  # size was 3
    assert tree.size_history == [1, 2, 3]
    assert tree.topology_changes == 3


def test_total_ever_counts_deleted_nodes():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)
    tree.remove_leaf(a)
    b = tree.add_leaf(tree.root)
    assert tree.total_ever == 3
    assert tree.size == 2
    assert b.alive


def test_nodes_iterates_dfs_preorder():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)
    b = tree.add_leaf(tree.root)
    a1 = tree.add_leaf(a)
    order = list(tree.nodes())
    assert order == [tree.root, a, a1, b]


def test_ports_distinct_per_node():
    tree = DynamicTree()
    nodes = [tree.add_leaf(tree.root) for _ in range(20)]
    ports = [tree.root.port_of(child) for child in nodes]
    assert len(set(ports)) == 20
    for child in nodes:
        assert child.port_to_parent is not None
        assert child.neighbor_on(child.port_to_parent) is tree.root


def test_port_rewired_on_internal_insert():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)
    mid = tree.add_internal(tree.root, a)
    # Root's port now leads to mid, a's parent port leads to mid.
    assert tree.root.port_of(mid) is not None
    assert tree.root.port_of(a) is None
    assert a.neighbor_on(a.port_to_parent) is mid
