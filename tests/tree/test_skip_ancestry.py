"""Property tests for the skip-pointer level-ancestor structure.

The contract: ``DynamicTree.depth`` / ``ancestor_at`` /
``ancestor_distance`` agree *exactly* with the naive parent-pointer
walks of :mod:`repro.tree.paths`, under arbitrary interleavings of all
four topology events — including the splice events that shift whole
subtrees and therefore invalidate cached tables.
"""

import random

import pytest

from repro.tree import DynamicTree, paths


def churn_step(tree, rng, nodes):
    """One random mutation; returns the new node (if any)."""
    alive = [n for n in nodes if n.alive]
    victim = rng.choice(alive)
    op = rng.random()
    if op < 0.40:
        return tree.add_leaf(victim)
    if op < 0.60 and victim.children:
        child = rng.choice(victim.children)
        return tree.add_internal(victim, child)
    if op < 0.80 and not victim.is_root and not victim.children:
        tree.remove_leaf(victim)
        return None
    if not victim.is_root and victim.children:
        tree.remove_internal(victim)
        return None
    return tree.add_leaf(victim)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_agrees_with_naive_walks_under_churn(seed):
    rng = random.Random(seed)
    tree = DynamicTree()
    nodes = [tree.root]
    for step in range(1500):
        new = churn_step(tree, rng, nodes)
        if new is not None:
            nodes.append(new)
        if step % 100 == 0:
            tree.validate()
            alive = [n for n in nodes if n.alive]
            for _ in range(30):
                node = rng.choice(alive)
                depth = tree.depth(node)
                assert depth == paths.depth(node)
                hops = rng.randrange(depth + 1)
                assert tree.ancestor_at(node, hops) \
                    is paths.ancestor_at(node, hops)
                other = rng.choice(alive)
                try:
                    expected = paths.distance_to_ancestor(node, other)
                except ValueError:
                    expected = None
                assert tree.ancestor_distance(node, other) == expected
    tree.validate()


def test_ancestor_at_error_semantics_match_naive():
    tree = DynamicTree()
    node = tree.root
    for _ in range(10):
        node = tree.add_leaf(node)
    assert tree.ancestor_at(node, 10) is tree.root
    with pytest.raises(ValueError):
        tree.ancestor_at(node, 11)
    with pytest.raises(ValueError):
        tree.ancestor_at(node, -1)
    with pytest.raises(ValueError):
        paths.ancestor_at(node, 11)


def test_depth_beyond_recursion_limit():
    """Stale-chain repair must be iterative: a path far deeper than the
    interpreter recursion limit, invalidated by a splice near the root,
    must still answer queries."""
    tree = DynamicTree()
    node = tree.root
    chain = [node]
    for _ in range(5000):
        node = tree.add_leaf(node)
        chain.append(node)
    assert tree.depth(node) == 5000
    # Splice just below the root: every cached table goes stale.
    tree.add_internal(tree.root, chain[1])
    assert tree.depth(node) == 5001
    assert tree.ancestor_at(node, 5001) is tree.root
    # The splice sits *above* chain[1]: its distance from the deep node
    # is unchanged, while its own depth grew by one.
    assert tree.ancestor_distance(node, chain[1]) == 4999
    assert tree.depth(chain[1]) == 2


def test_disabled_mode_matches_naive():
    rng = random.Random(42)
    tree = DynamicTree(skip_ancestry=False)
    nodes = [tree.root]
    for _ in range(300):
        new = churn_step(tree, rng, nodes)
        if new is not None:
            nodes.append(new)
    alive = [n for n in nodes if n.alive]
    for node in alive:
        assert tree.depth(node) == paths.depth(node)
        depth = tree.depth(node)
        assert tree.ancestor_at(node, depth) is tree.root


def test_small_and_large_subtree_invalidation_paths():
    """Both invalidation strategies (budgeted walk and global epoch
    bump) must leave the structure exact."""
    tree = DynamicTree()
    spine = [tree.root]
    for _ in range(300):
        spine.append(tree.add_leaf(spine[-1]))
    # Warm every table.
    for node in spine:
        tree.depth(node)
    # Small subtree: splice near the bottom (budgeted walk path).
    tree.add_internal(spine[-2], spine[-1])
    assert tree.depth(spine[-1]) == 301
    # Large subtree: splice near the top (global epoch bump path).
    tree.add_internal(spine[0], spine[1])
    assert tree.depth(spine[-1]) == 302
    assert tree.ancestor_at(spine[-1], 302) is tree.root
    tree.validate()


def test_mark_budget_boundary_is_exact():
    """Subtrees right at the budget boundary stay correct."""
    budget = DynamicTree._ANC_MARK_BUDGET
    for extra in (-1, 0, 1):
        tree = DynamicTree()
        top = tree.add_leaf(tree.root)
        leaves = [tree.add_leaf(top) for _ in range(budget + extra)]
        for leaf in leaves:
            tree.depth(leaf)
        spliced = tree.add_internal(tree.root, top)
        assert tree.depth(leaves[0]) == 3
        assert tree.ancestor_at(leaves[0], 2) is spliced
        tree.validate()


def test_toggle_off_splice_toggle_on_stays_exact():
    """Splices performed while skip_ancestry is off must still
    invalidate cached tables, so re-enabling the switch cannot
    resurrect stale answers."""
    tree = DynamicTree()
    node = tree.root
    chain = [node]
    for _ in range(20):
        node = tree.add_leaf(node)
        chain.append(node)
    assert tree.depth(node) == 20  # builds tables
    tree.skip_ancestry = False
    tree.add_internal(tree.root, chain[1])
    tree.skip_ancestry = True
    assert tree.depth(node) == 21
    assert tree.ancestor_at(node, 21) is tree.root
    tree.validate()
