"""Tests for ancestor-path helpers."""

import pytest

from repro.tree import (
    DynamicTree,
    ancestor_at,
    ancestors,
    depth,
    distance_to_ancestor,
    is_ancestor,
    path_between,
)


@pytest.fixture
def chain():
    tree = DynamicTree()
    nodes = [tree.root]
    for _ in range(5):
        nodes.append(tree.add_leaf(nodes[-1]))
    return tree, nodes


def test_ancestors_is_reflexive(chain):
    _, nodes = chain
    listed = list(ancestors(nodes[3]))
    assert listed == [nodes[3], nodes[2], nodes[1], nodes[0]]


def test_depth(chain):
    _, nodes = chain
    assert [depth(n) for n in nodes] == [0, 1, 2, 3, 4, 5]


def test_ancestor_at(chain):
    _, nodes = chain
    assert ancestor_at(nodes[5], 0) is nodes[5]
    assert ancestor_at(nodes[5], 3) is nodes[2]
    with pytest.raises(ValueError):
        ancestor_at(nodes[2], 5)


def test_distance_to_ancestor(chain):
    _, nodes = chain
    assert distance_to_ancestor(nodes[4], nodes[1]) == 3
    assert distance_to_ancestor(nodes[4], nodes[4]) == 0
    with pytest.raises(ValueError):
        distance_to_ancestor(nodes[1], nodes[4])  # wrong direction


def test_is_ancestor(chain):
    _, nodes = chain
    assert is_ancestor(nodes[0], nodes[5])
    assert is_ancestor(nodes[5], nodes[5])
    assert not is_ancestor(nodes[5], nodes[0])


def test_is_ancestor_across_branches():
    tree = DynamicTree()
    a = tree.add_leaf(tree.root)
    b = tree.add_leaf(tree.root)
    assert not is_ancestor(a, b)
    assert not is_ancestor(b, a)


def test_path_between(chain):
    _, nodes = chain
    assert path_between(nodes[4], nodes[2]) == [nodes[4], nodes[3], nodes[2]]
    assert path_between(nodes[3], nodes[3]) == [nodes[3]]
    with pytest.raises(ValueError):
        path_between(nodes[1], nodes[3])
