"""Property-based tests: random mutation storms keep the tree sound."""

import random

from hypothesis import given, settings, strategies as st

from repro.tree import DynamicTree
from repro.tree.ports import SequentialPortAssigner


def apply_random_mutations(tree, rng, steps):
    """Apply feasible random mutations; returns counts by kind."""
    counts = {"add_leaf": 0, "add_internal": 0,
              "remove_leaf": 0, "remove_internal": 0}
    for _ in range(steps):
        nodes = list(tree.nodes())
        node = rng.choice(nodes)
        action = rng.randrange(4)
        if action == 0:
            tree.add_leaf(node)
            counts["add_leaf"] += 1
        elif action == 1 and node.children:
            child = rng.choice(node.children)
            tree.add_internal(node, child)
            counts["add_internal"] += 1
        elif action == 2 and not node.is_root and not node.children:
            tree.remove_leaf(node)
            counts["remove_leaf"] += 1
        elif action == 3 and not node.is_root and node.children:
            tree.remove_internal(node)
            counts["remove_internal"] += 1
    return counts


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 120))
def test_random_mutations_keep_tree_valid(seed, steps):
    rng = random.Random(seed)
    tree = DynamicTree()
    apply_random_mutations(tree, rng, steps)
    tree.validate()
    assert tree.size >= 1
    assert tree.root.alive


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 120))
def test_accounting_invariants(seed, steps):
    rng = random.Random(seed)
    tree = DynamicTree()
    counts = apply_random_mutations(tree, rng, steps)
    additions = counts["add_leaf"] + counts["add_internal"]
    removals = counts["remove_leaf"] + counts["remove_internal"]
    assert tree.total_ever == 1 + additions
    assert tree.size == 1 + additions - removals
    assert tree.topology_changes == sum(counts.values())
    assert len(tree.size_history) == tree.topology_changes


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 80))
def test_ports_stay_locally_distinct(seed, steps):
    rng = random.Random(seed)
    tree = DynamicTree(port_assigner=SequentialPortAssigner())
    apply_random_mutations(tree, rng, steps)
    for node in tree.nodes():
        ports = []
        if node.port_to_parent is not None:
            ports.append(node.port_to_parent)
        for child in node.children:
            port = node.port_of(child)
            assert port is not None
            ports.append(port)
        assert len(ports) == len(set(ports))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 80))
def test_depths_consistent_with_parent_chain(seed, steps):
    rng = random.Random(seed)
    tree = DynamicTree()
    apply_random_mutations(tree, rng, steps)
    for node in tree.nodes():
        if node.parent is not None:
            assert tree.depth(node) == tree.depth(node.parent) + 1
