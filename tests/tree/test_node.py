"""Tests for TreeNode port bookkeeping and basic queries."""

import pytest

from repro.tree import DynamicTree, TreeNode


def test_port_attach_and_lookup():
    a, b = TreeNode(1), TreeNode(2)
    a.attach_port(17, b)
    assert a.port_of(b) == 17
    assert a.neighbor_on(17) is b
    assert a.neighbor_on(99) is None
    assert list(a.ports_in_use()) == [17]


def test_duplicate_port_rejected():
    a, b, c = TreeNode(1), TreeNode(2), TreeNode(3)
    a.attach_port(5, b)
    with pytest.raises(ValueError):
        a.attach_port(5, c)


def test_detach_port_to():
    a, b = TreeNode(1), TreeNode(2)
    a.attach_port(5, b)
    a.detach_port_to(b)
    assert a.port_of(b) is None
    a.detach_port_to(b)  # idempotent


def test_degree_and_flags():
    tree = DynamicTree()
    assert tree.root.is_root and tree.root.is_leaf
    child = tree.add_leaf(tree.root)
    assert tree.root.child_degree == 1
    assert not tree.root.is_leaf
    assert not child.is_root and child.is_leaf


def test_identity_semantics():
    a, b = TreeNode(1), TreeNode(1)
    assert a != b           # identity, not id equality
    assert a == a
    assert hash(a) == 1


def test_repr_marks_dead_nodes():
    tree = DynamicTree()
    child = tree.add_leaf(tree.root)
    tree.remove_leaf(child)
    assert "dead" in repr(child)
    assert "dead" not in repr(tree.root)
