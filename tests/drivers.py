"""Shared test scaffolding: drive a bare controller over random churn.

The session layer owns the supported scenario driver
(:func:`repro.service.drive_scenario`); tests that poke a controller's
*internals* — domains, stage boundaries, counters mid-flight — still
want to feed a raw ``handle`` callable directly.  ``drive_handle`` does
that with the same stream discipline (one :class:`NodePicker`, one
``random.Random(seed)``, :func:`random_request` per step) so tallies
stay comparable across the suite.
"""

import random

from repro.core.requests import RequestKind
from repro.workloads.scenarios import (
    NodePicker,
    ScenarioResult,
    random_request,
)


def drive_handle(tree, handle, steps, seed=0, mix=None,
                 keep_outcomes=False, on_step=None, stop_when=None):
    """Feed ``steps`` random feasible requests to ``handle``."""
    rng = random.Random(seed)
    picker = NodePicker(tree)
    result = ScenarioResult()
    try:
        for step in range(steps):
            outcome = handle(random_request(tree, rng, mix=mix,
                                            picker=picker))
            result.record(outcome, keep_outcomes)
            if on_step is not None:
                on_step(step, outcome)
            if stop_when is not None and stop_when():
                break
    finally:
        picker.detach()
    return result


def churn_app(tree, app, steps, seed=0, mix=None, on_step=None):
    """Feed ``steps`` *topological* requests through ``app.serve``.

    PLAIN draws are skipped (not counted) so ``steps`` counts actual
    topology churn — the figure the Section 5 theorem bounds are stated
    against.  ``on_step(done)`` fires after each served change.
    """
    rng = random.Random(seed)
    picker = NodePicker(tree)
    done = 0
    try:
        while done < steps:
            request = random_request(tree, rng, mix=mix, picker=picker)
            if request.kind is RequestKind.PLAIN:
                continue
            app.serve(request)
            done += 1
            if on_step is not None:
                on_step(done)
    finally:
        picker.detach()
