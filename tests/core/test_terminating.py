"""Tests for the terminating controller (Observation 2.1)."""

import pytest

from repro.errors import ControllerError
from repro import (
    DynamicTree,
    OutcomeStatus,
    Request,
    RequestKind,
    TerminatingController,
)
from repro.workloads import build_random_tree
from tests.drivers import drive_handle


def plain(node):
    return Request(RequestKind.PLAIN, node)


def test_never_rejects():
    tree = DynamicTree()
    controller = TerminatingController(tree, m=5, w=2, u=50)
    statuses = [controller.submit(plain(tree.root)).status
                for _ in range(12)]
    assert OutcomeStatus.REJECTED not in statuses
    assert OutcomeStatus.PENDING in statuses


def test_grants_between_m_minus_w_and_m_at_termination():
    for seed in range(5):
        tree = build_random_tree(10, seed=seed)
        controller = TerminatingController(tree, m=30, w=8, u=300)
        drive_handle(tree, controller.submit, steps=200, seed=seed + 30,
                     stop_when=lambda: controller.terminated)
        if controller.terminated:
            assert 30 - 8 <= controller.granted <= 30


def test_requests_after_termination_are_queued():
    tree = DynamicTree()
    controller = TerminatingController(tree, m=2, w=1, u=20)
    while not controller.terminated:
        controller.submit(plain(tree.root))
    before = len(controller.pending)
    outcome = controller.submit(plain(tree.root))
    assert outcome.status is OutcomeStatus.PENDING
    assert len(controller.pending) == before + 1


def test_no_grant_after_termination():
    tree = DynamicTree()
    controller = TerminatingController(tree, m=3, w=1, u=20)
    while not controller.terminated:
        controller.submit(plain(tree.root))
    granted_at_termination = controller.granted
    for _ in range(5):
        controller.submit(plain(tree.root))
    assert controller.granted == granted_at_termination


def test_termination_charges_broadcast_and_upcast():
    tree = build_random_tree(10, seed=1)
    controller = TerminatingController(tree, m=2, w=1, u=100)
    while not controller.terminated:
        controller.submit(plain(tree.root))
    assert controller.counters.reset_moves >= 2 * tree.size


def test_rejecting_inner_controller_is_rejected():
    """The wrapper guards against misconfiguration."""
    tree = DynamicTree()
    controller = TerminatingController(tree, m=1, w=1, u=10)
    # Force the inner controller into reject mode behind the wrapper's
    # back; the wrapper must notice rather than mislabel the outcome.
    controller.inner.reject_on_exhaustion = True
    controller.submit(plain(tree.root))
    with pytest.raises(ControllerError):
        controller.submit(plain(tree.root))
