"""Tests for package and store data structures."""

from repro.core.packages import MobilePackage, NodeStore, StoreMap
from repro import DynamicTree


def test_mobile_package_interval_split():
    package = MobilePackage(level=2, size=8, interval=(1, 8))
    left, right = package.split_interval()
    assert left == (1, 4) and right == (5, 8)
    assert MobilePackage(level=0, size=1).split_interval() == (None, None)


def test_node_store_totals():
    store = NodeStore()
    store.mobile.append(MobilePackage(level=1, size=4))
    store.static_permits = 3
    assert store.total_permits() == 7
    assert not store.is_empty


def test_take_static_serial_consumes_intervals_in_order():
    store = NodeStore()
    store.static_intervals = [(5, 6), (9, 9)]
    assert [store.take_static_serial() for _ in range(4)] == [5, 6, 9, None]
    assert store.static_intervals == []


def test_merge_from_moves_everything():
    a, b = NodeStore(), NodeStore()
    b.mobile.append(MobilePackage(level=0, size=1))
    b.static_permits = 2
    b.static_intervals = [(1, 2)]
    b.has_reject = True
    a.merge_from(b)
    assert a.total_permits() == 3
    assert a.has_reject
    assert b.is_empty or b.has_reject  # reject flag may remain on b
    assert b.total_permits() == 0


def test_store_map_lazy_and_discard():
    tree = DynamicTree()
    stores = StoreMap()
    assert stores.peek(tree.root) is None
    store = stores.get(tree.root)
    store.static_permits = 4
    assert stores.peek(tree.root) is store
    assert stores.total_parked_permits() == 4
    taken = stores.discard(tree.root)
    assert taken is store
    assert stores.peek(tree.root) is None
    assert stores.discard(tree.root) is None
