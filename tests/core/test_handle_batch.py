"""Batch semantics: ``handle_batch`` must be outcome- and counter-exact.

The contract of the request engine (docs/architecture.md): feeding a
request stream through ``handle_batch`` in chunks of any size yields
*identical* per-request outcomes and move-counter accounting to feeding
the same stream through sequential ``handle`` calls.  Verified here by
driving twin trees (identical construction => identical node ids) with
a recorded stream, across every initial topology of
``workloads/scenarios.py``, every request mix, and all four controller
flavours — plus the engine-off configuration, so the skip-pointer /
slot fast paths are proven behaviour-preserving too.
"""

import random

import pytest

from repro.core.adaptive import AdaptiveController
from repro.core.centralized import CentralizedController
from repro.core.iterated import IteratedController
from repro.core.terminating import TerminatingController
from repro.workloads import (
    NodePicker,
    TreeMirror,
    build_caterpillar,
    build_path,
    build_random_tree,
    build_star,
    default_mix,
    grow_only_mix,
    random_request,
    request_spec,
)

TOPOLOGIES = {
    "random": lambda n: build_random_tree(n, seed=11),
    "path": build_path,
    "star": build_star,
    "caterpillar": build_caterpillar,
}


def drive_twins(make_controller, build, n, steps, batch_size, mix, seed,
                skip_b=True):
    """Run a stream sequentially on tree A, batched (or re-configured)
    on twin tree B; return both (controller, outcomes, tree) triples."""
    tree_a, tree_b = build(n), build(n)
    tree_b.skip_ancestry = skip_b
    ctrl_a, submit_a = make_controller(tree_a)
    ctrl_b, _ = make_controller(tree_b)

    rng = random.Random(seed)
    picker = NodePicker(tree_a)
    mirror = TreeMirror(tree_b)
    outcomes_a, specs = [], []
    for _ in range(steps):
        request = random_request(tree_a, rng, mix=mix, picker=picker)
        specs.append(request_spec(request))
        outcomes_a.append(submit_a(request))
    picker.detach()

    outcomes_b = []
    for base in range(0, steps, batch_size):
        chunk = mirror.requests(specs[base:base + batch_size])
        outcomes_b.extend(ctrl_b.handle_batch(chunk))
    mirror.detach()
    return (ctrl_a, outcomes_a, tree_a), (ctrl_b, outcomes_b, tree_b)


def assert_equivalent(a, b):
    ctrl_a, outcomes_a, tree_a = a
    ctrl_b, outcomes_b, tree_b = b
    assert [o.status for o in outcomes_a] == [o.status for o in outcomes_b]
    assert ctrl_a.counters.snapshot() == ctrl_b.counters.snapshot()
    assert ctrl_a.granted == ctrl_b.granted
    assert tree_a.size == tree_b.size


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("batch_size", [1, 7, 64])
def test_iterated_batch_equals_sequential(topology, batch_size):
    def make(tree):
        ctrl = IteratedController(tree, m=800, w=50, u=800)
        return ctrl, ctrl.handle
    a, b = drive_twins(make, TOPOLOGIES[topology], n=200, steps=400,
                       batch_size=batch_size, mix=default_mix(), seed=3)
    assert_equivalent(a, b)


@pytest.mark.parametrize("mix_name,mix", [
    ("default", default_mix()),
    ("grow_only", grow_only_mix()),
])
def test_centralized_batch_equals_sequential(mix_name, mix):
    def make(tree):
        ctrl = CentralizedController(tree, m=600, w=80, u=900)
        return ctrl, ctrl.handle
    a, b = drive_twins(make, TOPOLOGIES["random"], n=150, steps=500,
                       batch_size=16, mix=mix, seed=5)
    assert_equivalent(a, b)


def test_adaptive_batch_equals_sequential():
    def make(tree):
        ctrl = AdaptiveController(tree, m=900, w=60)
        return ctrl, ctrl.handle
    a, b = drive_twins(make, TOPOLOGIES["random"], n=120, steps=600,
                       batch_size=25, mix=default_mix(), seed=7)
    assert_equivalent(a, b)
    assert a[0].epochs_run == b[0].epochs_run


def test_terminating_batch_equals_sequential():
    def make(tree):
        ctrl = TerminatingController(tree, m=150, w=25, u=600)
        return ctrl, ctrl.submit
    a, b = drive_twins(make, TOPOLOGIES["random"], n=150, steps=400,
                       batch_size=10, mix=default_mix(), seed=9)
    assert_equivalent(a, b)
    assert a[0].terminated == b[0].terminated
    assert len(a[0].pending) == len(b[0].pending)


def test_engine_off_matches_engine_on():
    """skip_ancestry=False must reproduce the engine's outcomes and
    counters exactly (the fast paths are pure optimizations)."""
    def make(tree):
        ctrl = IteratedController(tree, m=800, w=50, u=800)
        return ctrl, ctrl.handle
    a, b = drive_twins(make, TOPOLOGIES["path"], n=250, steps=500,
                       batch_size=32, mix=default_mix(), seed=13,
                       skip_b=False)
    assert_equivalent(a, b)


def test_exhaustion_and_reject_wave_through_batches():
    """A stream long enough to exhaust the budget: the reject wave must
    land on the same request index in batched mode."""
    def make(tree):
        ctrl = CentralizedController(tree, m=40, w=10, u=400)
        return ctrl, ctrl.handle
    a, b = drive_twins(make, TOPOLOGIES["random"], n=100, steps=300,
                       batch_size=9, mix=default_mix(), seed=17)
    assert_equivalent(a, b)
    assert a[0].rejecting and b[0].rejecting


def test_store_slot_arbitration():
    """Only one controller claims the per-node store slots; a second
    falls back to dict lookups; detach releases the claim."""
    tree = build_random_tree(60, seed=2)
    first = CentralizedController(tree, m=100, w=20, u=200)
    second = CentralizedController(tree, m=100, w=20, u=200)
    assert first._fast and not second._fast
    assert tree.store_slot_owner is first
    first.detach()
    assert tree.store_slot_owner is None
    third = CentralizedController(tree, m=100, w=20, u=200)
    assert third._fast
    second.detach()
    third.detach()
