"""Unit and property tests for the shared controller kernel."""

import random

import pytest

from repro.core import kernel
from repro.core.packages import MobilePackage, NodeStore
from repro.core.params import ControllerParams
from repro.errors import ControllerError
from repro.workloads import build_random_tree

PARAM_GRID = [
    ControllerParams(m=400, w=100, u=200),
    ControllerParams(m=3000, w=40, u=3000),
    ControllerParams(m=64, w=1, u=7),
    ControllerParams(m=2400, w=30, u=2880),
]


# ----------------------------------------------------------------------
# The level-window partition behind the indexed lookup.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("params", PARAM_GRID)
def test_filler_windows_admit_exactly_one_level_per_distance(params):
    """For every hop distance exactly one level passes the Section 3.1
    window — the fact that turns the board scan into one dict probe.

    Checked densely near the small windows and at every window boundary
    (plus or minus one) across all levels.
    """
    dists = set(range(0, min(4 * params.psi, 50_000)))
    for level in range(params.max_level + 2):
        low = (1 << level) * params.psi
        dists.update((low - 1, low, low + 1, 2 * low - 1, 2 * low,
                      2 * low + 1))
    for dist in sorted(d for d in dists if d >= 0):
        matching = [level for level in range(params.max_level + 3)
                    if params.in_filler_window(level, dist)]
        assert matching == [kernel.filler_level(params, dist)], dist


@pytest.mark.parametrize("params", PARAM_GRID)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_indexed_lookup_equals_linear_scan(params, seed):
    """peek/take_filler pick exactly the package the legacy linear scan
    picks (first-parked of the lowest in-window level), on randomly
    parked stores and random query distances."""
    rng = random.Random(seed)
    store = NodeStore()
    for _ in range(40):
        level = rng.randrange(params.max_level + 1)
        kernel.park(store, MobilePackage(level=level,
                                         size=params.mobile_size(level)))
    for _ in range(300):
        dist = rng.randrange(4 * (1 << params.max_level) * params.psi)
        expected = kernel.scan_filler(store, dist, params)
        assert kernel.peek_filler(store, dist, params) is expected
        if expected is not None and rng.random() < 0.3:
            taken = kernel.take_filler(store, dist, params)
            assert taken is expected
            assert expected not in store.mobile
            if rng.random() < 0.5:  # interleave re-parking
                level = rng.randrange(params.max_level + 1)
                kernel.park(store, MobilePackage(
                    level=level, size=params.mobile_size(level)))


def test_index_survives_direct_mobile_mutation():
    """Code that appends to ``store.mobile`` directly (tests, fixtures)
    must still be seen by the indexed lookup: the index rebuilds."""
    params = PARAM_GRID[0]
    store = NodeStore()
    kernel.park(store, MobilePackage(level=0, size=params.mobile_size(0)))
    assert kernel.peek_filler(store, 0, params) is not None
    direct = MobilePackage(level=1, size=params.mobile_size(1))
    store.mobile.append(direct)  # bypasses kernel.park
    dist = 2 * params.psi + 1    # level-1 window
    assert kernel.peek_filler(store, dist, params) is direct


# ----------------------------------------------------------------------
# Distribution plans.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("params", PARAM_GRID)
def test_plan_distribution_shape_and_conservation(params):
    for level in range(params.max_level + 1):
        size = params.mobile_size(level)
        dist = 2 * (1 << level) * params.psi  # top of the level's window
        plan = kernel.plan_distribution(params, level, size, dist)
        assert plan.start_dist == dist and plan.moves == dist
        assert plan.final_size == params.mobile_size(0)
        assert len(plan.steps) == level
        dists = [step.dist for step in plan.steps]
        assert dists == sorted(dists, reverse=True)
        assert all(step.dist < dist for step in plan.steps)
        expected_levels = list(range(level - 1, -1, -1))
        assert [step.level for step in plan.steps] == expected_levels
        for step in plan.steps:
            assert step.dist == params.uk_distance(step.level)
            assert step.size == params.mobile_size(step.level)
        # Permits conserve: parked halves plus the level-0 remainder.
        assert sum(s.size for s in plan.steps) + plan.final_size == size


# ----------------------------------------------------------------------
# The permit ledger.
# ----------------------------------------------------------------------
def test_ledger_grant_enforces_safety():
    params = ControllerParams(m=2, w=1, u=4)
    ledger = kernel.PermitLedger(params=params, storage=2)
    ledger.grant()
    ledger.grant()
    with pytest.raises(ControllerError):
        ledger.grant()


def test_ledger_create_package_draws_storage_and_intervals():
    params = ControllerParams(m=64, w=8, u=16)
    ledger = kernel.PermitLedger(params=params, storage=64,
                                 track_intervals=True)
    package = ledger.create_package(2, dist=0)
    assert package.size == params.mobile_size(2)
    assert ledger.storage == 64 - package.size
    lo, hi = package.interval
    assert (lo, hi) == (1, package.size)
    assert ledger.covers(ledger.storage)
    assert not ledger.covers(ledger.storage + 1)
    with pytest.raises(ControllerError):
        ledger.create_package(params.max_level + 8, dist=0)


def test_ledger_unused_counts_storage_plus_parked():
    params = ControllerParams(m=10, w=2, u=4)
    ledger = kernel.PermitLedger(params=params, storage=7)
    assert ledger.unused(parked=3) == 10


# ----------------------------------------------------------------------
# Reject wave and trace.
# ----------------------------------------------------------------------
def test_broadcast_reject_touches_every_node_and_returns_cost():
    tree = build_random_tree(17, seed=3)
    stores = {node: NodeStore() for node in tree.nodes()}
    trace = kernel.KernelTrace()
    cost = kernel.broadcast_reject(tree, stores.__getitem__, trace=trace)
    assert cost == tree.size == 17
    assert all(store.has_reject for store in stores.values())
    assert list(trace) == [("reject_wave", 17)]


def test_trace_records_take_park_absorb():
    params = ControllerParams(m=64, w=8, u=16)
    trace = kernel.KernelTrace()
    store = NodeStore()
    package = MobilePackage(level=0, size=params.mobile_size(0))
    kernel.park(store, package, trace=trace)
    taken = kernel.take_filler(store, 0, params, trace=trace)
    kernel.absorb(store, taken, trace=trace)
    ops = [event[0] for event in trace]
    assert ops == ["park", "take", "absorb"]
    assert store.static_permits == package.size
