"""Machine-checking the domain invariants of Section 3.2.

The paper's entire liveness analysis rests on three invariants over the
(analysis-only) package domains.  These property tests run randomized
dynamic scenarios with the :class:`DomainTracker` attached and check
the invariants after every single request — on random trees (shallow,
level-0-dominated) and on deep paths (the multi-level regime where the
recursive splitting of ``Proc`` actually exercises domain creation).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CentralizedController, Request, RequestKind
from repro.core.domains import DomainTracker
from repro.errors import InvariantViolation
from repro.workloads import build_path, build_random_tree
from tests.drivers import drive_handle


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_domain_invariants_on_random_trees(seed):
    tree = build_random_tree(40, seed=seed)
    controller = CentralizedController(tree, m=600, w=150, u=1500,
                                       track_domains=True)
    def check(step, outcome):
        controller.domains.check_invariants()
    drive_handle(tree, controller.handle, steps=150, seed=seed + 1,
                 on_step=check)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_domain_invariants_on_deep_paths(seed):
    tree = build_path(700)
    controller = CentralizedController(tree, m=3000, w=1500, u=1400,
                                       track_domains=True)
    assert controller.params.creation_level(699) >= 2
    def check(step, outcome):
        controller.domains.check_invariants()
    drive_handle(tree, controller.handle, steps=250, seed=seed,
                 on_step=check)


def test_domains_created_by_deep_distribution():
    tree = build_path(900)
    controller = CentralizedController(tree, m=4000, w=2000, u=1800,
                                       track_domains=True)
    deep = max(tree.nodes(), key=tree.depth)
    controller.handle(Request(RequestKind.PLAIN, deep))
    level = controller.params.creation_level(tree.depth(deep))
    tracked = controller.domains.tracked_packages()
    assert len(tracked) == level  # one parked package per level < j(u)
    for package in tracked:
        domain = controller.domains.domain_of(package)
        assert len(domain) == controller.params.domain_size(package.level)
    controller.domains.check_invariants()


def test_internal_insert_updates_domain():
    """Case 4: an inserted parent joins the domain, the bottom leaves."""
    tree = build_path(900)
    controller = CentralizedController(tree, m=4000, w=2000, u=1800,
                                       track_domains=True)
    deep = max(tree.nodes(), key=tree.depth)
    controller.handle(Request(RequestKind.PLAIN, deep))
    package = max(controller.domains.tracked_packages(),
                  key=lambda p: p.level)
    domain_before = list(controller.domains.domain_of(package))
    middle = domain_before[len(domain_before) // 2]
    inserted = tree.add_internal(middle.parent, middle)
    domain_after = controller.domains.domain_of(package)
    assert inserted in domain_after
    assert len(domain_after) == len(domain_before)  # invariant 1 kept
    assert domain_after[-1] is not domain_before[-1]  # bottom evicted
    controller.domains.check_invariants()


def test_deleted_nodes_stay_in_domains():
    """Case 5: deletion does not shrink a domain."""
    tree = build_path(900)
    controller = CentralizedController(tree, m=4000, w=2000, u=1800,
                                       track_domains=True)
    deep = max(tree.nodes(), key=tree.depth)
    controller.handle(Request(RequestKind.PLAIN, deep))
    package = max(controller.domains.tracked_packages(),
                  key=lambda p: p.level)
    domain = controller.domains.domain_of(package)
    victim = domain[len(domain) // 2]
    tree.remove_internal(victim)
    assert victim in controller.domains.domain_of(package)
    assert not victim.alive
    controller.domains.check_invariants()


def test_corrupted_domain_is_detected():
    """The checker itself must catch planted violations."""
    tree = build_path(900)
    controller = CentralizedController(tree, m=4000, w=2000, u=1800,
                                       track_domains=True)
    deep = max(tree.nodes(), key=tree.depth)
    controller.handle(Request(RequestKind.PLAIN, deep))
    tracker: DomainTracker = controller.domains
    package = tracker.tracked_packages()[0]
    tracker.domain_of(package).pop()  # break invariant 1
    with pytest.raises(InvariantViolation):
        tracker.check_invariants()
