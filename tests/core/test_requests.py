"""Tests for request/outcome types and event execution."""

import pytest

from repro.errors import ControllerError
from repro import DynamicTree, Request, RequestKind, Outcome, OutcomeStatus
from repro.core.requests import perform_event


def test_kind_flags():
    assert not RequestKind.PLAIN.is_topological
    assert RequestKind.ADD_LEAF.is_topological
    assert RequestKind.REMOVE_LEAF.is_removal
    assert not RequestKind.ADD_INTERNAL.is_removal


def test_add_internal_requires_child():
    tree = DynamicTree()
    with pytest.raises(ControllerError):
        Request(RequestKind.ADD_INTERNAL, tree.root)


def test_other_kinds_reject_child():
    tree = DynamicTree()
    leaf = tree.add_leaf(tree.root)
    with pytest.raises(ControllerError):
        Request(RequestKind.PLAIN, tree.root, child=leaf)


def test_request_ids_are_unique():
    tree = DynamicTree()
    a = Request(RequestKind.PLAIN, tree.root)
    b = Request(RequestKind.PLAIN, tree.root)
    assert a.request_id != b.request_id


def test_outcome_flags():
    tree = DynamicTree()
    request = Request(RequestKind.PLAIN, tree.root)
    assert Outcome(OutcomeStatus.GRANTED, request).granted
    assert Outcome(OutcomeStatus.REJECTED, request).rejected
    assert not Outcome(OutcomeStatus.PENDING, request).granted


def test_perform_event_each_kind():
    tree = DynamicTree()
    leaf = perform_event(tree, Request(RequestKind.ADD_LEAF, tree.root))
    assert leaf.parent is tree.root
    mid = perform_event(
        tree, Request(RequestKind.ADD_INTERNAL, tree.root, child=leaf))
    assert leaf.parent is mid
    assert perform_event(tree, Request(RequestKind.PLAIN, leaf)) is None
    perform_event(tree, Request(RequestKind.REMOVE_INTERNAL, mid))
    assert leaf.parent is tree.root
    perform_event(tree, Request(RequestKind.REMOVE_LEAF, leaf))
    assert tree.size == 1
