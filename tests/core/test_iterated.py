"""Tests for the halving-iteration wrapper (Observation 3.4)."""

from repro import (
    DynamicTree,
    IteratedController,
    OutcomeStatus,
    Request,
    RequestKind,
)
from repro.workloads import build_random_tree
from tests.drivers import drive_handle


def plain(node):
    return Request(RequestKind.PLAIN, node)


def test_all_permits_eventually_granted_with_small_w():
    tree = DynamicTree()
    controller = IteratedController(tree, m=200, w=1, u=100)
    grants = 0
    while True:
        outcome = controller.handle(plain(tree.root))
        if outcome.rejected:
            break
        grants += 1
    assert grants >= 199  # (M, 1): at most one permit wasted
    assert controller.stages_run > 1  # halving actually iterated


def test_w_zero_grants_exactly_m():
    tree = DynamicTree()
    controller = IteratedController(tree, m=50, w=0, u=100)
    grants = 0
    for _ in range(80):
        outcome = controller.handle(plain(tree.root))
        if outcome.granted:
            grants += 1
    assert grants == 50  # W = 0 means *exactly* M permits
    assert controller.rejecting


def test_w_zero_on_dynamic_scenario():
    tree = build_random_tree(15, seed=1)
    controller = IteratedController(tree, m=60, w=0, u=400)
    result = drive_handle(tree, controller.handle, steps=400, seed=2)
    assert result.granted == 60
    assert result.rejected > 0


def test_liveness_across_stages():
    """After the final reject, granted >= M - W for the *outer* pair."""
    for seed in range(4):
        tree = build_random_tree(12, seed=seed)
        controller = IteratedController(tree, m=100, w=7, u=500)
        drive_handle(tree, controller.handle, steps=600, seed=seed + 9,
                     stop_when=lambda: controller.rejecting)
        if controller.rejecting:
            assert controller.granted >= 100 - 7


def test_safety_across_stages():
    tree = build_random_tree(12, seed=3)
    controller = IteratedController(tree, m=64, w=3, u=500)
    drive_handle(tree, controller.handle, steps=500, seed=5)
    assert controller.granted <= 64


def test_unused_permits_accounting():
    tree = build_random_tree(10, seed=4)
    controller = IteratedController(tree, m=300, w=5, u=400)
    drive_handle(tree, controller.handle, steps=120, seed=6)
    assert controller.granted + controller.unused_permits() == 300


def test_rejections_are_sticky():
    tree = DynamicTree()
    controller = IteratedController(tree, m=5, w=1, u=50)
    outcomes = [controller.handle(plain(tree.root)) for _ in range(20)]
    statuses = [o.status for o in outcomes]
    first_reject = statuses.index(OutcomeStatus.REJECTED)
    assert all(s is OutcomeStatus.REJECTED
               for s in statuses[first_reject:])


def test_pending_mode_final_stage():
    tree = DynamicTree()
    controller = IteratedController(tree, m=10, w=2, u=50,
                                    reject_on_exhaustion=False)
    statuses = []
    for _ in range(20):
        statuses.append(controller.handle(plain(tree.root)).status)
    assert OutcomeStatus.PENDING in statuses
    assert OutcomeStatus.REJECTED not in statuses
    assert controller.exhausted


def test_small_budget_deep_request_does_not_livelock():
    """A stage that cannot cover a deep request must cut to the final
    stage instead of re-halving forever."""
    tree = DynamicTree()
    node = tree.root
    for _ in range(300):
        node = tree.add_leaf(node)
    controller = IteratedController(tree, m=3, w=1, u=700)
    outcome = controller.handle(plain(node))
    # Either granted (final stage found budget) or rejected; never hangs.
    assert outcome.status in (OutcomeStatus.GRANTED, OutcomeStatus.REJECTED)
