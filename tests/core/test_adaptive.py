"""Tests for the unknown-U controller (Theorem 3.5)."""

import pytest

from repro.errors import ControllerError
from repro import (
    AdaptiveController,
    DynamicTree,
    Request,
    RequestKind,
)
from repro.workloads import build_random_tree, grow_only_mix
from tests.drivers import drive_handle


def test_epochs_roll_over_under_churn():
    tree = build_random_tree(10, seed=1)
    controller = AdaptiveController(tree, m=5000, w=100)
    drive_handle(tree, controller.handle, steps=600, seed=2)
    assert controller.epochs_run > 1


def test_epoch_u_always_bounds_nodes_during_epoch():
    """U_i = 2 N_i with the epoch cut at U_i/4 changes keeps U_i valid."""
    tree = build_random_tree(10, seed=3)
    controller = AdaptiveController(tree, m=20000, w=100)
    def check(step, outcome):
        assert tree.size <= controller._epoch_u
    drive_handle(tree, controller.handle, steps=800, seed=4, on_step=check)


def test_grant_conservation():
    tree = build_random_tree(10, seed=5)
    controller = AdaptiveController(tree, m=900, w=50)
    result = drive_handle(tree, controller.handle, steps=500, seed=6)
    assert controller.granted == result.granted
    assert controller.granted <= 900


def test_liveness_composes_across_epochs():
    for seed in range(4):
        tree = build_random_tree(8, seed=seed)
        controller = AdaptiveController(tree, m=120, w=9)
        drive_handle(tree, controller.handle, steps=900, seed=seed + 20,
                     stop_when=lambda: controller.rejecting)
        if controller.rejecting:
            assert controller.granted >= 120 - 9


def test_growth_scenario_scales_epochs():
    """Pure growth: the epoch budget (U_i/4 changes) doubles each time."""
    tree = DynamicTree()
    controller = AdaptiveController(tree, m=100000, w=1000)
    drive_handle(tree, controller.handle, steps=2000, seed=7,
                 mix=grow_only_mix())
    assert controller.epochs_run >= 3
    assert tree.size > 500


def test_maxsize_variant():
    tree = DynamicTree()
    controller = AdaptiveController(tree, m=100000, w=1000,
                                    variant="maxsize")
    drive_handle(tree, controller.handle, steps=1500, seed=8,
                 mix=grow_only_mix())
    assert controller.epochs_run > 1
    assert controller.granted <= 100000


def test_unknown_variant_rejected():
    tree = DynamicTree()
    with pytest.raises(ControllerError):
        AdaptiveController(tree, m=10, w=1, variant="bogus")


def test_detach():
    tree = DynamicTree()
    controller = AdaptiveController(tree, m=10, w=1)
    controller.detach()
    with pytest.raises(ControllerError):
        controller.handle(Request(RequestKind.PLAIN, tree.root))
