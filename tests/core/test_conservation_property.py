"""Property-based safety/conservation tests on the core controller.

These are the two facts the whole paper rests on:

* **safety** — the number of grants never exceeds M, under any request
  stream and any topology churn;
* **conservation** — permits never appear or vanish: granted + storage
  + parked-in-packages = M at every instant.

Plus the structural invariant that every package's size matches its
level (`2^level * phi`), which ``Proc``'s halving must preserve.
"""

from hypothesis import given, settings, strategies as st

from repro import CentralizedController
from repro.workloads import (
    build_caterpillar,
    build_path,
    build_random_tree,
    build_star,
)
from tests.drivers import drive_handle


BUILDERS = {
    "random": lambda n, seed: build_random_tree(n, seed=seed),
    "path": lambda n, seed: build_path(n),
    "star": lambda n, seed: build_star(n),
    "caterpillar": lambda n, seed: build_caterpillar(n),
}


@settings(max_examples=25, deadline=None)
@given(
    shape=st.sampled_from(sorted(BUILDERS)),
    n=st.integers(2, 60),
    m=st.integers(1, 400),
    w=st.integers(1, 100),
    seed=st.integers(0, 10_000),
)
def test_safety_and_conservation(shape, n, m, w, seed):
    tree = BUILDERS[shape](n, seed)
    controller = CentralizedController(tree, m=m, w=w, u=4 * n + 400)

    def check(step, outcome):
        assert controller.granted <= m
        assert controller.granted + controller.unused_permits() == m
        assert controller.storage >= 0

    drive_handle(tree, controller.handle, steps=120, seed=seed,
                 on_step=check)
    tree.validate()


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(2, 50),
    m=st.integers(50, 500),
    w=st.integers(1, 60),
    seed=st.integers(0, 10_000),
)
def test_package_sizes_match_levels(n, m, w, seed):
    tree = build_random_tree(n, seed=seed)
    controller = CentralizedController(tree, m=m, w=w, u=4 * n + 300)

    def check(step, outcome):
        for node, store in controller.stores.items():
            for package in store.mobile:
                expected = controller.params.mobile_size(package.level)
                assert package.size == expected
            assert store.static_permits >= 0

    drive_handle(tree, controller.handle, steps=100, seed=seed + 1,
                 on_step=check)


@settings(max_examples=15, deadline=None)
@given(m=st.integers(1, 80), w=st.integers(1, 20),
       seed=st.integers(0, 10_000))
def test_liveness_property(m, w, seed):
    """Whenever the reject wave fires, granted >= M - W."""
    tree = build_random_tree(10, seed=seed)
    controller = CentralizedController(tree, m=m, w=w, u=2000)
    drive_handle(tree, controller.handle, steps=400, seed=seed + 2,
                 stop_when=lambda: controller.rejecting)
    if controller.rejecting:
        assert controller.granted >= m - w


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), w=st.integers(1, 1000))
def test_static_pools_never_exceed_phi_without_deletions(seed, w):
    """On grow-only scenarios a node's static pool stays <= phi
    (deletion hand-over is the only way pools can merge)."""
    from repro.workloads import grow_only_mix
    tree = build_random_tree(10, seed=seed)
    controller = CentralizedController(tree, m=2 * w + 10, w=w, u=2000)
    phi = controller.params.phi

    def check(step, outcome):
        for node, store in controller.stores.items():
            assert store.static_permits <= phi

    drive_handle(tree, controller.handle, steps=100, seed=seed + 3,
                 mix=grow_only_mix(), on_step=check)
