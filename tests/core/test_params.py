"""Tests for the controller parameter arithmetic (Section 3.1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ControllerError
from repro.core import ControllerParams


def test_phi_formula():
    # W >= 2U: phi = floor(W / 2U); otherwise 1.
    assert ControllerParams(m=100, w=100, u=10).phi == 5
    assert ControllerParams(m=100, w=19, u=10).phi == 1
    assert ControllerParams(m=100, w=1, u=100).phi == 1


def test_psi_formula():
    params = ControllerParams(m=100, w=50, u=64)
    # ceil(log2(64) + 2) = 8; max(ceil(64/50), 1) = 2 -> 4 * 8 * 2 = 64.
    assert params.psi == 64
    params = ControllerParams(m=100, w=100, u=64)
    assert params.psi == 4 * 8 * 1


def test_psi_is_a_multiple_of_four():
    for u in (1, 2, 3, 17, 100, 999):
        for w in (1, 3, 2 * u, 10 * u):
            assert ControllerParams(m=10, w=w, u=u).psi % 4 == 0


def test_mobile_size_doubles_per_level():
    params = ControllerParams(m=1000, w=400, u=10)
    phi = params.phi
    assert [params.mobile_size(i) for i in range(4)] == [
        phi, 2 * phi, 4 * phi, 8 * phi
    ]


def test_filler_window_level_zero_includes_distance_zero():
    params = ControllerParams(m=10, w=5, u=16)
    assert params.in_filler_window(0, 0)
    assert params.in_filler_window(0, 2 * params.psi)
    assert not params.in_filler_window(0, 2 * params.psi + 1)


def test_filler_window_higher_levels_are_half_open():
    params = ControllerParams(m=10, w=5, u=16)
    psi = params.psi
    for level in (1, 2, 3):
        low = (1 << level) * psi
        high = (1 << (level + 1)) * psi
        assert not params.in_filler_window(level, low)
        assert params.in_filler_window(level, low + 1)
        assert params.in_filler_window(level, high)
        assert not params.in_filler_window(level, high + 1)


def test_windows_of_consecutive_levels_tile_the_line():
    """Every distance >= 0 lies in exactly one level's window."""
    params = ControllerParams(m=10, w=5, u=64)
    for dist in range(0, 40 * params.psi, 13):
        matching = [lvl for lvl in range(12)
                    if params.in_filler_window(lvl, dist)]
        assert len(matching) == 1, f"distance {dist} matched {matching}"


def test_creation_level_matches_window():
    params = ControllerParams(m=10, w=5, u=128)
    psi = params.psi
    assert params.creation_level(0) == 0
    assert params.creation_level(2 * psi) == 0
    assert params.creation_level(2 * psi + 1) == 1
    assert params.creation_level(4 * psi) == 1
    assert params.creation_level(4 * psi + 1) == 2


def test_uk_distances_are_integral_and_ordered():
    params = ControllerParams(m=10, w=5, u=256)
    distances = [params.uk_distance(k) for k in range(6)]
    assert distances[0] == 3 * params.psi // 2
    for a, b in zip(distances, distances[1:]):
        assert b == 2 * a


def test_uk_below_window_floor():
    """u_{k-1} lies strictly below any level-k filler (or creation)."""
    params = ControllerParams(m=10, w=5, u=256)
    psi = params.psi
    for k in range(1, 8):
        assert params.uk_distance(k - 1) < (1 << k) * psi


def test_domain_sizes():
    params = ControllerParams(m=10, w=5, u=64)
    psi = params.psi
    assert params.domain_size(0) == psi // 2
    assert params.domain_size(1) == psi
    assert params.domain_size(3) == 4 * psi


def test_domain_fits_between_uk_and_request():
    """Dom(P_k) needs 2^(k-1) psi nodes below u_k; u_k is at 3*2^(k-1) psi."""
    params = ControllerParams(m=10, w=5, u=256)
    for k in range(8):
        assert params.domain_size(k) < params.uk_distance(k)


def test_max_level_bound():
    assert ControllerParams(m=10, w=5, u=1).max_level == 1
    assert ControllerParams(m=10, w=5, u=64).max_level == 7
    assert ControllerParams(m=10, w=5, u=100).max_level == 8


def test_parameter_validation():
    with pytest.raises(ControllerError):
        ControllerParams(m=-1, w=1, u=1)
    with pytest.raises(ControllerError):
        ControllerParams(m=1, w=0, u=1)
    with pytest.raises(ControllerError):
        ControllerParams(m=1, w=1, u=0)


@given(m=st.integers(0, 10**6), w=st.integers(1, 10**6),
       u=st.integers(1, 10**5))
def test_properties_hold_for_arbitrary_parameters(m, w, u):
    params = ControllerParams(m=m, w=w, u=u)
    assert params.phi >= 1
    assert params.psi >= 8
    assert params.psi % 4 == 0
    # The key inequality of Lemma 3.2's proof:
    # phi / psi <= W / (4 U ceil(log U + 2)), i.e. the total permits
    # stuck in any one level's packages stay below W / (2 log U).
    log_term = math.ceil(math.log2(u) + 2) if u > 1 else 2
    assert params.phi * 4 * log_term * u <= params.psi * w
