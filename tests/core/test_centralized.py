"""Tests for the centralized (M,W)-Controller (Section 3)."""

import pytest

from repro.errors import ControllerError
from repro import (
    CentralizedController,
    DynamicTree,
    OutcomeStatus,
    Request,
    RequestKind,
)
from repro.workloads import build_path, build_random_tree
from tests.drivers import drive_handle


def make_controller(tree, m=100, w=20, u=1000, **kwargs):
    return CentralizedController(tree, m=m, w=w, u=u, **kwargs)


def plain(node):
    return Request(RequestKind.PLAIN, node)


# ----------------------------------------------------------------------
# Basics.
# ----------------------------------------------------------------------
def test_first_request_is_granted():
    tree = DynamicTree()
    controller = make_controller(tree)
    outcome = controller.handle(plain(tree.root))
    assert outcome.granted
    assert controller.granted == 1


def test_grant_performs_topological_change():
    tree = DynamicTree()
    controller = make_controller(tree)
    outcome = controller.handle(Request(RequestKind.ADD_LEAF, tree.root))
    assert outcome.granted
    assert outcome.new_node is not None
    assert outcome.new_node.parent is tree.root
    assert tree.size == 2


def test_all_four_topological_kinds():
    tree = DynamicTree()
    controller = make_controller(tree)
    leaf = controller.handle(Request(RequestKind.ADD_LEAF, tree.root)).new_node
    mid = controller.handle(
        Request(RequestKind.ADD_INTERNAL, tree.root, child=leaf)
    ).new_node
    assert leaf.parent is mid and mid.parent is tree.root
    assert controller.handle(
        Request(RequestKind.REMOVE_INTERNAL, mid)
    ).granted
    assert leaf.parent is tree.root
    assert controller.handle(Request(RequestKind.REMOVE_LEAF, leaf)).granted
    assert tree.size == 1
    tree.validate()


def test_static_pool_served_locally_after_first_fetch():
    """The first request at a node pays for a package; the next phi-1
    requests at the same node are free (static pool)."""
    tree = build_path(20)
    deep = max(tree.nodes(), key=tree.depth)
    controller = make_controller(tree, m=1000, w=500, u=40)
    assert controller.params.phi > 1
    controller.handle(plain(deep))
    moves_after_first = controller.counters.package_moves
    controller.handle(plain(deep))
    assert controller.counters.package_moves == moves_after_first


def test_filler_reused_by_nearby_request():
    """A second deep request finds the parked packages of the first."""
    tree = build_path(600)
    nodes = sorted(tree.nodes(), key=tree.depth)
    deep = nodes[-1]
    neighbor = nodes[-2]
    controller = make_controller(tree, m=5000, w=2500, u=1200)
    controller.handle(plain(deep))
    first_cost = controller.counters.package_moves
    assert first_cost >= tree.depth(deep)  # paid the full climb
    controller.handle(plain(neighbor))
    second_cost = controller.counters.package_moves - first_cost
    # The neighbour must be served from parked packages, far cheaper
    # than another full climb.
    assert 0 < second_cost < first_cost / 2


def test_safety_never_exceeds_m():
    tree = build_random_tree(20, seed=1)
    controller = make_controller(tree, m=15, w=5, u=200)
    result = drive_handle(tree, controller.handle, steps=100, seed=2)
    assert controller.granted <= 15
    assert result.rejected > 0


def test_liveness_at_first_reject():
    """Once anything is rejected, at least M - W grants happened
    (GrantOrReject's reject wave fires only when stuck permits < W)."""
    for seed in range(5):
        tree = build_random_tree(15, seed=seed)
        controller = make_controller(tree, m=40, w=12, u=300)
        drive_handle(tree, controller.handle, steps=300, seed=seed + 50,
                     stop_when=lambda: controller.rejecting)
        if controller.rejecting:
            assert controller.granted >= 40 - 12


def test_permits_are_conserved():
    tree = build_random_tree(30, seed=3)
    controller = make_controller(tree, m=500, w=100, u=600)
    drive_handle(tree, controller.handle, steps=400, seed=4)
    assert controller.granted + controller.unused_permits() == 500


def test_reject_wave_reaches_every_node():
    tree = build_random_tree(12, seed=5)
    controller = make_controller(tree, m=3, w=1, u=100)
    drive_handle(tree, controller.handle, steps=50, seed=6)
    assert controller.rejecting
    for node in tree.nodes():
        assert controller.stores.get(node).has_reject


def test_nodes_born_after_wave_inherit_reject():
    tree = DynamicTree()
    controller = make_controller(tree, m=2, w=1, u=100)
    while not controller.rejecting:
        controller.handle(plain(tree.root))
    child = tree.add_leaf(tree.root)  # environment-driven growth
    assert controller.stores.get(child).has_reject
    assert controller.handle(plain(child)).rejected


def test_stale_requests_cancelled():
    tree = DynamicTree()
    controller = make_controller(tree)
    leaf = controller.handle(Request(RequestKind.ADD_LEAF, tree.root)).new_node
    request = Request(RequestKind.REMOVE_LEAF, leaf)
    assert controller.handle(request).granted
    # Same request again: the node is gone.
    again = Request(RequestKind.REMOVE_LEAF, leaf)
    assert controller.handle(again).status is OutcomeStatus.CANCELLED


def test_remove_leaf_of_node_with_children_cancelled():
    tree = DynamicTree()
    controller = make_controller(tree)
    a = tree.add_leaf(tree.root)
    tree.add_leaf(a)
    outcome = controller.handle(Request(RequestKind.REMOVE_LEAF, a))
    assert outcome.status is OutcomeStatus.CANCELLED


def test_deletion_relocates_packages_to_parent():
    tree = build_path(40)
    nodes = sorted(tree.nodes(), key=tree.depth)
    deep = nodes[-1]
    controller = make_controller(tree, m=1000, w=500, u=80)
    controller.handle(plain(deep))  # leaves static permits at deep
    static_before = controller.stores.get(deep).static_permits
    assert static_before > 0
    parent = deep.parent
    controller.handle(Request(RequestKind.REMOVE_LEAF, deep))
    # The permit pool (minus the one consumed) moved to the parent.
    assert controller.stores.get(parent).static_permits == static_before - 1
    assert controller.counters.relocation_moves >= 1


def test_pending_mode_does_not_reject():
    tree = DynamicTree()
    controller = make_controller(tree, m=1, w=1, u=10,
                                 reject_on_exhaustion=False)
    assert controller.handle(plain(tree.root)).granted
    outcome = controller.handle(plain(tree.root))
    assert outcome.status is OutcomeStatus.PENDING
    assert controller.exhausted
    assert controller.rejected == 0
    assert not controller.rejecting


def test_detached_controller_refuses_requests():
    tree = DynamicTree()
    controller = make_controller(tree)
    controller.detach()
    with pytest.raises(ControllerError):
        controller.handle(plain(tree.root))


# ----------------------------------------------------------------------
# Interval mode (name-assignment support).
# ----------------------------------------------------------------------
def test_interval_mode_serials_unique_and_in_range():
    tree = build_random_tree(25, seed=7)
    controller = make_controller(tree, m=60, w=20, u=200,
                                 track_intervals=True, interval_base=100)
    serials = []
    result = drive_handle(tree, controller.handle, steps=55, seed=8,
                          keep_outcomes=True)
    for outcome in result.outcomes:
        if outcome.granted:
            assert outcome.serial is not None
            serials.append(outcome.serial)
    assert len(serials) == len(set(serials))
    assert all(101 <= s <= 160 for s in serials)


def test_interval_mode_off_returns_no_serials():
    tree = DynamicTree()
    controller = make_controller(tree)
    assert controller.handle(plain(tree.root)).serial is None


# ----------------------------------------------------------------------
# Deep-tree distribution geometry.
# ----------------------------------------------------------------------
def test_deep_request_parks_packages_at_uk_positions():
    tree = build_path(1000)
    controller = make_controller(tree, m=4000, w=2000, u=2000)
    deep = max(tree.nodes(), key=tree.depth)
    depth = tree.depth(deep)
    level = controller.params.creation_level(depth)
    assert level >= 2  # the interesting multi-level regime
    controller.handle(plain(deep))
    # One parked package of each level k < level, at distance uk(k).
    from repro.tree.paths import ancestor_at
    for k in range(level):
        host = ancestor_at(deep, controller.params.uk_distance(k))
        parked = controller.stores.get(host).mobile
        assert any(p.level == k for p in parked), f"level {k} missing"
        for package in parked:
            assert package.size == controller.params.mobile_size(package.level)


def test_move_cost_of_single_deep_request_is_linear_in_depth():
    tree = build_path(800)
    controller = make_controller(tree, m=4000, w=2000, u=1600)
    deep = max(tree.nodes(), key=tree.depth)
    controller.handle(plain(deep))
    depth = tree.depth(deep)
    # Proc moves the package along the path with geometrically shrinking
    # segments: total < 2 * depth.
    assert depth <= controller.counters.package_moves <= 2 * depth
