"""Kernel-level equivalence of the two executors (Lemma 4.5, executable).

PR 2's differential grid compared grant *counts* between the engines.
With both executors routed through the shared kernel this check gets
strictly stronger: for every catalogue scenario, a centralized run and
a serialized distributed run (fifo policy, each request completing
before the next arrives) of the identical stream must produce

* identical outcome tallies (granted/rejected/cancelled/pending), and
* **identical kernel transition traces** — the same takes, creations,
  parks, absorbs, grants and reject waves, in the same order, at the
  same nodes and distances.

Trace equality means the distributed engine performs exactly the
centralized data-structure operations, which is the reduction the
paper's correctness argument rests on.
"""

import pytest

from repro.core.centralized import CentralizedController
from repro.core.kernel import KernelTrace
from repro.distributed import DistributedController
from repro.metrics import tally_outcomes
from repro.sim import Scheduler, make_policy
from repro.workloads import CATALOGUE, get_scenario
from repro.workloads.scenarios import TreeMirror, request_spec


def _serialized_twin_run(spec, seed):
    """The identical stream through both executors, kernel-traced."""
    reference = spec.build_tree(seed=seed)
    stream_specs = [request_spec(r)
                    for r in spec.stream(reference, seed=seed)]

    trace_c = KernelTrace()
    tree_c = spec.build_tree(seed=seed)
    mirror_c = TreeMirror(tree_c)
    central = CentralizedController(tree_c, m=spec.m, w=spec.w, u=spec.u,
                                    kernel_trace=trace_c)
    outcomes_c = [central.handle(mirror_c.request(s)) for s in stream_specs]
    mirror_c.detach()

    trace_d = KernelTrace()
    tree_d = spec.build_tree(seed=seed)
    mirror_d = TreeMirror(tree_d)
    distributed = DistributedController(
        tree_d, m=spec.m, w=spec.w, u=spec.u,
        scheduler=Scheduler(policy=make_policy("fifo", seed=seed)),
        kernel_trace=trace_d)
    outcomes_d = [distributed.submit_and_run(mirror_d.request(s))
                  for s in stream_specs]
    mirror_d.detach()
    return (central, outcomes_c, trace_c), (distributed, outcomes_d, trace_d)


@pytest.mark.parametrize("scenario", sorted(CATALOGUE))
@pytest.mark.parametrize("seed", [0, 1])
def test_catalogue_scenarios_trace_identically(scenario, seed):
    spec = get_scenario(scenario).scaled(0.5)
    (central, outcomes_c, trace_c), (distributed, outcomes_d, trace_d) = \
        _serialized_twin_run(spec, seed)

    tally_c = tally_outcomes(outcomes_c)
    tally_d = tally_outcomes(outcomes_d)
    assert tally_c == tally_d
    assert tally_c["granted"] > 0
    assert central.granted == distributed.granted
    assert central.rejected == distributed.rejected

    assert len(trace_c) > 0
    if trace_c.events != trace_d.events:
        first = next(i for i, (a, b) in
                     enumerate(zip(trace_c.events, trace_d.events))
                     if a != b)
        raise AssertionError(
            f"kernel traces diverge at transition {first}: centralized "
            f"{trace_c.events[first]} vs distributed "
            f"{trace_d.events[first]} "
            f"(lengths {len(trace_c)} / {len(trace_d)})")


def test_deep_path_traces_proc_splits_identically():
    """Catalogue psi values dwarf the tree depths, so ``Proc`` rarely
    splits there; a deep path with a tight distance unit exercises the
    full split schedule — and the parks must trace identically too."""
    import random

    from repro.core.requests import Request, RequestKind
    from repro.workloads import build_path

    n, m, w, u = 400, 3000, 1500, 800
    runs = {}
    for label in ("central", "distributed"):
        tree = build_path(n)
        nodes = list(tree.nodes())
        rng = random.Random(11)
        trace = KernelTrace()
        if label == "central":
            controller = CentralizedController(tree, m=m, w=w, u=u,
                                               kernel_trace=trace)
            submit = controller.handle
        else:
            controller = DistributedController(
                tree, m=m, w=w, u=u,
                scheduler=Scheduler(policy=make_policy("fifo", seed=0)),
                kernel_trace=trace)
            submit = controller.submit_and_run
        outcomes = [
            submit(Request(RequestKind.PLAIN,
                           nodes[rng.randrange(len(nodes))]))
            for _ in range(150)
        ]
        runs[label] = (tally_outcomes(outcomes), trace)
    tally_c, trace_c = runs["central"]
    tally_d, trace_d = runs["distributed"]
    assert tally_c == tally_d
    ops = {event[0] for event in trace_c}
    assert {"take", "create", "park", "absorb", "grant"} <= ops
    assert trace_c.events == trace_d.events


def test_near_exhaustion_traces_the_reject_wave():
    """The rejecting scenario drives both executors through creation,
    exhaustion and the reject wave — all of it in the shared trace."""
    spec = get_scenario("near_exhaustion").scaled(0.5)
    (_central, outcomes_c, trace_c), (_distributed, _outcomes_d, trace_d) = \
        _serialized_twin_run(spec, 0)
    ops = {event[0] for event in trace_c}
    # (No "park": the shallow random tree creates level-0 packages, so
    # ``Proc`` has no splits to schedule here; deep_burst covers parks.)
    assert {"grant", "create", "absorb", "reject_wave"} <= ops
    assert trace_c.events == trace_d.events
    assert any(o.rejected for o in outcomes_c)
