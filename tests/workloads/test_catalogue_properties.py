"""Property grid: catalogue x schedule policy x seed x controller.

The satellite contract of the adversarial-engine PR: for every
catalogue scenario, every schedule policy and several seeds, the
invariant checker passes on all four core controllers and the
distributed engine, and distributed outcomes stay outcome-equivalent to
the centralized reference where the paper guarantees it (reject-free,
cancellation-free streams).

The heavy lifting is the bench grid runner itself — a bench invocation
doubles as a correctness gate, so the test exercises the exact code
path ``python -m repro.bench scenario --name all ...`` runs, on scaled
specs to stay fast.
"""

import dataclasses

import pytest

from repro.bench.runner import run_scenario_grid
from repro.core.centralized import CentralizedController
from repro.distributed import DistributedController
from repro.metrics import audit_controller
from repro.sim import Scheduler, make_policy
from repro.workloads import get_scenario
from repro.workloads.scenarios import TreeMirror, request_spec


ALL_POLICIES = "fifo,random,lifo,adversary"


def test_full_grid_all_engines_invariants_pass():
    """Every scenario x all four core controllers + distributed under
    every policy x two seeds: zero invariant violations."""
    document = run_scenario_grid(
        name="all",
        policy=ALL_POLICIES,
        seeds="0,1",
        engines="centralized,iterated,adaptive,terminating,distributed",
        scale=0.25,
    )
    summary = document["summary"]
    assert summary["passed"]
    assert summary["violations"] == 0
    # 5 scenarios x 2 seeds x (4 core + 4 policies of distributed).
    assert summary["cells"] == 5 * 2 * 8
    # Every cell resolved its full stream.
    for cell in document["cells"]:
        resolved = (cell["granted"] + cell["rejected"]
                    + cell["cancelled"] + cell["pending"])
        assert resolved > 0


def test_faulted_grid_invariants_pass():
    """The same grid under an aggressive fault plan (stalls + pauses +
    churn storms) still audits green — the faults are legal adversaries,
    not rule changes."""
    document = run_scenario_grid(
        name="all",
        policy="random,adversary",
        seeds="0,1",
        engines="iterated,distributed",
        faults="stall=0.08,pauses=1,storms=3,seed=13",
        scale=0.25,
    )
    assert document["summary"]["passed"]
    storm_ops = sum(cell.get("fault_stats", {}).get("storm_ops", 0)
                    for cell in document["cells"])
    assert storm_ops > 0


@pytest.mark.parametrize("policy_name", ["fifo", "random", "adversary"])
def test_distributed_matches_centralized_where_guaranteed(policy_name):
    """Cancellation-free, reject-free replay: the distributed engine
    grants exactly the requests the centralized reference grants (the
    serializability of Lemma 4.3 collapses to identity when no event
    can lose its meaning and the budget never runs out)."""
    spec = get_scenario("near_exhaustion").scaled(0.25)
    # Lift the budget so nothing rejects: stream is PLAIN/ADD_LEAF only.
    spec = dataclasses.replace(spec, m=8 * spec.steps)
    reference_tree = spec.build_tree(seed=3)
    stream = spec.stream(reference_tree, seed=3)
    specs = [request_spec(r) for r in stream]

    central = CentralizedController(reference_tree, m=spec.m, w=spec.w,
                                    u=spec.u)
    central_outcomes = [central.handle(r) for r in stream]
    assert all(o.granted for o in central_outcomes)
    assert audit_controller(central).passed

    twin = spec.build_tree(seed=3)
    mirror = TreeMirror(twin)
    requests = [mirror.request(s) for s in specs]
    mirror.detach()
    controller = DistributedController(
        twin, m=spec.m, w=spec.w, u=spec.u,
        scheduler=Scheduler(policy=make_policy(policy_name, seed=3)))
    outcomes = controller.submit_batch(requests, stagger=0.2)
    assert audit_controller(controller).passed
    # Outcome-equivalence: the same multiset (here: every position) of
    # permits is granted.
    assert [o.status for o in outcomes] == \
        [o.status for o in central_outcomes]
    assert controller.granted == central.granted


def test_every_policy_produces_a_legal_distinct_interleaving():
    """Sanity that the grid explores genuinely different executions:
    across policies the simulated quiescence times differ while the
    tallies stay within the paper's envelope."""
    spec = get_scenario("mixed_flood").scaled(0.25)
    tree0 = spec.build_tree(seed=0)
    specs = [request_spec(r) for r in spec.stream(tree0, seed=0)]
    times = {}
    for policy_name in ("fifo", "lifo", "adversary"):
        twin = spec.build_tree(seed=0)
        mirror = TreeMirror(twin)
        requests = [mirror.request(s) for s in specs]
        mirror.detach()
        controller = DistributedController(
            twin, m=spec.m, w=spec.w, u=spec.u,
            scheduler=Scheduler(policy=make_policy(policy_name, seed=0)))
        controller.submit_batch(requests, stagger=0.25)
        assert audit_controller(controller).passed
        times[policy_name] = controller.scheduler.now
    assert len(set(times.values())) > 1, times
