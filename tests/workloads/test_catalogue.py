"""The scenario catalogue: registration, stream shapes, determinism."""

import pytest

from repro.core.iterated import IteratedController
from repro.core.requests import RequestKind
from repro.metrics import audit_controller
from repro.errors import ConfigError
from repro.workloads import CATALOGUE, get_scenario, scenario_names
from repro.workloads.catalogue import _subtree_nodes
from repro.workloads.scenarios import request_spec


EXPECTED = {"hot_spot", "deep_burst", "grow_shrink", "near_exhaustion",
            "mixed_flood"}


def test_catalogue_registration():
    assert set(scenario_names()) == EXPECTED
    for name in EXPECTED:
        spec = get_scenario(name)
        assert spec.name == name
        assert spec.m > 0 and spec.w >= 1 and spec.u >= spec.n
    with pytest.raises(ConfigError):
        get_scenario("calm_tuesday")


def test_streams_are_pregenerated_and_leave_the_tree_alone():
    for spec in CATALOGUE.values():
        tree = spec.build_tree(seed=1)
        stream = spec.stream(tree, seed=1)
        assert len(stream) == spec.steps
        assert tree.size == spec.n
        assert tree.topology_changes == 0
        alive = set(tree.nodes())
        for request in stream:
            assert request.node in alive
            if request.child is not None:
                assert request.child in alive


def test_streams_are_seed_deterministic():
    spec = get_scenario("mixed_flood")
    tree_a = spec.build_tree(seed=4)
    tree_b = spec.build_tree(seed=4)
    specs_a = [request_spec(r) for r in spec.stream(tree_a, seed=4)]
    specs_b = [request_spec(r) for r in spec.stream(tree_b, seed=4)]
    assert specs_a == specs_b
    specs_c = [request_spec(r) for r in spec.stream(tree_a, seed=5)]
    assert specs_a != specs_c


def test_hot_spot_is_actually_skewed():
    spec = get_scenario("hot_spot")
    tree = spec.build_tree(seed=0)
    stream = spec.stream(tree, seed=0)
    hot_root = max((n for n in tree.nodes() if not n.is_root),
                   key=lambda n: (len(_subtree_nodes(n)), -n.node_id))
    hot = set(_subtree_nodes(hot_root))
    inside = sum(1 for r in stream if r.node in hot)
    assert inside >= 0.7 * len(stream)
    assert inside < len(stream)  # the 15% background traffic exists


def test_deep_burst_targets_the_deep_quarter():
    spec = get_scenario("deep_burst")
    tree = spec.build_tree(seed=0)
    stream = spec.stream(tree, seed=0)
    depths = sorted(tree.depth(n) for n in tree.nodes())
    threshold = depths[-max(len(depths) // 4, 1)]
    deep_hits = sum(1 for r in stream if tree.depth(r.node) >= threshold)
    # Bursts are 25 of every 40 steps, all aimed at the deep quarter.
    assert deep_hits >= 0.5 * len(stream)


def test_grow_shrink_waves():
    spec = get_scenario("grow_shrink")
    tree = spec.build_tree(seed=0)
    stream = spec.stream(tree, seed=0)
    half = spec.steps // 2
    adds = (RequestKind.ADD_LEAF, RequestKind.ADD_INTERNAL)
    removes = (RequestKind.REMOVE_LEAF, RequestKind.REMOVE_INTERNAL)
    first, second = stream[:half], stream[half:]
    assert sum(r.kind in adds for r in first) > 0.5 * half
    assert sum(r.kind in removes for r in first) == 0
    assert sum(r.kind in adds for r in second) == 0
    assert sum(r.kind in removes for r in second) > 0.4 * len(second)


def test_near_exhaustion_drives_through_the_budget():
    spec = get_scenario("near_exhaustion")
    assert spec.steps > spec.m  # the stream must outrun the budget
    tree = spec.build_tree(seed=0)
    controller = IteratedController(tree, m=spec.m, w=spec.w, u=spec.u)
    outcomes = [controller.handle(r) for r in spec.stream(tree, seed=0)]
    assert any(o.rejected for o in outcomes)
    assert controller.granted <= spec.m
    assert controller.granted >= spec.m - spec.w
    assert audit_controller(controller).passed


def test_scaled_specs_shrink_consistently():
    spec = get_scenario("mixed_flood")
    small = spec.scaled(0.25)
    assert small.n < spec.n and small.steps < spec.steps
    assert small.m < spec.m and small.w >= 1
    tree = small.build_tree(seed=0)
    assert len(small.stream(tree, seed=0)) == small.steps
    tiny = spec.scaled(0.0001)  # floors keep everything runnable
    assert tiny.n >= 8 and tiny.steps >= 16 and tiny.w >= 1
