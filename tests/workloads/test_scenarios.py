"""Tests for workload builders and the scenario driver."""

import random

import pytest

from repro import RequestKind
from repro.workloads import (
    NodePicker,
    build_caterpillar,
    build_path,
    build_random_tree,
    build_star,
    grow_only_mix,
    random_request,
)
from repro.service import ControllerSession, SessionConfig, drive_scenario


def test_builders_produce_requested_sizes():
    for builder in (build_path, build_star,
                    lambda n: build_caterpillar(n),
                    lambda n: build_random_tree(n, seed=1)):
        tree = builder(37)
        assert tree.size == 37
        tree.validate()
        assert tree.topology_changes == 0  # construction not counted


def test_path_shape():
    tree = build_path(10)
    depths = sorted(tree.depth(n) for n in tree.nodes())
    assert depths == list(range(10))


def test_star_shape():
    tree = build_star(10)
    assert tree.root.child_degree == 9
    assert all(n.is_leaf for n in tree.nodes() if not n.is_root)


def test_random_tree_deterministic_per_seed():
    t1 = build_random_tree(30, seed=5)
    t2 = build_random_tree(30, seed=5)
    assert ([n.parent.node_id for n in t1.nodes() if n.parent]
            == [n.parent.node_id for n in t2.nodes() if n.parent])


def test_node_picker_tracks_mutations():
    tree = build_random_tree(10, seed=1)
    picker = NodePicker(tree)
    rng = random.Random(2)
    added = tree.add_leaf(tree.root)
    assert any(picker.pick(rng) is added for _ in range(200))
    tree.remove_leaf(added)
    assert all(picker.pick(rng) is not added for _ in range(200))
    picker.detach()


def test_random_requests_are_always_feasible():
    tree = build_random_tree(20, seed=3)
    rng = random.Random(4)
    for _ in range(300):
        request = random_request(tree, rng)
        node = request.node
        assert node in tree
        if request.kind is RequestKind.REMOVE_LEAF:
            assert not node.children and not node.is_root
        elif request.kind is RequestKind.REMOVE_INTERNAL:
            assert node.children and not node.is_root
        elif request.kind is RequestKind.ADD_INTERNAL:
            assert request.child.parent is node


def test_grow_only_mix_never_removes():
    tree = build_random_tree(10, seed=5)
    rng = random.Random(6)
    kinds = {random_request(tree, rng, mix=grow_only_mix()).kind
             for _ in range(200)}
    assert kinds <= {RequestKind.ADD_LEAF, RequestKind.PLAIN}


def test_drive_scenario_records_outcomes():
    tree = build_random_tree(10, seed=7)
    session = ControllerSession(SessionConfig.of("trivial", m=50),
                                tree=tree)
    result = drive_scenario(session, steps=80, seed=8,
                            keep_outcomes=True)
    assert result.granted == 50
    assert result.rejected + result.cancelled == 30
    assert len(result.outcomes) == 80
    session.close()


def test_drive_scenario_stop_when():
    tree = build_random_tree(10, seed=9)
    session = ControllerSession(SessionConfig.of("trivial", m=5),
                                tree=tree)
    result = drive_scenario(
        session, steps=500, seed=10,
        stop_when=lambda: session.controller.rejected > 0)
    assert result.granted == 5
    assert result.rejected == 1  # stopped right after the first reject
    session.close()


def test_drive_scenario_detaches_picker():
    tree = build_random_tree(10, seed=11)
    session = ControllerSession(SessionConfig.of("trivial", m=10),
                                tree=tree)
    before = len(tree._listeners)
    drive_scenario(session, steps=20, seed=12)
    assert len(tree._listeners) == before
    session.close()


# ----------------------------------------------------------------------
# Batched driver (submit_many waves through the session layer).
# ----------------------------------------------------------------------
def test_drive_scenario_batched_settles_everything():
    tree = build_random_tree(120, seed=21)
    session = ControllerSession(
        SessionConfig.of("iterated", m=600, w=60, u=600,
                         max_in_flight=16), tree=tree)
    result = drive_scenario(session, steps=100, seed=22, batch_size=16)
    assert result.granted + result.rejected + result.cancelled \
        + result.pending == 100
    assert session.in_flight == 0 and session.undelivered == 0
    session.close()


def test_drive_scenario_batch_size_one_matches_sequential():
    """batch_size=1 must be bit-for-bit the hand-rolled
    generate-submit loop over a bare controller on a twin tree."""
    from repro.core.iterated import IteratedController
    from repro.workloads import NodePicker

    tree_manual = build_random_tree(100, seed=23)
    ctrl_manual = IteratedController(tree_manual, m=500, w=50, u=500)
    rng = random.Random(24)
    picker = NodePicker(tree_manual)
    manual = [0, 0]
    for _ in range(150):
        request = random_request(tree_manual, rng, picker=picker)
        outcome = ctrl_manual.handle(request)
        manual[0] += outcome.granted
        manual[1] += outcome.rejected
    picker.detach()

    tree_driver = build_random_tree(100, seed=23)
    session = ControllerSession(
        SessionConfig.of("iterated", m=500, w=50, u=500),
        tree=tree_driver)
    result = drive_scenario(session, steps=150, seed=24, batch_size=1)
    assert (result.granted, result.rejected) == tuple(manual)
    assert session.controller.counters.total == ctrl_manual.counters.total
    assert tree_driver.size == tree_manual.size
    session.close()


def test_drive_scenario_rejects_bad_batch_size():
    tree = build_random_tree(20, seed=25)
    session = ControllerSession(
        SessionConfig.of("iterated", m=100, w=10, u=100), tree=tree)
    with pytest.raises(ValueError):
        drive_scenario(session, steps=10, batch_size=0)
    session.close()
