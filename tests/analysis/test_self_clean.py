"""The suite applied to itself: the shipped tree is clean, and the
rule tables cannot rot against the registries they mirror."""

from pathlib import Path

import repro
from repro.analysis import run_analysis
from repro.analysis.rules.api import (
    APP_CLASSES,
    CONTROLLER_CLASSES,
    CONTROLLER_UNITS,
)
from repro.analysis.rules.layering import LAYER_DEPS
from repro.apps import APP_REGISTRY
from repro.registry import CONTROLLER_REGISTRY

SRC_PKG = Path(repro.__file__).resolve().parent
REPO_ROOT = SRC_PKG.parent.parent


def test_shipped_tree_is_clean_with_empty_baseline():
    report = run_analysis(SRC_PKG, baseline_path=None)
    assert report.open_findings == [], report.render_text()
    assert report.baselined == []
    assert report.modules_checked > 50


def test_shipped_baseline_file_is_empty():
    baseline = REPO_ROOT / "LINT_BASELINE.json"
    if baseline.exists():
        from repro.analysis import load_baseline
        assert load_baseline(baseline) == []


def test_controller_classes_mirror_the_registry():
    assert CONTROLLER_CLASSES == {
        cls.__name__ for cls in CONTROLLER_REGISTRY.values()}


def test_app_classes_mirror_the_registry():
    assert APP_CLASSES == {cls.__name__ for cls in APP_REGISTRY.values()}


def test_controller_units_cover_the_defining_modules():
    # Every registered controller class is defined in a unit the rule
    # allows to construct directly.
    for cls in CONTROLLER_REGISTRY.values():
        unit = cls.__module__.split(".")[1]
        assert unit in CONTROLLER_UNITS, cls.__name__


def test_every_shipped_unit_is_declared_in_the_layer_dag():
    units = set()
    for child in SRC_PKG.iterdir():
        if child.is_dir() and (child / "__init__.py").exists():
            units.add(child.name)
        elif child.suffix == ".py" and child.stem != "__init__":
            units.add(child.stem)
    undeclared = units - set(LAYER_DEPS)
    assert undeclared == set(), (
        f"units missing from LAYER_DEPS: {sorted(undeclared)}")


def test_layer_dag_declares_only_real_units():
    units = set()
    for child in SRC_PKG.iterdir():
        if child.is_dir() and (child / "__init__.py").exists():
            units.add(child.name)
        elif child.suffix == ".py" and child.stem != "__init__":
            units.add(child.stem)
    phantom = set(LAYER_DEPS) - units - {"repro"}
    assert phantom == set(), (
        f"LAYER_DEPS declares units that do not exist: {sorted(phantom)}")
