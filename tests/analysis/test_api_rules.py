"""The api family: registry construction, frozen configs, errors."""

from tests.analysis.conftest import mod, run_rule


# ----------------------------------------------------------------------
# api/registry-construction
# ----------------------------------------------------------------------
def test_direct_controller_construction_outside_core_fires():
    bad = mod("repro.workloads.scenarios", (
        "from repro.core.centralized import CentralizedController\n"
        "c = CentralizedController(tree, params)\n"))
    findings = run_rule("api/registry-construction", bad)
    assert len(findings) == 1
    assert "make_controller" in findings[0].message


def test_controller_construction_inside_defining_units_passes():
    for unit_module in ("repro.core.centralized", "repro.registry",
                        "repro.distributed.controller",
                        "repro.baselines.aaps"):
        good = mod(unit_module, "c = CentralizedController(tree, params)\n")
        assert run_rule("api/registry-construction", good) == []


def test_attribute_qualified_construction_fires():
    bad = mod("repro.sim.harness",
              "c = core.DistributedController(tree, params)\n")
    assert len(run_rule("api/registry-construction", bad)) == 1


def test_direct_app_construction_outside_apps_fires():
    bad = mod("repro.workloads.scenarios",
              "app = HeavyChildApp(tree)\n")
    findings = run_rule("api/registry-construction", bad)
    assert len(findings) == 1
    assert "make_app" in findings[0].message


def test_app_construction_inside_apps_passes():
    good = mod("repro.apps.heavy_child", "app = HeavyChildApp(tree)\n")
    assert run_rule("api/registry-construction", good) == []


def test_make_controller_call_passes_anywhere():
    good = mod("repro.workloads.scenarios", (
        "from repro.registry import make_controller\n"
        "c = make_controller('centralized', tree, params)\n"))
    assert run_rule("api/registry-construction", good) == []


# ----------------------------------------------------------------------
# api/frozen-setattr
# ----------------------------------------------------------------------
def test_setattr_in_post_init_passes():
    good = mod("repro.core.params", (
        "class Params:\n"
        "    def __post_init__(self):\n"
        "        object.__setattr__(self, 'u', 4)\n"))
    assert run_rule("api/frozen-setattr", good) == []


def test_setattr_in_ordinary_method_fires():
    bad = mod("repro.core.params", (
        "class Params:\n"
        "    def retune(self):\n"
        "        object.__setattr__(self, 'u', 8)\n"))
    findings = run_rule("api/frozen-setattr", bad)
    assert len(findings) == 1
    assert "retune" in findings[0].message


def test_setattr_at_module_scope_fires():
    bad = mod("repro.core.params",
              "object.__setattr__(params, 'u', 8)\n")
    findings = run_rule("api/frozen-setattr", bad)
    assert len(findings) == 1
    assert "module scope" in findings[0].message


# ----------------------------------------------------------------------
# api/error-taxonomy
# ----------------------------------------------------------------------
def test_raise_value_error_fires():
    bad = mod("repro.core.params",
              "def f(u):\n"
              "    raise ValueError('bad u')\n")
    findings = run_rule("api/error-taxonomy", bad)
    assert len(findings) == 1
    assert "ConfigError" in findings[0].message


def test_raise_bare_name_fires():
    bad = mod("repro.core.params",
              "def f(u):\n"
              "    raise RuntimeError\n")
    assert len(run_rule("api/error-taxonomy", bad)) == 1


def test_taxonomy_raises_pass():
    good = mod("repro.core.params", (
        "from repro.errors import ConfigError\n"
        "def f(u):\n"
        "    if u < 2:\n"
        "        raise ConfigError('bad u')\n"
        "    raise NotImplementedError('abstract')\n"))
    assert run_rule("api/error-taxonomy", good) == []


def test_bare_reraise_passes():
    good = mod("repro.core.params", (
        "def f(u):\n"
        "    try:\n"
        "        g(u)\n"
        "    except Exception:\n"
        "        raise\n"))
    assert run_rule("api/error-taxonomy", good) == []
