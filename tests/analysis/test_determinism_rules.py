"""The determinism family: wall clocks, global RNG, set iteration."""

from tests.analysis.conftest import mod, run_rule


# ----------------------------------------------------------------------
# determinism/wall-clock
# ----------------------------------------------------------------------
def test_time_time_fires():
    bad = mod("repro.core.kernel", "import time\nstamp = time.time()\n")
    findings = run_rule("determinism/wall-clock", bad)
    assert len(findings) == 1
    assert "time.time" in findings[0].message


def test_perf_counter_and_sleep_fire():
    bad = mod("repro.sim.scheduler", (
        "import time\n"
        "a = time.perf_counter()\n"
        "time.sleep(1)\n"))
    assert len(run_rule("determinism/wall-clock", bad)) == 2


def test_from_time_import_fires():
    bad = mod("repro.core.kernel", "from time import monotonic\n")
    assert len(run_rule("determinism/wall-clock", bad)) == 1


def test_datetime_now_fires():
    bad = mod("repro.metrics.fitting",
              "from datetime import datetime\nnow = datetime.now()\n")
    findings = run_rule("determinism/wall-clock", bad)
    # both the import and the .now() read are flagged
    assert len(findings) == 2


def test_bench_and_clock_are_allowlisted():
    for name in ("repro.bench.runner", "repro.clock"):
        good = mod(name, "import time\nstamp = time.perf_counter()\n")
        assert run_rule("determinism/wall-clock", good) == []


def test_clock_shim_consumer_passes():
    good = mod("repro.gateway.gateway", "from repro.clock import monotonic\n")
    assert run_rule("determinism/wall-clock", good) == []


# ----------------------------------------------------------------------
# determinism/unseeded-random
# ----------------------------------------------------------------------
def test_module_level_random_fires():
    bad = mod("repro.workloads.scenarios",
              "import random\nx = random.random()\n")
    findings = run_rule("determinism/unseeded-random", bad)
    assert len(findings) == 1
    assert "process-global" in findings[0].message


def test_seeded_instance_passes():
    good = mod("repro.workloads.scenarios", (
        "import random\n"
        "rng = random.Random(7)\n"
        "x = rng.random()\n"))
    assert run_rule("determinism/unseeded-random", good) == []


def test_from_random_import_fires():
    bad = mod("repro.sim.delays", "from random import randrange\n")
    assert len(run_rule("determinism/unseeded-random", bad)) == 1


def test_from_random_import_random_class_passes():
    good = mod("repro.sim.delays", "from random import Random\n")
    assert run_rule("determinism/unseeded-random", good) == []


# ----------------------------------------------------------------------
# determinism/set-iteration
# ----------------------------------------------------------------------
def test_for_over_set_literal_fires_in_scheduling_unit():
    bad = mod("repro.sim.policies", (
        "for x in {3, 1, 2}:\n"
        "    print(x)\n"))
    findings = run_rule("determinism/set-iteration", bad)
    assert len(findings) == 1
    assert "sorted()" in findings[0].message


def test_comprehension_over_set_call_fires():
    bad = mod("repro.distributed.controller",
              "order = [x for x in set(items)]\n")
    assert len(run_rule("determinism/set-iteration", bad)) == 1


def test_sorted_set_passes():
    good = mod("repro.sim.policies", (
        "for x in sorted({3, 1, 2}):\n"
        "    print(x)\n"))
    assert run_rule("determinism/set-iteration", good) == []


def test_non_scheduling_unit_is_out_of_scope():
    meh = mod("repro.tree.paths", (
        "for x in {3, 1, 2}:\n"
        "    print(x)\n"))
    assert run_rule("determinism/set-iteration", meh) == []
