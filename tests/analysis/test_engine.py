"""The engine: classification, suppressions, baseline, parse errors."""

import pytest

from repro.analysis import (
    META_RULES,
    PARSE_ERROR,
    STALE_BASELINE,
    UNUSED_SUPPRESSION,
    analyze_modules,
    load_baseline,
    load_tree,
    make_rules,
    save_baseline,
)
from repro.errors import ConfigError
from tests.analysis.conftest import mod

WALL = "determinism/wall-clock"
BAD_LINE = "import time\nstamp = time.time()\n"


def run(modules, **kwargs):
    return analyze_modules(modules, rules=make_rules([WALL]), **kwargs)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_allow_comment_suppresses_the_finding():
    src = f"import time\nstamp = time.time()  # lint: allow[{WALL}]\n"
    report = run([mod("repro.core.kernel", src)])
    assert report.clean
    assert len(report.suppressed) == 1
    assert report.suppressed[0].rule == WALL


def test_allow_for_a_different_rule_does_not_suppress():
    src = ("import time\n"
           "stamp = time.time()  # lint: allow[layering/cycle]\n")
    report = run([mod("repro.core.kernel", src)])
    open_rules = {f.rule for f in report.open_findings}
    # The violation stays open AND the allow is flagged as unused.
    assert WALL in open_rules
    assert UNUSED_SUPPRESSION in open_rules


def test_unused_allow_fires_audit_finding():
    src = "x = 1  # lint: allow[determinism/wall-clock]\n"
    report = run([mod("repro.core.kernel", src)])
    assert len(report.open_findings) == 1
    finding = report.open_findings[0]
    assert finding.rule == UNUSED_SUPPRESSION
    assert "suppresses nothing" in finding.message


def test_allow_with_unknown_rule_id_fires_audit_finding():
    src = "x = 1  # lint: allow[nosuch/rule]\n"
    report = run([mod("repro.core.kernel", src)])
    assert len(report.open_findings) == 1
    assert report.open_findings[0].rule == UNUSED_SUPPRESSION
    assert "unknown rule id" in report.open_findings[0].message


def test_allow_inside_string_literal_is_not_a_suppression():
    src = ('text = "lint: allow[determinism/wall-clock]"\n'
           "import time\nstamp = time.time()\n")
    report = run([mod("repro.core.kernel", src)])
    assert not report.clean
    assert report.suppressed == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baselined_finding_is_not_open():
    bad = mod("repro.core.kernel", BAD_LINE)
    first = run([bad])
    assert len(first.open_findings) == 1
    baseline = [f.key() for f in first.open_findings]
    second = run([bad], baseline=baseline)
    assert second.clean
    assert len(second.baselined) == 1


def test_stale_baseline_entry_fires_audit_finding():
    good = mod("repro.core.kernel", "x = 1\n")
    stale = [(WALL, good.path, "wall-clock access time.time; gone now")]
    report = run([good], baseline=stale)
    assert len(report.open_findings) == 1
    finding = report.open_findings[0]
    assert finding.rule == STALE_BASELINE
    assert "no longer matches" in finding.message


def test_baseline_budget_is_per_occurrence():
    two = mod("repro.core.kernel",
              "import time\na = time.time()\nb = time.time()\n")
    first = run([two])
    assert len(first.open_findings) == 2
    # Both findings share one key; baseline one occurrence only.
    report = run([two], baseline=[first.open_findings[0].key()])
    assert len(report.baselined) == 1
    assert len(report.open_findings) == 1


def test_save_and_load_baseline_round_trip(tmp_path):
    bad = mod("repro.core.kernel", BAD_LINE)
    findings = run([bad]).open_findings
    path = tmp_path / "baseline.json"
    save_baseline(path, findings)
    assert load_baseline(path) == sorted({f.key() for f in findings})
    # And the written file actually neutralises the finding.
    report = run([bad], baseline=load_baseline(path))
    assert report.clean


def test_load_baseline_rejects_malformed_files(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("[1, 2, 3]\n", encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(path)
    path.write_text("not json", encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(path)


# ----------------------------------------------------------------------
# Parse errors and report shape
# ----------------------------------------------------------------------
def test_parse_error_becomes_open_finding(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "broken.py").write_text("def oops(:\n", encoding="utf-8")
    modules, errors = load_tree(tmp_path)
    assert [path for path, _ in errors] == ["repro/broken.py"]
    report = analyze_modules(modules, rules=make_rules([WALL]),
                             parse_errors=errors)
    assert [f.rule for f in report.open_findings] == [PARSE_ERROR]


def test_meta_rules_are_not_suppressible():
    # An allow naming the meta rule on the flagged line must not
    # silence the audit of an unused suppression.
    src = "x = 1  # lint: allow[determinism/wall-clock]\n"
    report = run([mod("repro.core.kernel", src)])
    assert report.open_findings[0].rule in META_RULES


def test_report_counts_and_json_shape():
    src = (f"import time\n"
           f"a = time.time()\n"
           f"b = time.time()  # lint: allow[{WALL}]\n")
    report = run([mod("repro.core.kernel", src)])
    counts = report.counts()
    assert counts == {"open": 1, "suppressed": 1, "baselined": 0,
                      "total": 2}
    payload = report.to_json()
    assert payload["clean"] is False
    assert payload["counts"] == counts
    statuses = [row["status"] for row in payload["findings"]]
    assert statuses == ["open", "suppressed"]
    assert WALL in payload["rules"]
    text = report.render_text()
    assert "1 open, 1 suppressed, 0 baselined" in text
