"""The layering family: declared DAG, cycles, import-light modules."""

from tests.analysis.conftest import mod, run_rule


# ----------------------------------------------------------------------
# layering/declared-dag
# ----------------------------------------------------------------------
def test_declared_edge_passes():
    good = mod("repro.core.centralized", "from repro.tree.node import TreeNode\n")
    assert run_rule("layering/declared-dag", good) == []


def test_errors_is_layer_zero_everywhere():
    good = mod("repro.sim.delays", "from repro.errors import SimulationError\n")
    assert run_rule("layering/declared-dag", good) == []


def test_undeclared_edge_fires():
    bad = mod("repro.sim.scheduler", "import repro.core.kernel\n")
    findings = run_rule("layering/declared-dag", bad)
    assert len(findings) == 1
    assert "'sim' -> 'core'" in findings[0].message


def test_deferred_import_counts():
    bad = mod("repro.tree.node", (
        "def late():\n"
        "    from repro.distributed.agent import Agent\n"
        "    return Agent\n"))
    assert len(run_rule("layering/declared-dag", bad)) == 1


def test_undeclared_unit_fires():
    bad = mod("repro.newthing.impl", "from repro.core import kernel\n")
    findings = run_rule("layering/declared-dag", bad)
    assert len(findings) == 1
    assert "not declared in the layer DAG" in findings[0].message


def test_root_package_import_fires():
    bad = mod("repro.metrics.counters", "from repro import DynamicTree\n")
    findings = run_rule("layering/declared-dag", bad)
    assert len(findings) == 1
    assert "root repro package" in findings[0].message


# ----------------------------------------------------------------------
# layering/cycle
# ----------------------------------------------------------------------
def test_observed_cycle_fires():
    a = mod("repro.sim.alpha", "import repro.sim.beta\n")
    b = mod("repro.sim.beta", "import repro.sim.alpha\n")
    findings = run_rule("layering/cycle", [a, b])
    assert len(findings) == 1
    assert "import cycle" in findings[0].message


def test_acyclic_modules_pass():
    a = mod("repro.sim.alpha", "import repro.sim.beta\n")
    b = mod("repro.sim.beta", "")
    assert run_rule("layering/cycle", [a, b]) == []


def test_from_package_import_submodule_is_not_a_package_edge():
    # ``from repro.sim import beta`` inside a module the package
    # __init__ itself imports must resolve to the submodule, not the
    # package — otherwise every such sibling import is a false cycle.
    init = mod("repro.sim", "from repro.sim.alpha import thing\n")
    alpha = mod("repro.sim.alpha", "from repro.sim import beta\nthing = 1\n")
    beta = mod("repro.sim.beta", "")
    assert run_rule("layering/cycle", [init, alpha, beta]) == []


def test_type_checking_imports_are_not_runtime_edges():
    a = mod("repro.sim.alpha", (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.sim.beta import Thing\n"))
    b = mod("repro.sim.beta", "from repro.sim.alpha import helper\n")
    assert run_rule("layering/cycle", [a, b]) == []


# ----------------------------------------------------------------------
# layering/protocol-import-light
# ----------------------------------------------------------------------
def test_protocol_allowlist_passes():
    good = mod("repro.protocol",
               "from dataclasses import dataclass\nfrom typing import Any\n")
    assert run_rule("layering/protocol-import-light", good) == []


def test_protocol_heavy_import_fires():
    bad = mod("repro.protocol", "import collections\n")
    findings = run_rule("layering/protocol-import-light", bad)
    assert len(findings) == 1
    assert "import-light" in findings[0].message


def test_errors_module_allows_nothing():
    bad = mod("repro.errors", "import typing\n")
    assert len(run_rule("layering/protocol-import-light", bad)) == 1


def test_other_units_unconstrained():
    good = mod("repro.sim.delays", "import collections\n")
    assert run_rule("layering/protocol-import-light", good) == []
