"""The concurrency family: event-loop blocking and loop closures."""

from tests.analysis.conftest import mod, run_rule


# ----------------------------------------------------------------------
# concurrency/async-blocking
# ----------------------------------------------------------------------
def test_time_sleep_in_async_def_fires():
    bad = mod("repro.gateway.aio", (
        "import time\n"
        "async def submit():\n"
        "    time.sleep(0.1)\n"))
    findings = run_rule("concurrency/async-blocking", bad)
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message


def test_timeout_less_result_in_async_def_fires():
    bad = mod("repro.gateway.aio", (
        "async def submit(fut):\n"
        "    return fut.result()\n"))
    findings = run_rule("concurrency/async-blocking", bad)
    assert len(findings) == 1
    assert ".result()" in findings[0].message


def test_result_with_timeout_passes():
    good = mod("repro.gateway.aio", (
        "async def submit(fut):\n"
        "    return fut.result(timeout=1.0)\n"))
    assert run_rule("concurrency/async-blocking", good) == []


def test_sync_def_is_out_of_scope():
    good = mod("repro.gateway.gateway", (
        "import time\n"
        "def drain(fut):\n"
        "    time.sleep(0.1)\n"
        "    return fut.result()\n"))
    assert run_rule("concurrency/async-blocking", good) == []


def test_asyncio_sleep_passes():
    good = mod("repro.gateway.aio", (
        "import asyncio\n"
        "async def submit():\n"
        "    await asyncio.sleep(0.1)\n"))
    assert run_rule("concurrency/async-blocking", good) == []


# ----------------------------------------------------------------------
# concurrency/loop-closure
# ----------------------------------------------------------------------
def test_lambda_in_loop_capturing_loop_var_fires():
    bad = mod("repro.distributed.controller", (
        "def schedule(nodes, defer):\n"
        "    for node in nodes:\n"
        "        defer(lambda: node.fire())\n"))
    findings = run_rule("concurrency/loop-closure", bad)
    assert len(findings) == 1
    assert "node=node" in findings[0].message


def test_nested_def_in_loop_capturing_loop_var_fires():
    bad = mod("repro.sim.scheduler", (
        "def schedule(events, defer):\n"
        "    for ev in events:\n"
        "        def cb():\n"
        "            return ev.fire()\n"
        "        defer(cb)\n"))
    assert len(run_rule("concurrency/loop-closure", bad)) == 1


def test_default_bound_lambda_passes():
    good = mod("repro.distributed.controller", (
        "def schedule(nodes, defer):\n"
        "    for node in nodes:\n"
        "        defer(lambda node=node: node.fire())\n"))
    assert run_rule("concurrency/loop-closure", good) == []


def test_lambda_outside_loop_passes():
    good = mod("repro.distributed.controller", (
        "def schedule(node, defer):\n"
        "    defer(lambda: node.fire())\n"))
    assert run_rule("concurrency/loop-closure", good) == []


def test_tuple_target_loop_var_fires():
    bad = mod("repro.fleet.controller", (
        "def schedule(pairs, defer):\n"
        "    for key, shard in pairs:\n"
        "        defer(lambda: shard.step(key))\n"))
    findings = run_rule("concurrency/loop-closure", bad)
    assert len(findings) == 1
    assert "key, shard" in findings[0].message


def test_new_function_scope_resets_loop_tracking():
    # The loop variable belongs to schedule(); a closure inside a
    # *fresh* function defined in the loop body over its own local is
    # the factory idiom and must pass.
    good = mod("repro.distributed.controller", (
        "def schedule(nodes, defer):\n"
        "    for node in nodes:\n"
        "        defer(make_cb(node))\n"
        "def make_cb(node):\n"
        "    return lambda: node.fire()\n"))
    assert run_rule("concurrency/loop-closure", good) == []
