"""``python -m repro.lint``: exit codes, artifacts, baseline flow."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro

SRC_DIR = Path(repro.__file__).resolve().parent.parent

BAD_SOURCE = "import time\nstamp = time.time()\n"


def lint(*argv, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC_DIR), env.get("PYTHONPATH")) if p)
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=cwd, env=env, capture_output=True, text=True)


def make_tree(tmp_path, body):
    # The fixture tree lives one level down ("proj/repro") so the
    # subprocess cwd (tmp_path) holds no repro/ directory shadowing the
    # real package on sys.path.
    pkg = tmp_path / "proj" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "mod.py").write_text(body, encoding="utf-8")
    return pkg.parent


@pytest.fixture
def bad_tree(tmp_path):
    return make_tree(tmp_path, BAD_SOURCE)


@pytest.fixture
def clean_tree(tmp_path):
    return make_tree(tmp_path, "x = 1\n")


def test_open_finding_exits_one_and_writes_report(bad_tree, tmp_path):
    proc = lint(str(bad_tree), cwd=tmp_path)
    assert proc.returncode == 1
    assert "determinism/wall-clock" in proc.stdout
    report = json.loads(
        (tmp_path / "LINT_REPORT.json").read_text(encoding="utf-8"))
    assert report["clean"] is False
    assert report["counts"]["open"] >= 1


def test_clean_tree_exits_zero(clean_tree, tmp_path):
    proc = lint(str(clean_tree), cwd=tmp_path)
    assert proc.returncode == 0
    report = json.loads(
        (tmp_path / "LINT_REPORT.json").read_text(encoding="utf-8"))
    assert report["clean"] is True


def test_json_format_prints_the_report(bad_tree, tmp_path):
    proc = lint(str(bad_tree), "--format", "json", cwd=tmp_path)
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    rules = {row["rule"] for row in payload["findings"]}
    assert "determinism/wall-clock" in rules


def test_no_report_skips_the_artifact(bad_tree, tmp_path):
    proc = lint(str(bad_tree), "--no-report", cwd=tmp_path)
    assert proc.returncode == 1
    assert not (tmp_path / "LINT_REPORT.json").exists()


def test_rule_filter_runs_only_that_rule(bad_tree, tmp_path):
    proc = lint(str(bad_tree), "--rule", "layering/cycle", cwd=tmp_path)
    assert proc.returncode == 0


def test_list_rules(tmp_path):
    proc = lint("--list-rules", cwd=tmp_path)
    assert proc.returncode == 0
    listed = [line.split()[0] for line in proc.stdout.splitlines() if line]
    assert len(listed) == 13
    assert "determinism/wall-clock" in listed
    assert "layering/cycle" in listed


def test_write_baseline_then_rerun_is_clean(bad_tree, tmp_path):
    first = lint(str(bad_tree), "--write-baseline", cwd=tmp_path)
    assert first.returncode == 0
    baseline = tmp_path / "LINT_BASELINE.json"
    assert baseline.exists()
    entries = json.loads(baseline.read_text(encoding="utf-8"))["entries"]
    assert len(entries) == 1
    second = lint(str(bad_tree), cwd=tmp_path)
    assert second.returncode == 0
    report = json.loads(
        (tmp_path / "LINT_REPORT.json").read_text(encoding="utf-8"))
    assert report["counts"]["baselined"] == 1
    assert report["counts"]["open"] == 0


def test_fixed_violation_turns_baseline_stale(bad_tree, tmp_path):
    lint(str(bad_tree), "--write-baseline", cwd=tmp_path)
    (bad_tree / "repro" / "mod.py").write_text("x = 1\n", encoding="utf-8")
    proc = lint(str(bad_tree), cwd=tmp_path)
    assert proc.returncode == 1
    assert "lint/stale-baseline" in proc.stdout


def test_unlintable_path_exits_two(tmp_path):
    empty = tmp_path / "not_a_repro_tree"
    empty.mkdir()
    proc = lint(str(empty), cwd=tmp_path)
    assert proc.returncode == 2
    assert "repro.lint:" in proc.stderr


def test_unknown_rule_id_exits_two(clean_tree, tmp_path):
    proc = lint(str(clean_tree), "--rule", "nosuch/rule", cwd=tmp_path)
    assert proc.returncode == 2
    assert "unknown rule id" in proc.stderr
