"""The hotpath family: slots and allocation-free fast-path functions."""

from tests.analysis.conftest import mod, run_rule

FAST_MODULE = "repro.distributed.agent"


# ----------------------------------------------------------------------
# hotpath/slots
# ----------------------------------------------------------------------
def test_slotless_class_in_fast_path_module_fires():
    bad = mod(FAST_MODULE, (
        "class Agent:\n"
        "    def __init__(self):\n"
        "        self.x = 0\n"))
    findings = run_rule("hotpath/slots", bad)
    assert len(findings) == 1
    assert "__slots__" in findings[0].message


def test_slotted_class_passes():
    good = mod(FAST_MODULE, (
        "class Agent:\n"
        "    __slots__ = ('x',)\n"
        "    def __init__(self):\n"
        "        self.x = 0\n"))
    assert run_rule("hotpath/slots", good) == []


def test_enum_and_exception_classes_exempt():
    good = mod(FAST_MODULE, (
        "from enum import Enum\n"
        "class Phase(Enum):\n"
        "    IDLE = 0\n"
        "class AgentError(ValueError):\n"
        "    pass\n"))
    assert run_rule("hotpath/slots", good) == []


def test_non_fast_path_module_is_out_of_scope():
    meh = mod("repro.workloads.scenarios", (
        "class Mixer:\n"
        "    def __init__(self):\n"
        "        self.x = 0\n"))
    assert run_rule("hotpath/slots", meh) == []


# ----------------------------------------------------------------------
# hotpath/closure-alloc
# ----------------------------------------------------------------------
def test_lambda_in_fast_path_function_fires():
    bad = mod(FAST_MODULE, (
        "def step(agents):\n"
        "    return sorted(agents, key=lambda a: a.node_id)\n"))
    findings = run_rule("hotpath/closure-alloc", bad)
    assert len(findings) == 1
    assert "lambda" in findings[0].message


def test_nested_def_in_fast_path_function_fires():
    bad = mod(FAST_MODULE, (
        "def step(agents):\n"
        "    def key(a):\n"
        "        return a.node_id\n"
        "    return sorted(agents, key=key)\n"))
    findings = run_rule("hotpath/closure-alloc", bad)
    assert len(findings) == 1
    assert "nested def key" in findings[0].message


def test_functools_partial_in_fast_path_function_fires():
    bad = mod(FAST_MODULE, (
        "import functools\n"
        "def step(agent, defer):\n"
        "    defer(functools.partial(agent.fire, 3))\n"))
    assert len(run_rule("hotpath/closure-alloc", bad)) == 1


def test_module_level_helpers_pass():
    good = mod(FAST_MODULE, (
        "def _key(a):\n"
        "    return a.node_id\n"
        "def step(agents):\n"
        "    return sorted(agents, key=_key)\n"))
    assert run_rule("hotpath/closure-alloc", good) == []


def test_closures_fine_outside_fast_path():
    meh = mod("repro.workloads.scenarios", (
        "def step(agents):\n"
        "    return sorted(agents, key=lambda a: a.node_id)\n"))
    assert run_rule("hotpath/closure-alloc", meh) == []
