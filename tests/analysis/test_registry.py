"""The rule registry: validation, filtering, the shipped suite."""

import pytest

from repro.analysis import (
    FAMILIES,
    RULE_REGISTRY,
    Rule,
    make_rules,
    register,
    rule_ids,
)
from repro.errors import ConfigError


def test_register_rejects_id_without_family_prefix_syntax():
    with pytest.raises(ConfigError, match="family/name"):
        @register
        class NoSlash(Rule):
            rule_id = "noslash"
            family = "layering"
            description = "bad"


def test_register_rejects_unknown_family():
    with pytest.raises(ConfigError, match="unknown family"):
        @register
        class BadFamily(Rule):
            rule_id = "magic/foo"
            family = "magic"
            description = "bad"


def test_register_rejects_family_id_mismatch():
    with pytest.raises(ConfigError, match="must start with its family"):
        @register
        class Mismatch(Rule):
            rule_id = "layering/foo"
            family = "determinism"
            description = "bad"


def test_register_rejects_duplicate_id():
    with pytest.raises(ConfigError, match="registered twice"):
        @register
        class Duplicate(Rule):
            rule_id = "layering/cycle"
            family = "layering"
            description = "bad"


def test_failed_registration_leaves_registry_untouched():
    before = rule_ids()
    for bad in ("noslash", "magic/foo"):
        try:
            @register
            class Probe(Rule):
                rule_id = bad
                family = "magic"
                description = "bad"
        except ConfigError:
            pass
    assert rule_ids() == before


def test_make_rules_unknown_id_names_the_registry():
    with pytest.raises(ConfigError, match="registered:"):
        make_rules(["nosuch/rule"])


def test_make_rules_default_is_the_full_suite():
    suite = make_rules()
    assert [r.rule_id for r in suite] == list(rule_ids())


def test_make_rules_filter_returns_exactly_the_requested_rules():
    suite = make_rules(["layering/cycle", "determinism/wall-clock"])
    assert [r.rule_id for r in suite] == [
        "layering/cycle", "determinism/wall-clock"]


def test_shipped_suite_shape():
    ids = rule_ids()
    assert len(ids) == 13
    assert len(set(ids)) == 13
    assert FAMILIES == ("layering", "determinism", "concurrency", "api",
                        "hotpath")
    for rule_id in ids:
        family = rule_id.split("/")[0]
        assert family in FAMILIES
        cls = RULE_REGISTRY[rule_id]
        assert cls.family == family
        assert cls.description
    # Every family ships at least one rule.
    assert {rule_id.split("/")[0] for rule_id in ids} == set(FAMILIES)
