"""Shared helpers: in-memory fixture modules and single-rule runs."""

from typing import List, Sequence, Union

from repro.analysis import Finding, ModuleSource, analyze_modules, make_rules


def mod(module: str, source: str) -> ModuleSource:
    """An in-memory fixture module (never written to disk)."""
    return ModuleSource.from_source(module, source)


def run_rule(rule_id: str,
             modules: Union[ModuleSource, Sequence[ModuleSource]],
             ) -> List[Finding]:
    """Open findings from one rule over fixture modules."""
    if isinstance(modules, ModuleSource):
        modules = [modules]
    report = analyze_modules(list(modules), rules=make_rules([rule_id]))
    return report.open_findings


def rule_hits(rule_id: str,
              modules: Union[ModuleSource, Sequence[ModuleSource]],
              ) -> List[str]:
    """The flagged rules (should all equal ``rule_id``), for asserts."""
    return [f.rule for f in run_rule(rule_id, modules)]
