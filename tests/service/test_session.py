"""ControllerSession behaviour: envelopes, admission, drain, lifecycle."""

import pytest

from repro import (
    ControllerSession,
    Request,
    RequestKind,
    SessionConfig,
    SessionVerdict,
)
from repro.errors import ConfigError, ControllerError
from repro.protocol import SessionProtocol
from repro.workloads import build_random_tree


def _session(flavor="iterated", tree_n=16, **knobs):
    tree = build_random_tree(tree_n, seed=5)
    config = SessionConfig.of(flavor, m=200, w=20, u=1000, **knobs)
    return ControllerSession(config, tree=tree)


def _plain(session, node=None):
    return Request(RequestKind.PLAIN, node or session.tree.root)


# ----------------------------------------------------------------------
# Submission and settlement.
# ----------------------------------------------------------------------
def test_submit_is_non_blocking_and_result_settles():
    session = _session()
    ticket = session.submit(_plain(session))
    assert not ticket.done and session.in_flight == 1
    record = ticket.result()
    assert ticket.done and record.granted
    assert record.verdict is SessionVerdict.GRANTED
    assert record.settle_tick > record.submit_tick
    assert session.in_flight == 0


def test_session_satisfies_session_protocol():
    assert isinstance(_session(), SessionProtocol)


def test_drain_yields_in_settlement_order_with_monotone_ids():
    session = _session()
    session.submit_many([_plain(session) for _ in range(6)])
    records = list(session.drain())
    assert [r.envelope_id for r in records] == list(range(6))
    ticks = [r.settle_tick for r in records]
    assert ticks == sorted(ticks)


def test_result_then_drain_is_exactly_once():
    session = _session()
    ticket = session.submit(_plain(session))
    record = ticket.result()
    # The claimed record is not re-delivered by drain ...
    assert list(session.drain()) == []
    # ... but stays readable through the ticket.
    assert ticket.result() is record


def test_drain_then_result_reads_back():
    session = _session()
    ticket = session.submit(_plain(session))
    records = session.settle_all()
    assert len(records) == 1
    assert ticket.result() is records[0]


def test_envelope_materializes_with_value_semantics():
    session = _session()
    record = session.serve(_plain(session))
    envelope = record.envelope
    assert envelope == record.envelope  # fresh object, equal by value
    assert envelope.request is record.request


def test_serve_matches_submit_drain():
    session_a = _session()
    session_b = _session()
    request_a = Request(RequestKind.ADD_LEAF, session_a.tree.root)
    request_b = Request(RequestKind.ADD_LEAF, session_b.tree.root)
    record_a = session_a.serve(request_a)
    session_b.submit(request_b)
    [record_b] = list(session_b.drain())
    assert record_a.verdict == record_b.verdict
    assert session_a.tally() == session_b.tally()


def test_serve_stream_records_and_tally():
    session = _session()
    records = session.serve_stream([_plain(session) for _ in range(5)])
    assert [r.envelope_id for r in records] == list(range(5))
    assert all(r.granted for r in records)
    assert session.tally()["granted"] == 5
    # serve_stream is its own delivery channel: nothing queued for drain.
    assert list(session.drain()) == []


def test_interleaved_submit_and_serve_keep_order():
    session = _session()
    session.submit(_plain(session))
    record = session.serve(_plain(session))
    # The queued submission was flushed first, so serve's record is the
    # later envelope.
    assert record.envelope_id == 1
    assert [r.envelope_id for r in session.drain()] == [0]


# ----------------------------------------------------------------------
# Admission control.
# ----------------------------------------------------------------------
def test_backpressure_distinct_from_reject():
    session = _session(max_in_flight=2)
    tickets = session.submit_many([_plain(session) for _ in range(5)])
    verdicts = [t.result().verdict for t in tickets]
    assert verdicts[:2] == [SessionVerdict.GRANTED] * 2
    assert verdicts[2:] == [SessionVerdict.BACKPRESSURE] * 3
    assert session.backpressured == 3
    # Backpressure never reached the controller: no permit accounting.
    assert session.controller.granted == 2
    assert session.controller.rejected == 0
    refused = tickets[-1].result()
    assert refused.outcome is None and refused.backpressured
    assert refused.permit_interval is None


def test_backpressure_clears_after_drain():
    session = _session(max_in_flight=1)
    first = session.submit(_plain(session))
    refused = session.submit(_plain(session))
    assert refused.result().backpressured
    first.result()
    retried = session.submit(_plain(session))
    assert retried.result().granted


# ----------------------------------------------------------------------
# Event-driven engine.
# ----------------------------------------------------------------------
def test_distributed_session_settles_via_scheduler():
    session = _session("distributed", tree_n=24)
    nodes = list(session.tree.nodes())
    tickets = session.submit_many(
        [Request(RequestKind.PLAIN, node) for node in nodes[:8]],
        stagger=0.5)
    records = session.settle_all()
    assert len(records) == 8
    assert all(r.granted for r in records)
    assert session.now > 0  # simulated time advanced
    assert all(t.done for t in tickets)
    ticks = [r.settle_tick for r in records]
    assert ticks == sorted(ticks)  # settlement order


def test_drain_quiesces_cleanup_walks():
    """Grants settle before the agent's return/unlock walk; a finished
    drain must run that cleanup so locks and counters end exactly where
    a direct submit_batch would leave them (regression: drain used to
    stop at the last settlement, stranding cleanup hops)."""
    session = _session("distributed", tree_n=24)
    deep = max(session.tree.nodes(), key=session.tree.depth)
    session.submit(Request(RequestKind.PLAIN, deep))
    records = session.settle_all()
    assert records[0].granted
    assert session.scheduler.pending() == 0
    boards = session.controller.boards
    assert all(board.locked_by is None for _, board in boards.items())


def test_distributed_serve_matches_submit_and_run():
    """session.serve on the event engine quiesces per request, so a
    serve sequence is counter-identical to sequential submit_and_run."""
    from repro import make_controller
    tree_a = build_random_tree(24, seed=5)
    tree_b = build_random_tree(24, seed=5)
    legacy = make_controller("distributed", tree_a, m=200, w=20, u=1000)
    session = _session("distributed", tree_n=24)
    assert session.tree.size == tree_b.size
    for position in range(6):
        node_a = list(tree_a.nodes())[position]
        node_s = list(session.tree.nodes())[position]
        legacy.handle(Request(RequestKind.PLAIN, node_a))
        session.serve(Request(RequestKind.PLAIN, node_s))
    assert (legacy.counters.snapshot()
            == session.controller.counters.snapshot())


def test_scheduled_wrapper_ticks_stay_on_one_scale():
    """distributed_iterated/adaptive carry a scheduler but settle
    synchronously; their submit/settle ticks must both use the
    operation counter (regression: settle used simulated time, giving
    negative latencies)."""
    session = _session("distributed_iterated", tree_n=16)
    for _ in range(3):
        record = session.serve(Request(RequestKind.ADD_LEAF,
                                       session.tree.root))
        assert record.granted
        assert record.latency > 0, record


def test_serve_stream_bypasses_admission_on_event_engine():
    """serve_stream serves, never queues: a stream longer than the
    window must not be backpressured (regression: the event path went
    through submit_many and silently refused the tail)."""
    session = _session("distributed", tree_n=16, max_in_flight=3)
    nodes = list(session.tree.nodes())
    records = session.serve_stream(
        [Request(RequestKind.PLAIN, nodes[i % len(nodes)])
         for i in range(10)])
    assert len(records) == 10
    assert all(r.granted for r in records)
    assert session.backpressured == 0


def test_ticket_only_consumption_does_not_leak_ready_queue():
    """A session consumed purely via Ticket.result() must not retain
    every settled record (regression: _ready grew without bound)."""
    session = _session()
    for _ in range(50):
        session.submit(_plain(session)).result()
    assert len(session._ready) <= 1


def test_abandoned_ticket_does_not_block_ready_compaction():
    """One never-claimed, never-drained ticket at the queue head must
    not pin every later claimed record (regression: the head purge
    stopped at the first unclaimed entry)."""
    session = _session()
    session.submit(_plain(session))  # abandoned: never result()ed
    session._pump()                  # settles it, unclaimed, at head
    for _ in range(300):
        session.submit(_plain(session)).result()
    assert len(session._ready) < 70  # compacted, not 301
    assert session.undelivered == 1  # the abandoned record survives


def test_distributed_ticket_result_pumps_scheduler():
    session = _session("distributed", tree_n=24)
    deep = max(session.tree.nodes(), key=session.tree.depth)
    ticket = session.submit(Request(RequestKind.PLAIN, deep))
    assert not ticket.done
    assert ticket.result().granted


# ----------------------------------------------------------------------
# Tracing and intervals.
# ----------------------------------------------------------------------
def test_trace_handles_are_prefix_cursors():
    session = _session("centralized", trace=True)
    first = session.serve(_plain(session))
    second = session.serve(Request(RequestKind.ADD_LEAF,
                                   session.tree.root))
    assert first.trace_handle is not None
    assert second.trace_handle.upto >= first.trace_handle.upto
    assert first.trace_handle.events() == tuple(
        session.trace.events[:first.trace_handle.upto])


def test_trace_on_untraced_flavor_is_config_error():
    with pytest.raises(ConfigError, match="kernel trace"):
        _session("iterated", trace=True)


def test_permit_interval_surfaces_serials():
    session = _session("centralized",
                       options={"track_intervals": True})
    records = session.serve_stream([_plain(session) for _ in range(3)])
    assert [r.permit_interval for r in records] == [1, 2, 3]


def test_session_owned_options_rejected():
    with pytest.raises(ConfigError, match="session-owned"):
        _session("distributed", options={"scheduler": None})


# ----------------------------------------------------------------------
# Lifecycle.
# ----------------------------------------------------------------------
def test_close_is_idempotent_and_blocks_submit():
    session = _session()
    session.close()
    session.close()
    assert session.closed
    with pytest.raises(ControllerError, match="closed"):
        session.submit(_plain(session))
    with pytest.raises(ControllerError, match="closed"):
        session.serve(_plain(session))


def test_closed_session_never_settles_in_flight_tickets():
    """close() abandons in-flight work: pumping a closed session (via
    result() or drain()) raises instead of settling on the detached
    engine (regression: event-engine tickets granted post-detach)."""
    for flavor in ("iterated", "distributed"):
        session = _session(flavor)
        ticket = session.submit(_plain(session))
        session.close()
        with pytest.raises(ControllerError, match="closed"):
            ticket.result()
        assert not ticket.done
        assert session.controller.granted == 0


def test_serve_bypasses_admission_on_event_engine():
    """serve() serves, never queues: a full window must not turn a
    serve into backpressure (regression: event-engine serve went
    through submit())."""
    session = _session("distributed", max_in_flight=1)
    session.submit(_plain(session))  # fills the window
    record = session.serve(_plain(session))
    assert record.granted
    assert session.backpressured == 0


def test_drive_scenario_requires_quiescent_session():
    from repro.errors import ConfigError
    from repro.service import drive_scenario
    session = _session()
    session.submit(_plain(session))
    with pytest.raises(ConfigError, match="quiescent"):
        drive_scenario(session, steps=5)
    session.settle_all()
    result = drive_scenario(session, steps=5, seed=1)
    assert result.granted + result.rejected + result.cancelled \
        + result.pending == 5


def test_context_manager_closes():
    with _session() as session:
        session.serve(_plain(session))
    assert session.closed


def test_audit_and_introspect_delegate():
    session = _session()
    session.serve_stream([_plain(session) for _ in range(10)])
    view = session.introspect()
    assert view.granted == 10
    report = session.audit()
    assert report.passed


def test_default_tree_is_owned():
    session = ControllerSession(
        SessionConfig.of("centralized", m=10, w=1, u=64))
    assert session.tree.size == 1
    record = session.serve(Request(RequestKind.ADD_LEAF,
                                   session.tree.root))
    assert record.granted and session.tree.size == 2
