"""The session-vs-legacy equivalence property, over the whole catalogue.

For every catalogue scenario and every registered controller flavour,
driving the *identical* pre-generated stream through
``ControllerSession.submit_many`` + ``drain`` must produce tallies
identical to the legacy protocol path (``make_controller`` +
``handle_batch``), and the invariant auditor must pass on both engines.
This is the acceptance property of the session layer: the envelopes,
admission bookkeeping and streaming settlement add *nothing* to the
semantics.

Scaled-down specs keep the full product (5 scenarios x 8 flavours)
fast enough for tier-1.
"""

import pytest

from repro import CONTROLLER_FLAVORS, make_controller
from repro.metrics.invariants import audit_controller, tally_outcomes
from repro.service import ControllerSession, SessionConfig
from repro.workloads.catalogue import CATALOGUE, get_scenario
from repro.workloads.scenarios import TreeMirror, request_spec

SCALE = 0.25


def _replay(spec, seed, stream_specs):
    tree = spec.build_tree(seed=seed)
    mirror = TreeMirror(tree)
    requests = [mirror.request(s) for s in stream_specs]
    mirror.detach()
    return tree, requests


@pytest.mark.parametrize("flavor", CONTROLLER_FLAVORS)
@pytest.mark.parametrize("name", list(CATALOGUE))
def test_session_tallies_match_legacy(name, flavor):
    spec = get_scenario(name).scaled(SCALE)
    seed = 0
    reference = spec.build_tree(seed=seed)
    stream_specs = [request_spec(r)
                    for r in spec.stream(reference, seed=seed)]

    # Legacy path: registry construction + the protocol's handle_batch.
    tree_legacy, requests_legacy = _replay(spec, seed, stream_specs)
    legacy = make_controller(flavor, tree_legacy,
                             m=spec.m, w=spec.w, u=spec.u)
    legacy_tally = tally_outcomes(legacy.handle_batch(requests_legacy))
    legacy_report = audit_controller(legacy)
    assert legacy_report.passed, legacy_report.violations

    # Session path: submit_many + streaming drain.
    tree_session, requests_session = _replay(spec, seed, stream_specs)
    session = ControllerSession(
        SessionConfig.of(flavor, m=spec.m, w=spec.w, u=spec.u,
                         max_in_flight=len(requests_session) + 1),
        tree=tree_session)
    records = []
    session.submit_many(requests_session)
    for record in session.drain():
        records.append(record)
    session_tally = tally_outcomes(r.outcome for r in records)

    assert session_tally == legacy_tally, (
        f"{name}/{flavor}: session {session_tally} != "
        f"legacy {legacy_tally}")
    assert session.backpressured == 0
    report = session.audit()
    assert report.passed, report.violations
    # The final tree states agree too (same grants => same topology).
    assert tree_session.size == tree_legacy.size
