"""AppSpec: eager validation, normalization, per-iteration configs."""

import json

import pytest

from repro.errors import ConfigError
from repro.service import (
    APP_ENGINE_FLAVORS,
    APP_NAMES,
    APP_PARAMS,
    AppSpec,
    SessionConfig,
    resolve_app,
)


def test_app_names_catalogue():
    assert set(APP_NAMES) == {
        "size_estimation", "name_assignment", "subtree_estimator",
        "heavy_child", "ancestry_labels", "routing_labels",
        "majority_commit"}
    assert set(APP_PARAMS) == set(APP_NAMES)
    assert APP_ENGINE_FLAVORS == ("terminating", "distributed")


def test_resolve_app_normalizes():
    assert resolve_app("  size-estimation ") == "size_estimation"
    with pytest.raises(ConfigError, match="registered"):
        resolve_app("estimator_3000")


def test_unknown_app_and_param_fail_eagerly():
    with pytest.raises(ConfigError, match="unknown app"):
        AppSpec("not_an_app")
    with pytest.raises(ConfigError, match="unknown parameter"):
        AppSpec("size_estimation", params={"betta": 2.0})
    # The error names the accepted parameters.
    with pytest.raises(ConfigError, match="beta"):
        AppSpec("size_estimation", params={"slack": 4})


def test_engine_flavour_is_restricted():
    AppSpec("size_estimation", flavor="terminating")
    AppSpec("size_estimation", flavor="distributed")
    with pytest.raises(ConfigError, match="terminating, distributed"):
        AppSpec("size_estimation", flavor="centralized")
    # Hyphen spelling normalizes like the controller registry's.
    assert AppSpec("size-estimation").app == "size_estimation"


def test_session_knob_validation():
    with pytest.raises(ConfigError, match="schedule policy"):
        AppSpec("size_estimation", schedule_policy="yolo")
    with pytest.raises(ConfigError, match="delay model"):
        AppSpec("size_estimation", delay_model="psychic")
    with pytest.raises(ConfigError, match="max_in_flight"):
        AppSpec("size_estimation", max_in_flight=0)
    with pytest.raises(ConfigError, match="stagger"):
        AppSpec("size_estimation", stagger=-1.0)


def test_faults_need_the_event_driven_engine():
    with pytest.raises(ConfigError, match="event-driven"):
        AppSpec("size_estimation", faults="stall=0.05")
    spec = AppSpec("size_estimation", flavor="distributed",
                   faults="stall=0.05")
    assert not spec.fault_plan.is_noop
    # Pauses/storms need an explicit horizon (the app cannot infer one).
    with pytest.raises(ConfigError, match="horizon"):
        AppSpec("size_estimation", flavor="distributed", faults="storms=3")


def test_config_for_stamps_the_iteration_contract():
    spec = AppSpec("name_assignment", flavor="distributed",
                   schedule_policy="random", delay_model="jitter",
                   seed=5, stagger=0.25)
    config = spec.config_for(40, 20, 160, iteration=3,
                             options={"track_intervals": True,
                                      "interval_base": 80})
    assert isinstance(config, SessionConfig)
    assert config.controller.flavor == "distributed"
    assert (config.controller.m, config.controller.w,
            config.controller.u) == (40, 20, 160)
    # The event-driven flavour always terminates instead of rejecting.
    assert config.controller.options["terminate_on_exhaustion"] is True
    assert config.controller.options["interval_base"] == 80
    assert config.schedule_policy == "random"
    assert config.delay_model == "jitter"
    # Iterations do not replay each other's schedules.
    assert config.seed == 5 + 2
    assert spec.config_for(40, 20, 160, iteration=1).seed == 5


def test_with_params_and_snapshot():
    spec = AppSpec("majority_commit", params={"total": 64})
    wider = spec.with_params(beta=2.0)
    assert wider.param("total") == 64 and wider.param("beta") == 2.0
    snapshot = spec.snapshot()
    json.dumps(snapshot)
    assert snapshot["app"] == "majority_commit"
    assert snapshot["params"] == {"total": 64}
    assert snapshot["flavor"] == "terminating"
