"""SessionConfig / ControllerSpec validation (all errors are ConfigError)."""

import json

import pytest

from repro.distributed.faults import FaultPlan
from repro.errors import ConfigError
from repro.service import ControllerSpec, SessionConfig


def test_spec_normalizes_dashes():
    spec = ControllerSpec("distributed-iterated", m=10, w=1, u=64)
    assert spec.flavor == "distributed_iterated"


def test_spec_unknown_flavor_is_config_error():
    with pytest.raises(ConfigError, match="registered:"):
        ControllerSpec("bogus", m=10)


def test_spec_negative_budget_is_config_error():
    with pytest.raises(ConfigError, match=r"\(M, W\)"):
        ControllerSpec("centralized", m=-1)


@pytest.mark.parametrize("knobs, match", [
    (dict(schedule_policy="wrong"), "schedule policy"),
    (dict(delay_model="wrong"), "delay model"),
    (dict(max_in_flight=0), "max_in_flight"),
    (dict(stagger=-1.0), "stagger"),
])
def test_session_knob_validation(knobs, match):
    with pytest.raises(ConfigError, match=match):
        SessionConfig.of("centralized", m=10, w=1, u=64, **knobs)


def test_fault_spec_string_is_parsed():
    config = SessionConfig.of("distributed", m=10, w=1, u=64,
                              faults="stall=0.25")
    assert isinstance(config.faults, FaultPlan)
    assert config.fault_plan.stall_prob == 0.25


def test_faults_on_synchronous_flavor_rejected():
    with pytest.raises(ConfigError, match="event-driven"):
        SessionConfig.of("iterated", m=10, w=1, u=64, faults="stall=0.5")


def test_fault_plan_without_horizon_rejected():
    with pytest.raises(ConfigError, match="horizon"):
        SessionConfig.of("distributed", m=10, w=1, u=64,
                         faults="pauses=2")
    # ... and accepted once the horizon is explicit.
    config = SessionConfig.of("distributed", m=10, w=1, u=64,
                              faults="pauses=2,horizon=100")
    assert config.fault_plan.horizon == 100


def test_with_window_copies():
    config = SessionConfig.of("centralized", m=10, w=1, u=64)
    widened = config.with_window(7)
    assert widened.max_in_flight == 7
    assert config.max_in_flight != 7
    assert widened.controller is config.controller


def test_snapshot_is_json_serializable():
    config = SessionConfig.of(
        "distributed", m=10, w=1, u=64, faults="stall=0.1", seed=3,
        options={"indexed_stores": False})
    document = json.dumps(config.snapshot())
    assert "indexed_stores" in document and '"seed": 3' in document
