"""Exactly-once delivery under concurrent ``result()``/``drain()``.

The session's delivery contract has two channels: ``drain()`` yields
each settled record at most once (across *all* concurrent drains), and
``Ticket.result()`` is an idempotent lookup that may overlap either
channel.  These are the race regressions for the locked session pump:
barrier-synchronized double-drain, result-vs-drain on the same ticket,
and submit-while-drain interleaving.  Before the session grew its
lock, two drains could both pop the same ready record, and a drain
racing the in-flight check could raise a spurious ProtocolError.
"""

import threading
from collections import Counter

from repro import ControllerSession, Request, RequestKind, SessionConfig
from repro.workloads import build_random_tree


def _session(flavor="distributed", n=40, **knobs):
    tree = build_random_tree(n, seed=13)
    knobs.setdefault("max_in_flight", 1 << 20)
    config = SessionConfig.of(flavor, m=600, w=60, u=3000, **knobs)
    return ControllerSession(config, tree=tree)


def _requests(session, count):
    nodes = list(session.tree.nodes())
    return [Request(RequestKind.PLAIN, nodes[i % len(nodes)])
            for i in range(count)]


def test_barrier_synchronized_double_drain_is_exactly_once():
    session = _session()
    session.submit_many(_requests(session, 120))
    barrier = threading.Barrier(2)
    drained = [[], []]
    errors = []

    def drainer(slot):
        try:
            barrier.wait(timeout=10)
            for record in session.drain():
                drained[slot].append(record.envelope_id)
        except Exception as error:
            errors.append(error)

    threads = [threading.Thread(target=drainer, args=(slot,))
               for slot in (0, 1)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not any(t.is_alive() for t in threads)
    assert not errors, errors
    combined = Counter(drained[0]) + Counter(drained[1])
    # Every envelope delivered by exactly one drain, never both.
    assert set(combined) == set(range(120))
    assert all(count == 1 for count in combined.values()), \
        [e for e, c in combined.items() if c > 1]
    assert session.in_flight == 0


def test_result_vs_drain_race_never_duplicates_the_drain_channel():
    session = _session()
    tickets = session.submit_many(_requests(session, 100))
    barrier = threading.Barrier(2)
    drained = []
    claimed = {}
    errors = []

    def drainer():
        try:
            barrier.wait(timeout=10)
            for record in session.drain():
                drained.append(record)
        except Exception as error:
            errors.append(error)

    def claimer():
        try:
            barrier.wait(timeout=10)
            # Claim every other ticket while the drain runs.
            for ticket in tickets[::2]:
                claimed[ticket.envelope.envelope_id] = ticket.result()
        except Exception as error:
            errors.append(error)

    threads = [threading.Thread(target=drainer),
               threading.Thread(target=claimer)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not any(t.is_alive() for t in threads)
    assert not errors, errors
    # The drain channel never repeats an envelope ...
    drain_ids = Counter(record.envelope_id for record in drained)
    assert all(count == 1 for count in drain_ids.values())
    # ... every envelope is delivered on at least one channel ...
    assert set(drain_ids) | set(claimed) == set(range(100))
    # ... and both channels agree on the record when they overlap
    # (result() is an idempotent lookup, not a second settlement).
    by_id = {record.envelope_id: record for record in drained}
    for envelope_id, record in claimed.items():
        assert tickets[envelope_id].result() is record
        if envelope_id in by_id:
            assert by_id[envelope_id] is record
    assert session.in_flight == 0


def test_submit_during_drain_does_not_raise_spurious_protocol_error():
    session = _session()
    session.submit_many(_requests(session, 60))
    barrier = threading.Barrier(2)
    errors = []
    seen = []

    def drainer():
        try:
            barrier.wait(timeout=10)
            # Two passes: the second drains whatever the submitter
            # added after the first pass finished.
            for _ in range(2):
                for record in session.drain():
                    seen.append(record.envelope_id)
        except Exception as error:
            errors.append(error)

    def submitter():
        try:
            barrier.wait(timeout=10)
            for request in _requests(session, 60):
                session.submit(request)
        except Exception as error:
            errors.append(error)

    threads = [threading.Thread(target=drainer),
               threading.Thread(target=submitter)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not any(t.is_alive() for t in threads)
    assert not errors, errors
    # Everything the two streams submitted settled somewhere (the
    # second drain pass picks up the stragglers).
    list(session.drain())
    assert session.in_flight == 0
    assert session.audit().passed
