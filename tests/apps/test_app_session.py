"""AppSession machinery: tickets, drain boundaries, admission,
lifecycle, and the registry/protocol contract."""

import pytest

from repro import (
    AppProtocol,
    AppSpec,
    IterationRecord,
    OutcomeRecord,
    Request,
    RequestKind,
    make_app,
)
from repro.apps import APP_REGISTRY, AppSession, app_names
from repro.errors import ControllerError
from repro.service import APP_NAMES
from repro.service.envelopes import SessionVerdict
from repro.workloads import build_random_tree


def _requests(tree, count, kind=RequestKind.ADD_LEAF):
    return [Request(kind, tree.root) for _ in range(count)]


def test_registry_matches_app_names():
    assert tuple(APP_REGISTRY) == APP_NAMES == app_names()
    for name, cls in APP_REGISTRY.items():
        assert cls.name == name
        assert issubclass(cls, AppSession)


@pytest.mark.parametrize("name", APP_NAMES)
def test_every_app_constructible_and_protocol_conformant(name):
    params = {"total": 1 << 16} if name == "majority_commit" else {}
    app = make_app(AppSpec(name, params=params),
                   tree=build_random_tree(12, seed=1))
    assert isinstance(app, AppProtocol)
    record = app.serve(Request(RequestKind.ADD_LEAF, app.tree.root))
    assert record.granted
    view = app.app_view()
    assert view.name == name and view.iterations == app.iterations_run
    assert app.audit().passed
    app.close()


def test_make_app_requires_matching_class():
    spec = AppSpec("size_estimation")
    with pytest.raises(ControllerError, match="make_app"):
        APP_REGISTRY["name_assignment"](spec)


def test_drain_interleaves_boundaries_with_records():
    tree = build_random_tree(10, seed=2)
    app = make_app(AppSpec("size_estimation"), tree=tree)
    tickets = app.submit_many(_requests(tree, 30))
    stream = app.settle_all()
    boundaries = [r for r in stream if isinstance(r, IterationRecord)]
    records = [r for r in stream if isinstance(r, OutcomeRecord)]
    # 30 adds through iterations budgeted ~n/2 force >= 2 rollovers.
    assert len(boundaries) == app.iterations_run >= 3
    assert [b.index for b in boundaries] == list(
        range(1, app.iterations_run + 1))
    assert all(b.size >= 1 and b.m >= 1 for b in boundaries)
    # The construction boundary leads the stream.
    assert isinstance(stream[0], IterationRecord)
    assert len(records) == 30
    # Every ticket settled with a *final* verdict; PENDING never leaks.
    for ticket in tickets:
        assert ticket.result().verdict is SessionVerdict.GRANTED
    app.close()


def test_exactly_once_across_ticket_and_drain():
    tree = build_random_tree(8, seed=3)
    app = make_app(AppSpec("size_estimation"), tree=tree)
    tickets = app.submit_many(_requests(tree, 4))
    first = tickets[0].result()        # claimed via the ticket
    stream = app.settle_all()
    records = [r for r in stream if isinstance(r, OutcomeRecord)]
    assert first not in records        # not re-yielded
    assert len(records) == 3
    # A drained record stays readable through its ticket (lookup).
    assert tickets[1].result() in records
    app.close()


def test_app_level_backpressure_never_reaches_the_engine():
    tree = build_random_tree(6, seed=4)
    app = make_app(AppSpec("size_estimation", max_in_flight=2), tree=tree)
    tickets = app.submit_many(_requests(tree, 5))
    # The first two queue; the rest settle immediately as BACKPRESSURE.
    assert [t.done for t in tickets] == [False, False, True, True, True]
    for ticket in tickets[2:]:
        record = ticket.result()
        assert record.backpressured and record.outcome is None
    granted = [t.result() for t in tickets[:2]]
    assert all(r.granted for r in granted)
    assert app.tally()["backpressure"] == 3
    assert app.granted_total == 2
    app.close()


def test_serve_stream_matches_serve_loop():
    tree_a = build_random_tree(10, seed=5)
    tree_b = build_random_tree(10, seed=5)
    app_a = make_app(AppSpec("size_estimation"), tree=tree_a)
    app_b = make_app(AppSpec("size_estimation"), tree=tree_b)
    records_a = [app_a.serve(r) for r in _requests(tree_a, 25)]
    records_b = app_b.serve_stream(_requests(tree_b, 25))
    assert ([r.outcome.status for r in records_a]
            == [r.outcome.status for r in records_b])
    assert app_a.iterations_run == app_b.iterations_run
    assert app_a.estimate == app_b.estimate
    app_a.close(), app_b.close()


def test_event_driven_serve_stream_bypasses_admission():
    """A served stream is never backpressured, on either engine
    (the ControllerSession.serve_stream rule)."""
    tree = build_random_tree(8, seed=12)
    app = make_app(AppSpec("size_estimation", flavor="distributed",
                           max_in_flight=4), tree=tree)
    records = app.serve_stream(_requests(tree, 15))
    assert len(records) == 15
    assert all(r.outcome is not None for r in records)
    assert app.tally()["backpressure"] == 0
    assert app.audit().passed
    app.close()


def test_fault_stats_accumulate_across_rollovers():
    """Each iteration wires a fresh injector; the app's fault_stats
    must be the whole-run total, not the last iteration's."""
    tree = build_random_tree(10, seed=13)
    app = make_app(AppSpec("size_estimation", flavor="distributed",
                           faults="stall=0.5", seed=2), tree=tree)
    # Target non-root nodes: agents must hop, and hops draw stalls.
    nodes = [n for n in tree.nodes() if not n.is_root]
    app.submit_many([Request(RequestKind.ADD_LEAF, nodes[i % len(nodes)])
                     for i in range(24)])
    app.settle_all()
    assert app.iterations_run >= 2
    banked = dict(app._banked_fault_stats)
    assert banked.get("stalls", 0) > 0  # pre-rollover faults retained
    total = app.fault_stats
    assert total["stalls"] >= banked["stalls"]
    app.close()


def test_pump_respects_the_inner_session_window():
    """An app-level queue larger than the engine window drains in
    window-sized rounds; the engine never answers backpressure."""
    tree = build_random_tree(8, seed=14)
    app = make_app(AppSpec("size_estimation", max_in_flight=1 << 30),
                   tree=tree)
    # Shrink the live engine window to force multi-round pumping.
    object.__setattr__(app.session.config, "max_in_flight", 5)
    tickets = app.submit_many(_requests(tree, 17))
    records = [r for r in app.settle_all()
               if isinstance(r, OutcomeRecord)]
    assert len(records) == 17
    assert all(r.outcome is not None for r in records)
    assert app.tally()["backpressure"] == 0
    assert [t.result().envelope_id for t in tickets] == sorted(
        t.result().envelope_id for t in tickets)  # order preserved
    app.close()


def test_closed_app_refuses_everything():
    app = make_app(AppSpec("size_estimation"),
                   tree=build_random_tree(6, seed=6))
    app.close()
    assert app.closed
    with pytest.raises(ControllerError, match="closed"):
        app.submit(Request(RequestKind.PLAIN, app.tree.root))
    with pytest.raises(ControllerError, match="closed"):
        app.serve(Request(RequestKind.PLAIN, app.tree.root))
    with pytest.raises(ControllerError, match="closed"):
        app.serve_stream([])
    app.close()  # idempotent


def test_context_manager_closes():
    with make_app(AppSpec("size_estimation"),
                  tree=build_random_tree(6, seed=7)) as app:
        app.serve(Request(RequestKind.ADD_LEAF, app.tree.root))
    assert app.closed


def test_rollover_conserves_grants_across_iterations():
    tree = build_random_tree(9, seed=8)
    app = make_app(AppSpec("size_estimation"), tree=tree)
    for request in _requests(tree, 40):
        app.serve(request)
    assert app.iterations_run >= 3
    view = app.app_view()
    live = app.session.controller.granted
    assert view.grants_banked + live == app.granted_total == 40
    assert app.audit().passed
    app.close()


def test_event_driven_rollover_and_boundaries():
    tree = build_random_tree(10, seed=9)
    app = make_app(AppSpec("size_estimation", flavor="distributed",
                           schedule_policy="random", seed=4), tree=tree)
    app.submit_many(_requests(tree, 24))
    stream = app.settle_all()
    boundaries = [r for r in stream if isinstance(r, IterationRecord)]
    records = [r for r in stream if isinstance(r, OutcomeRecord)]
    assert len(records) == 24
    assert all(r.outcome is not None for r in records)
    assert all(r.verdict is not SessionVerdict.PENDING for r in records)
    assert len(boundaries) == app.iterations_run >= 2
    assert app.audit().passed
    app.close()
