"""Detach idempotence for every app that registers tree listeners.

``DynamicTree.remove_listener`` has discard semantics; every layered
``detach()``/``close()`` must therefore be safely callable twice, and a
detached app must actually be unregistered (no hooks fire on later
mutations).
"""

import pytest

from repro import AppSpec, make_app
from repro.service import APP_NAMES
from repro.workloads import build_random_tree


def _listener_count(tree):
    return len(tree._listeners)


@pytest.mark.parametrize("name", APP_NAMES)
def test_new_app_double_close_unregisters_everything(name):
    tree = build_random_tree(10, seed=1)
    baseline = _listener_count(tree)
    params = {"total": 1 << 16} if name == "majority_commit" else {}
    app = make_app(AppSpec(name, params=params), tree=tree)
    assert _listener_count(tree) > baseline  # controller and/or layers
    app.close()
    assert _listener_count(tree) == baseline
    app.close()   # idempotent
    app.detach()  # the legacy vocabulary aliases close()
    assert _listener_count(tree) == baseline
    # The tree is free for a fresh stack afterwards.
    app2 = make_app(AppSpec(name, params=params), tree=tree)
    app2.close()
    assert _listener_count(tree) == baseline


@pytest.mark.parametrize("factory", [
    lambda tree: __import__("repro.apps", fromlist=["x"])
    .AncestryLabeling(tree),
    lambda tree: __import__("repro.apps", fromlist=["x"])
    .RoutingLabeling(tree),
], ids=["ancestry_labels", "routing_labels"])
def test_label_layer_double_detach_is_a_noop(factory):
    """The listener-layer label structures the apps compose with must
    survive a second ``detach()`` (discard semantics)."""
    tree = build_random_tree(10, seed=2)
    baseline = _listener_count(tree)
    obj = factory(tree)
    obj.detach()
    assert _listener_count(tree) == baseline
    obj.detach()  # second detach: discard semantics, no raise
    assert _listener_count(tree) == baseline


def test_detached_subtree_estimator_app_stops_tracking():
    tree = build_random_tree(10, seed=3)
    app = make_app(AppSpec("subtree_estimator", params={"beta": 2.0}),
                   tree=tree)
    app.close()
    before = dict(app._true_sw)
    tree.add_leaf(tree.root)  # mutate after close: no hook must fire
    assert app._true_sw == before
