"""Tests for the majority-commitment protocol (Section 1.3)."""

import random

import pytest

from repro.errors import ControllerError
from repro import DynamicTree
from repro.apps import MajorityCommitProtocol


def grow(protocol, tree, target, seed=0):
    rng = random.Random(seed)
    nodes = list(tree.nodes())
    while tree.size < target:
        new = protocol.join(nodes[rng.randrange(len(nodes))])
        if new is not None:
            nodes.append(new)


def test_never_commits_without_majority():
    tree = DynamicTree()
    protocol = MajorityCommitProtocol(tree, total=100, beta=1.5)
    grow(protocol, tree, target=45)
    # 45 < 51: the certified bound must not clear the bar.
    assert not protocol.can_commit()
    assert not protocol.commit_exact()


def test_estimate_based_commit_with_clear_majority():
    tree = DynamicTree()
    protocol = MajorityCommitProtocol(tree, total=60, beta=1.5)
    grow(protocol, tree, target=59)
    assert protocol.can_commit()


def test_exact_round_decides_boundary_cases():
    tree = DynamicTree()
    protocol = MajorityCommitProtocol(tree, total=100, beta=1.5)
    grow(protocol, tree, target=51)
    assert protocol.commit_exact()
    assert protocol.can_commit()  # committed is sticky


def test_departures_are_supported():
    """The Korman-Kutten generalization: participants may leave."""
    tree = DynamicTree()
    protocol = MajorityCommitProtocol(tree, total=50, beta=1.5)
    grow(protocol, tree, target=30, seed=1)
    leaf = next(n for n in tree.nodes() if n.is_leaf and not n.is_root)
    outcome = protocol.leave(leaf)
    assert outcome.granted
    assert tree.size == 29
    assert protocol.commit_exact()  # 29 of 50 is a majority


def test_certified_bound_is_sound():
    tree = DynamicTree()
    protocol = MajorityCommitProtocol(tree, total=200, beta=2.0)
    grow(protocol, tree, target=80, seed=2)
    assert protocol.certified_participants() <= tree.size


def test_validation():
    tree = DynamicTree()
    with pytest.raises(ControllerError):
        MajorityCommitProtocol(tree, total=0)
    protocol = MajorityCommitProtocol(tree, total=1)
    with pytest.raises(ControllerError):
        protocol.join(tree.root)  # universe already full
