"""Tests for the majority-commitment app (Section 1.3)."""

import random

import pytest

from repro import AppSpec, DynamicTree, make_app
from repro.errors import ControllerError


def _build(tree, total, beta=1.5):
    return make_app(
        AppSpec("majority_commit", params={"total": total, "beta": beta}),
        tree=tree)


def grow(app, tree, target, seed=0):
    rng = random.Random(seed)
    nodes = list(tree.nodes())
    while tree.size < target:
        new = app.join(nodes[rng.randrange(len(nodes))])
        if new is not None:
            nodes.append(new)


def test_never_commits_without_majority():
    tree = DynamicTree()
    app = _build(tree, total=100)
    grow(app, tree, target=45)
    # 45 < 51: the certified bound must not clear the bar.
    assert not app.can_commit()
    assert not app.commit_exact()
    app.close()


def test_estimate_based_commit_with_clear_majority():
    tree = DynamicTree()
    app = _build(tree, total=60)
    grow(app, tree, target=59)
    assert app.can_commit()
    app.close()


def test_exact_round_decides_boundary_cases():
    tree = DynamicTree()
    app = _build(tree, total=100)
    grow(app, tree, target=51)
    assert app.commit_exact()
    assert app.can_commit()  # committed is sticky
    app.close()


def test_departures_are_supported():
    """The Korman-Kutten generalization: participants may leave."""
    tree = DynamicTree()
    app = _build(tree, total=50)
    grow(app, tree, target=30, seed=1)
    leaf = next(n for n in tree.nodes() if n.is_leaf and not n.is_root)
    record = app.leave(leaf)
    assert record.granted
    assert tree.size == 29
    assert app.commit_exact()  # 29 of 50 is a majority
    app.close()


def test_certified_bound_is_sound():
    tree = DynamicTree()
    app = _build(tree, total=200, beta=2.0)
    grow(app, tree, target=80, seed=2)
    assert app.certified_participants() <= tree.size
    app.close()


def test_validation():
    tree = DynamicTree()
    with pytest.raises(ControllerError):
        _build(tree, total=0)
    app = _build(tree, total=1)
    with pytest.raises(ControllerError):
        app.join(tree.root)  # universe already full
    app.close()
