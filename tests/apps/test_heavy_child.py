"""Tests for the heavy-child decomposition app (Theorem 5.4)."""

import math

from repro import AppSpec, RequestKind, make_app
from repro.workloads import build_caterpillar, build_random_tree
from tests.drivers import churn_app


def _build(tree):
    return make_app(AppSpec("heavy_child"), tree=tree)


def test_every_internal_node_has_a_heavy_child():
    tree = build_random_tree(60, seed=1)
    app = _build(tree)
    churn_app(tree, app, steps=200, seed=2)
    for node in tree.nodes():
        if node.children:
            heavy = app.heavy_child(node)
            assert heavy is not None
            assert heavy.parent is node
        else:
            assert app.heavy_child(node) is None
    app.close()


def test_light_depth_logarithmic_on_random_churn():
    tree = build_random_tree(100, seed=3)
    app = _build(tree)
    churn_app(tree, app, steps=400, seed=4)
    n = tree.size
    bound = 6 * math.log2(max(n, 2)) + 6
    assert app.max_light_depth() <= bound
    app.close()


def test_light_depth_logarithmic_on_caterpillar_growth():
    tree = build_caterpillar(60)
    app = _build(tree)
    churn_app(tree, app, steps=300, seed=5,
              mix={RequestKind.ADD_LEAF: 1.0})
    n = tree.size
    bound = 6 * math.log2(max(n, 2)) + 6
    assert app.max_light_depth() <= bound
    app.close()


def test_root_is_never_light():
    tree = build_random_tree(20, seed=6)
    app = _build(tree)
    assert not app.is_light(tree.root)
    app.close()


def test_mu_pointers_survive_removals():
    tree = build_random_tree(80, seed=7)
    app = _build(tree)
    churn_app(tree, app, steps=300, seed=8,
              mix={RequestKind.REMOVE_LEAF: 0.5,
                   RequestKind.REMOVE_INTERNAL: 0.2,
                   RequestKind.ADD_LEAF: 0.3})
    for node in tree.nodes():
        heavy = app.heavy_child(node)
        if node.children:
            assert heavy is not None and heavy.parent is node
    tree.validate()
    app.close()
