"""Tests for the heavy-child decomposition (Theorem 5.4)."""

import math
import random

from repro import RequestKind
from repro.apps import HeavyChildDecomposition
from repro.workloads import (
    NodePicker,
    build_caterpillar,
    build_random_tree,
    random_request,
)


def churn(tree, decomposition, steps, seed, mix=None):
    rng = random.Random(seed)
    picker = NodePicker(tree)
    done = 0
    while done < steps:
        request = random_request(tree, rng, mix=mix, picker=picker)
        if request.kind is RequestKind.PLAIN:
            continue
        decomposition.submit(request)
        done += 1
    picker.detach()


def test_every_internal_node_has_a_heavy_child():
    tree = build_random_tree(60, seed=1)
    decomposition = HeavyChildDecomposition(tree)
    churn(tree, decomposition, steps=200, seed=2)
    for node in tree.nodes():
        if node.children:
            heavy = decomposition.heavy_child(node)
            assert heavy is not None
            assert heavy.parent is node
        else:
            assert decomposition.heavy_child(node) is None


def test_light_depth_logarithmic_on_random_churn():
    tree = build_random_tree(100, seed=3)
    decomposition = HeavyChildDecomposition(tree)
    churn(tree, decomposition, steps=400, seed=4)
    n = tree.size
    bound = 6 * math.log2(max(n, 2)) + 6
    assert decomposition.max_light_depth() <= bound


def test_light_depth_logarithmic_on_caterpillar_growth():
    tree = build_caterpillar(60)
    decomposition = HeavyChildDecomposition(tree)
    churn(tree, decomposition, steps=300, seed=5,
          mix={RequestKind.ADD_LEAF: 1.0})
    n = tree.size
    bound = 6 * math.log2(max(n, 2)) + 6
    assert decomposition.max_light_depth() <= bound


def test_root_is_never_light():
    tree = build_random_tree(20, seed=6)
    decomposition = HeavyChildDecomposition(tree)
    assert not decomposition.is_light(tree.root)


def test_mu_pointers_survive_removals():
    tree = build_random_tree(80, seed=7)
    decomposition = HeavyChildDecomposition(tree)
    churn(tree, decomposition, steps=300, seed=8,
          mix={RequestKind.REMOVE_LEAF: 0.5, RequestKind.REMOVE_INTERNAL: 0.2,
               RequestKind.ADD_LEAF: 0.3})
    for node in tree.nodes():
        heavy = decomposition.heavy_child(node)
        if node.children:
            assert heavy is not None and heavy.parent is node
    tree.validate()
