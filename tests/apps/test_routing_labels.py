"""Tests for the interval routing scheme (Corollary 5.6)."""

import random

from repro.apps import RoutingLabeling
from repro.tree.paths import ancestors, depth
from repro.workloads import build_path, build_random_tree


def tree_distance(a, b):
    ancestry = set(ancestors(a))
    current = b
    while current not in ancestry:
        current = current.parent
    return depth(a) + depth(b) - 2 * depth(current)


def assert_exact_routing(tree, labeling, rng, samples=50):
    nodes = list(tree.nodes())
    for _ in range(samples):
        a = nodes[rng.randrange(len(nodes))]
        b = nodes[rng.randrange(len(nodes))]
        path = labeling.route(a, b)
        assert path[0] is a and path[-1] is b
        assert len(path) - 1 == tree_distance(a, b)  # stretch 1


def test_routing_exact_on_static_trees():
    rng = random.Random(1)
    for builder in (lambda: build_random_tree(80, seed=2),
                    lambda: build_path(60)):
        tree = builder()
        labeling = RoutingLabeling(tree)
        assert_exact_routing(tree, labeling, rng)


def test_routing_survives_leaf_deletions_without_relabel():
    tree = build_random_tree(100, seed=3)
    labeling = RoutingLabeling(tree)
    relabels_before = labeling.relabels
    rng = random.Random(4)
    for _ in range(30):  # < half the tree: no relabel triggered
        leaves = [n for n in tree.nodes() if n.is_leaf and not n.is_root]
        tree.remove_leaf(leaves[rng.randrange(len(leaves))])
        assert_exact_routing(tree, labeling, rng, samples=10)
    assert labeling.relabels == relabels_before


def test_routing_survives_internal_deletions():
    tree = build_random_tree(100, seed=5)
    labeling = RoutingLabeling(tree)
    rng = random.Random(6)
    for _ in range(25):
        internals = [n for n in tree.nodes()
                     if n.children and not n.is_root]
        if not internals:
            break
        tree.remove_internal(internals[rng.randrange(len(internals))])
        assert_exact_routing(tree, labeling, rng, samples=10)


def test_shrinkage_relabel_restores_compact_labels():
    tree = build_random_tree(400, seed=7)
    labeling = RoutingLabeling(tree)
    bits_before = labeling.label_bits()
    rng = random.Random(8)
    while tree.size > 40:
        leaves = [n for n in tree.nodes() if n.is_leaf and not n.is_root]
        tree.remove_leaf(leaves[rng.randrange(len(leaves))])
    assert labeling.relabels > 1
    assert labeling.label_bits() < bits_before
    assert_exact_routing(tree, labeling, rng, samples=30)


def test_additions_relabel_and_stay_correct():
    tree = build_random_tree(30, seed=9)
    labeling = RoutingLabeling(tree)
    rng = random.Random(10)
    nodes = list(tree.nodes())
    for _ in range(20):
        parent = nodes[rng.randrange(len(nodes))]
        nodes.append(tree.add_leaf(parent))
    assert_exact_routing(tree, labeling, rng, samples=30)


def test_route_to_self_is_trivial():
    tree = build_random_tree(10, seed=11)
    labeling = RoutingLabeling(tree)
    node = next(iter(tree.nodes()))
    assert labeling.route(node, node) == [node]
