"""New-path == legacy-path equivalence for every Section 5 app.

The deprecated hand-wired constructors are kept (until 2.0) precisely
to serve as the differential reference: on identical catalogue streams
the session-era apps must produce identical outcome tallies and
identical app-level state — estimates, ids, mu pointers, labels —
across multiple iteration rollovers, and the invariant auditor must
come back clean.  The event-driven half runs every app on the
distributed engine under >= 2 schedule policies and audits it.
"""

import warnings

import pytest

from repro import AppSpec, make_app
from repro.apps import (
    AncestryLabeling,
    HeavyChildDecomposition,
    NameAssignmentProtocol,
    RoutingLabeling,
    SizeEstimationProtocol,
    SubtreeEstimator,
)
from repro.service.envelopes import IterationRecord, OutcomeRecord
from repro.workloads import TreeMirror, request_spec
from repro.workloads.catalogue import get_scenario

SCENARIOS = ["hot_spot", "grow_shrink", "mixed_flood"]
SCALE = 0.2

APP_SPECS = {
    "size_estimation": {"beta": 2.0},
    "name_assignment": {},
    "subtree_estimator": {"beta": 2.0},
    "heavy_child": {},
    "ancestry_labels": {"slack": 4},
    "routing_labels": {},
    "majority_commit": {"total": 1 << 16, "beta": 1.5},
}


def _legacy_build(name, tree):
    """The deprecated path for ``name`` on ``tree``: (submit, state)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        if name == "size_estimation":
            obj = SizeEstimationProtocol(tree, beta=2.0)
            return obj.submit, lambda: ("est", obj.estimate,
                                        obj.iterations_run)
        if name == "name_assignment":
            obj = NameAssignmentProtocol(tree)
            return obj.submit, lambda: ("ids", sorted(
                (n.node_id, obj.ids[n]) for n in tree.nodes()))
        if name == "subtree_estimator":
            obj = SubtreeEstimator(tree, beta=2.0)
            return obj.submit, lambda: ("sw", sorted(
                (n.node_id, obj.estimate(n)) for n in tree.nodes()))
        if name == "heavy_child":
            obj = HeavyChildDecomposition(tree)
            return obj.submit, lambda: ("mu", sorted(
                (k.node_id, v.node_id) for k, v in obj._mu.items()))
        if name == "ancestry_labels":
            guard = SizeEstimationProtocol(tree, beta=2.0)
            labels = AncestryLabeling(tree, slack=4)
            return guard.submit, lambda: ("labels", sorted(
                (n.node_id, labels.labels[n]) for n in tree.nodes()),
                labels.relabels)
        if name == "routing_labels":
            guard = SizeEstimationProtocol(tree, beta=2.0)
            labels = RoutingLabeling(tree)
            return guard.submit, lambda: ("routes", sorted(
                (n.node_id, labels.labels[n]) for n in tree.nodes()),
                labels.relabels)
        if name == "majority_commit":
            # The legacy class exposes join/leave; its estimator is the
            # submit surface the app inherits.
            from repro.apps import MajorityCommitProtocol
            obj = MajorityCommitProtocol(tree, total=1 << 16, beta=1.5)
            return obj.estimator.submit, lambda: (
                "maj", obj.estimator.estimate, obj.can_commit())
    raise AssertionError(name)


def _app_state(name, app, tree):
    if name == "size_estimation":
        return ("est", app.estimate, app.iterations_run)
    if name == "name_assignment":
        return ("ids", sorted((n.node_id, app.ids[n])
                              for n in tree.nodes()))
    if name == "subtree_estimator":
        return ("sw", sorted((n.node_id, app.estimate_of(n))
                             for n in tree.nodes()))
    if name == "heavy_child":
        return ("mu", sorted((k.node_id, v.node_id)
                             for k, v in app._mu.items()))
    if name == "ancestry_labels":
        return ("labels", sorted((n.node_id, app.labels[n])
                                 for n in tree.nodes()), app.relabels)
    if name == "routing_labels":
        return ("routes", sorted((n.node_id, app.labels[n])
                                 for n in tree.nodes()), app.relabels)
    if name == "majority_commit":
        return ("maj", app.estimate, app.can_commit())
    raise AssertionError(name)


def _scenario_stream(scenario, seed):
    spec = get_scenario(scenario).scaled(SCALE)
    tree = spec.build_tree(seed=seed)
    return spec, [request_spec(r) for r in spec.stream(tree, seed=seed)]


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("name", sorted(APP_SPECS))
def test_legacy_and_app_paths_agree(name, scenario):
    seed = 11
    spec, stream = _scenario_stream(scenario, seed)

    tree_l = spec.build_tree(seed=seed)
    mirror_l = TreeMirror(tree_l)
    submit, legacy_state = _legacy_build(name, tree_l)
    statuses_l = [submit(mirror_l.request(s)).status for s in stream]
    mirror_l.detach()

    tree_a = spec.build_tree(seed=seed)
    mirror_a = TreeMirror(tree_a)
    app = make_app(AppSpec(name, params=APP_SPECS[name]), tree=tree_a)
    records = app.serve_stream(mirror_a.requests(stream))
    mirror_a.detach()
    statuses_a = [r.outcome.status for r in records]

    assert statuses_l == statuses_a
    assert legacy_state() == _app_state(name, app, tree_a)
    assert tree_l.size == tree_a.size
    # The stream must have exercised the Observation 2.1 rollover.
    assert app.iterations_run >= 2
    report = app.audit()
    assert report.passed, report.violations
    app.close()


@pytest.mark.parametrize("policy", ["random", "adversary"])
@pytest.mark.parametrize("name", sorted(APP_SPECS))
def test_event_driven_apps_audit_clean(name, policy):
    seed = 23
    spec, stream = _scenario_stream("mixed_flood", seed)
    tree = spec.build_tree(seed=seed)
    mirror = TreeMirror(tree)
    requests = [mirror.request(s) for s in stream]
    mirror.detach()
    app = make_app(
        AppSpec(name, params=APP_SPECS[name], flavor="distributed",
                schedule_policy=policy, seed=seed), tree=tree)
    app.submit_many(requests)
    output = app.settle_all()
    records = [r for r in output if isinstance(r, OutcomeRecord)]
    boundaries = [r for r in output if isinstance(r, IterationRecord)]
    assert len(records) == len(requests)  # everything settled, finally
    assert all(r.outcome is not None for r in records)
    assert len(boundaries) == app.iterations_run >= 2
    report = app.audit()
    assert report.passed, report.violations
    if name == "name_assignment":
        app.check_invariants()
    app.close()


@pytest.mark.parametrize("name", sorted(APP_SPECS))
def test_event_driven_app_under_faults(name):
    """A stalling fault plan changes timing, never correctness."""
    seed = 31
    spec, stream = _scenario_stream("grow_shrink", seed)
    tree = spec.build_tree(seed=seed)
    mirror = TreeMirror(tree)
    requests = [mirror.request(s) for s in stream]
    mirror.detach()
    app = make_app(
        AppSpec(name, params=APP_SPECS[name], flavor="distributed",
                schedule_policy="random", faults="stall=0.1", seed=seed),
        tree=tree)
    app.submit_many(requests)
    records = [r for r in app.settle_all()
               if isinstance(r, OutcomeRecord)]
    assert len(records) == len(requests)
    report = app.audit()
    assert report.passed, report.violations
    app.close()
