"""Differential equivalence for every Section 5 app.

With the legacy hand-wired constructors removed in 2.0, the
differential reference is the app's own per-request ``serve`` loop: on
identical catalogue streams the chunked ``serve_stream`` path must
produce identical outcome tallies and identical app-level state —
estimates, ids, mu pointers, labels — across multiple iteration
rollovers, and the invariant auditor must come back clean.  The
event-driven half runs every app on the distributed engine under >= 2
schedule policies and audits it.
"""

import pytest

from repro import AppSpec, make_app
from repro.service.envelopes import IterationRecord, OutcomeRecord
from repro.workloads import TreeMirror, request_spec
from repro.workloads.catalogue import get_scenario

SCENARIOS = ["hot_spot", "grow_shrink", "mixed_flood"]
SCALE = 0.2

APP_SPECS = {
    "size_estimation": {"beta": 2.0},
    "name_assignment": {},
    "subtree_estimator": {"beta": 2.0},
    "heavy_child": {},
    "ancestry_labels": {"slack": 4},
    "routing_labels": {},
    "majority_commit": {"total": 1 << 16, "beta": 1.5},
}


def _app_state(name, app, tree):
    if name == "size_estimation":
        return ("est", app.estimate, app.iterations_run)
    if name == "name_assignment":
        return ("ids", sorted((n.node_id, app.ids[n])
                              for n in tree.nodes()))
    if name == "subtree_estimator":
        return ("sw", sorted((n.node_id, app.estimate_of(n))
                             for n in tree.nodes()))
    if name == "heavy_child":
        return ("mu", sorted((k.node_id, v.node_id)
                             for k, v in app._mu.items()))
    if name == "ancestry_labels":
        return ("labels", sorted((n.node_id, app.labels[n])
                                 for n in tree.nodes()), app.relabels)
    if name == "routing_labels":
        return ("routes", sorted((n.node_id, app.labels[n])
                                 for n in tree.nodes()), app.relabels)
    if name == "majority_commit":
        return ("maj", app.estimate, app.can_commit())
    raise AssertionError(name)


def _scenario_stream(scenario, seed):
    spec = get_scenario(scenario).scaled(SCALE)
    tree = spec.build_tree(seed=seed)
    return spec, [request_spec(r) for r in spec.stream(tree, seed=seed)]


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("name", sorted(APP_SPECS))
def test_serve_and_stream_paths_agree(name, scenario):
    seed = 11
    spec, stream = _scenario_stream(scenario, seed)

    tree_s = spec.build_tree(seed=seed)
    mirror_s = TreeMirror(tree_s)
    app_s = make_app(AppSpec(name, params=APP_SPECS[name]), tree=tree_s)
    statuses_s = [app_s.serve(mirror_s.request(s)).outcome.status
                  for s in stream]
    mirror_s.detach()

    tree_b = spec.build_tree(seed=seed)
    mirror_b = TreeMirror(tree_b)
    app_b = make_app(AppSpec(name, params=APP_SPECS[name]), tree=tree_b)
    records = app_b.serve_stream(mirror_b.requests(stream))
    mirror_b.detach()
    statuses_b = [r.outcome.status for r in records]

    assert statuses_s == statuses_b
    assert _app_state(name, app_s, tree_s) == _app_state(name, app_b,
                                                         tree_b)
    assert tree_s.size == tree_b.size
    # The stream must have exercised the Observation 2.1 rollover.
    assert app_b.iterations_run >= 2
    for app in (app_s, app_b):
        report = app.audit()
        assert report.passed, report.violations
        app.close()


@pytest.mark.parametrize("policy", ["random", "adversary"])
@pytest.mark.parametrize("name", sorted(APP_SPECS))
def test_event_driven_apps_audit_clean(name, policy):
    seed = 23
    spec, stream = _scenario_stream("mixed_flood", seed)
    tree = spec.build_tree(seed=seed)
    mirror = TreeMirror(tree)
    requests = [mirror.request(s) for s in stream]
    mirror.detach()
    app = make_app(
        AppSpec(name, params=APP_SPECS[name], flavor="distributed",
                schedule_policy=policy, seed=seed), tree=tree)
    app.submit_many(requests)
    output = app.settle_all()
    records = [r for r in output if isinstance(r, OutcomeRecord)]
    boundaries = [r for r in output if isinstance(r, IterationRecord)]
    assert len(records) == len(requests)  # everything settled, finally
    assert all(r.outcome is not None for r in records)
    assert len(boundaries) == app.iterations_run >= 2
    report = app.audit()
    assert report.passed, report.violations
    if name == "name_assignment":
        app.check_invariants()
    app.close()


@pytest.mark.parametrize("name", sorted(APP_SPECS))
def test_event_driven_app_under_faults(name):
    """A stalling fault plan changes timing, never correctness."""
    seed = 31
    spec, stream = _scenario_stream("grow_shrink", seed)
    tree = spec.build_tree(seed=seed)
    mirror = TreeMirror(tree)
    requests = [mirror.request(s) for s in stream]
    mirror.detach()
    app = make_app(
        AppSpec(name, params=APP_SPECS[name], flavor="distributed",
                schedule_policy="random", faults="stall=0.1", seed=seed),
        tree=tree)
    app.submit_many(requests)
    records = [r for r in app.settle_all()
               if isinstance(r, OutcomeRecord)]
    assert len(records) == len(requests)
    report = app.audit()
    assert report.passed, report.violations
    app.close()
