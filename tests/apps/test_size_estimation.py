"""Tests for the size-estimation app (Theorem 5.1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import AppSpec, RequestKind, make_app
from repro.errors import ControllerError
from repro.workloads import build_random_tree
from tests.drivers import churn_app


def _build(tree, beta):
    return make_app(AppSpec("size_estimation", params={"beta": beta}),
                    tree=tree)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5000),
       beta=st.sampled_from([1.5, 2.0, 3.0]))
def test_beta_approximation_holds_at_all_times(seed, beta):
    tree = build_random_tree(60, seed=seed)
    app = _build(tree, beta)
    def check(step):
        assert app.check_approximation() <= beta + 1e-9
    churn_app(tree, app, steps=300, seed=seed + 1, on_step=check)
    app.close()


def test_iterations_advance():
    tree = build_random_tree(40, seed=1)
    app = _build(tree, 2.0)
    churn_app(tree, app, steps=500, seed=2)
    assert app.iterations_run > 1
    app.close()


def test_estimate_is_uniform_across_nodes():
    tree = build_random_tree(30, seed=3)
    app = _build(tree, 2.0)
    churn_app(tree, app, steps=100, seed=4)
    estimates = {app.estimate_at(node) for node in tree.nodes()}
    assert len(estimates) == 1
    app.close()


def test_amortized_messages_polylog():
    """Total messages / changes should be O(log^2 n)-ish, far below n."""
    tree = build_random_tree(200, seed=5)
    app = _build(tree, 2.0)
    churn_app(tree, app, steps=1500, seed=6)
    amortized = app.counters.total / tree.topology_changes
    n = tree.size
    assert amortized < 12 * math.log2(n) ** 2
    assert amortized < n / 4  # decisively better than flooding
    app.close()


def test_shrinking_network():
    """Pure deletions: the estimate must track the shrink."""
    tree = build_random_tree(120, seed=7)
    app = _build(tree, 1.5)
    mix = {RequestKind.REMOVE_LEAF: 0.5, RequestKind.REMOVE_INTERNAL: 0.5}
    def check(step):
        assert app.check_approximation() <= 1.5 + 1e-9
    churn_app(tree, app, steps=100, seed=8, mix=mix, on_step=check)
    assert tree.size <= 20
    app.close()


def test_invalid_beta_rejected():
    tree = build_random_tree(5, seed=9)
    with pytest.raises(ControllerError):
        _build(tree, 1.0)


def test_growth_scenario():
    tree = build_random_tree(10, seed=10)
    app = _build(tree, 2.0)
    mix = {RequestKind.ADD_LEAF: 1.0}
    def check(step):
        assert app.check_approximation() <= 2.0 + 1e-9
    churn_app(tree, app, steps=500, seed=11, mix=mix, on_step=check)
    assert tree.size >= 500
    app.close()
