"""Tests for the size-estimation protocol (Theorem 5.1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ControllerError
from repro import Request, RequestKind
from repro.apps import SizeEstimationProtocol
from repro.workloads import (
    NodePicker,
    build_random_tree,
    default_mix,
    random_request,
    run_scenario,
)
import random


def churn(tree, protocol, steps, seed, mix=None, on_step=None):
    rng = random.Random(seed)
    picker = NodePicker(tree)
    done = 0
    while done < steps:
        request = random_request(tree, rng, mix=mix, picker=picker)
        if request.kind is RequestKind.PLAIN:
            continue
        protocol.submit(request)
        done += 1
        if on_step is not None:
            on_step(done)
    picker.detach()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5000),
       beta=st.sampled_from([1.5, 2.0, 3.0]))
def test_beta_approximation_holds_at_all_times(seed, beta):
    tree = build_random_tree(60, seed=seed)
    protocol = SizeEstimationProtocol(tree, beta=beta)
    def check(step):
        assert protocol.check_approximation() <= beta + 1e-9
    churn(tree, protocol, steps=300, seed=seed + 1, on_step=check)


def test_iterations_advance():
    tree = build_random_tree(40, seed=1)
    protocol = SizeEstimationProtocol(tree, beta=2.0)
    churn(tree, protocol, steps=500, seed=2)
    assert protocol.iterations_run > 1


def test_estimate_is_uniform_across_nodes():
    tree = build_random_tree(30, seed=3)
    protocol = SizeEstimationProtocol(tree, beta=2.0)
    churn(tree, protocol, steps=100, seed=4)
    estimates = {protocol.estimate_at(node) for node in tree.nodes()}
    assert len(estimates) == 1


def test_amortized_messages_polylog():
    """Total messages / changes should be O(log^2 n)-ish, far below n."""
    tree = build_random_tree(200, seed=5)
    protocol = SizeEstimationProtocol(tree, beta=2.0)
    churn(tree, protocol, steps=1500, seed=6)
    amortized = protocol.counters.total / tree.topology_changes
    n = tree.size
    assert amortized < 12 * math.log2(n) ** 2
    assert amortized < n / 4  # decisively better than flooding


def test_shrinking_network():
    """Pure deletions: the estimate must track the shrink."""
    tree = build_random_tree(120, seed=7)
    protocol = SizeEstimationProtocol(tree, beta=1.5)
    mix = {RequestKind.REMOVE_LEAF: 0.5, RequestKind.REMOVE_INTERNAL: 0.5}
    def check(step):
        assert protocol.check_approximation() <= 1.5 + 1e-9
    churn(tree, protocol, steps=100, seed=8, mix=mix, on_step=check)
    assert tree.size <= 20


def test_invalid_beta_rejected():
    tree = build_random_tree(5, seed=9)
    with pytest.raises(ControllerError):
        SizeEstimationProtocol(tree, beta=1.0)


def test_growth_scenario():
    tree = build_random_tree(10, seed=10)
    protocol = SizeEstimationProtocol(tree, beta=2.0)
    mix = {RequestKind.ADD_LEAF: 1.0}
    def check(step):
        assert protocol.check_approximation() <= 2.0 + 1e-9
    churn(tree, protocol, steps=500, seed=11, mix=mix, on_step=check)
    assert tree.size >= 500
