"""Tests for the name-assignment app (Theorem 5.2)."""

from hypothesis import given, settings, strategies as st

from repro import AppSpec, Request, RequestKind, make_app
from repro.workloads import build_random_tree
from tests.drivers import churn_app


def _build(tree):
    return make_app(AppSpec("name_assignment"), tree=tree)


def test_initial_ids_are_one_to_n():
    tree = build_random_tree(25, seed=1)
    app = _build(tree)
    ids = sorted(app.id_of(node) for node in tree.nodes())
    assert ids == list(range(1, 26))
    app.close()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 5000))
def test_ids_unique_and_short_at_all_times(seed):
    tree = build_random_tree(40, seed=seed)
    app = _build(tree)
    def check(step):
        app.check_invariants()
    churn_app(tree, app, steps=250, seed=seed + 1, on_step=check)
    app.close()


def test_new_nodes_get_ids_from_permit_serials():
    tree = build_random_tree(20, seed=2)
    app = _build(tree)
    n_i = 20
    record = app.serve(Request(RequestKind.ADD_LEAF, tree.root))
    outcome = record.outcome
    assert outcome is not None and outcome.granted
    new_id = app.id_of(outcome.new_node)
    # First iteration serials live in (N_1, 3 N_1 / 2].
    assert n_i < new_id <= 3 * n_i // 2
    app.close()


def test_iterations_renumber_compactly():
    tree = build_random_tree(30, seed=3)
    app = _build(tree)
    churn_app(tree, app, steps=400, seed=4)
    assert app.iterations_run > 1
    app.check_invariants()
    # After many iterations ids stay within [1, 4n] even though > 400
    # names were handed out in total.
    max_id = max(app.id_of(node) for node in tree.nodes())
    assert max_id <= 4 * tree.size
    app.close()


def test_removed_nodes_release_ids():
    tree = build_random_tree(15, seed=5)
    app = _build(tree)
    leaf = next(n for n in tree.nodes() if n.is_leaf)
    app.serve(Request(RequestKind.REMOVE_LEAF, leaf))
    assert leaf not in app.ids
    app.close()
