"""Tests for the name-assignment protocol (Theorem 5.2)."""

import random

from hypothesis import given, settings, strategies as st

from repro import RequestKind
from repro.apps import NameAssignmentProtocol
from repro.workloads import NodePicker, build_random_tree, random_request


def churn(tree, protocol, steps, seed, on_step=None):
    rng = random.Random(seed)
    picker = NodePicker(tree)
    done = 0
    while done < steps:
        request = random_request(tree, rng, picker=picker)
        if request.kind is RequestKind.PLAIN:
            continue
        protocol.submit(request)
        done += 1
        if on_step is not None:
            on_step(done)
    picker.detach()


def test_initial_ids_are_one_to_n():
    tree = build_random_tree(25, seed=1)
    protocol = NameAssignmentProtocol(tree)
    ids = sorted(protocol.id_of(node) for node in tree.nodes())
    assert ids == list(range(1, 26))


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 5000))
def test_ids_unique_and_short_at_all_times(seed):
    tree = build_random_tree(40, seed=seed)
    protocol = NameAssignmentProtocol(tree)
    def check(step):
        protocol.check_invariants()
    churn(tree, protocol, steps=250, seed=seed + 1, on_step=check)


def test_new_nodes_get_ids_from_permit_serials():
    tree = build_random_tree(20, seed=2)
    protocol = NameAssignmentProtocol(tree)
    n_i = 20
    from repro.core.requests import Request
    outcome = protocol.submit(Request(RequestKind.ADD_LEAF, tree.root))
    assert outcome.granted
    new_id = protocol.id_of(outcome.new_node)
    # First iteration serials live in (N_1, 3 N_1 / 2].
    assert n_i < new_id <= 3 * n_i // 2


def test_iterations_renumber_compactly():
    tree = build_random_tree(30, seed=3)
    protocol = NameAssignmentProtocol(tree)
    churn(tree, protocol, steps=400, seed=4)
    assert protocol.iterations_run > 1
    protocol.check_invariants()
    # After many iterations ids stay within [1, 4n] even though > 400
    # names were handed out in total.
    max_id = max(protocol.id_of(node) for node in tree.nodes())
    assert max_id <= 4 * tree.size


def test_removed_nodes_release_ids():
    tree = build_random_tree(15, seed=5)
    protocol = NameAssignmentProtocol(tree)
    from repro.core.requests import Request
    leaf = next(n for n in tree.nodes() if n.is_leaf)
    protocol.submit(Request(RequestKind.REMOVE_LEAF, leaf))
    assert leaf not in protocol.ids
