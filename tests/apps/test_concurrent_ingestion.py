"""Concurrent app ingestion: speculative admission across rollovers.

The PR-5 follow-up: an :class:`AppSession` keeps admitting new
requests *while the old iteration is still draining* — the queue is
speculative (requests admitted under iteration ``k`` may be served by
iteration ``k+1`` after an Observation 2.1 rollover), and the rollover
must conserve grants regardless: banked grants from closed iterations
plus the live controller's tally always equal the app's own granted
count (checked by ``audit_app``'s conservation invariant).  The
gateway rides the same path, so its front-door concurrency is covered
here too.
"""

import threading

from repro import (
    AppSpec,
    Gateway,
    GatewayConfig,
    IterationRecord,
    OutcomeRecord,
    Request,
    RequestKind,
    make_app,
)
from repro.metrics.invariants import audit_app
from repro.workloads import build_random_tree


def _app(n=10, seed=2, name="size_estimation", **params):
    tree = build_random_tree(n, seed=seed)
    return make_app(AppSpec(name, max_in_flight=1 << 20, **params),
                    tree=tree), tree


def _adds(tree, count):
    return [Request(RequestKind.ADD_LEAF, tree.root) for _ in range(count)]


def _assert_conserved(app):
    report = audit_app(app)
    assert report.passed, [v.to_json() for v in report.violations]
    # The rollover-conservation invariant actually ran (it is the
    # point of these tests, not an incidental pass).
    assert report.checks.get("conservation", 0) >= 1, report.checks


def test_speculative_admission_while_old_iteration_drains():
    app, tree = _app()
    first = app.submit_many(_adds(tree, 20))
    stream = app.drain()
    seen = []
    speculative = []
    for record in stream:
        seen.append(record)
        # The index=1 boundary is emitted at construction; a later
        # index proves iteration 1 *closed* while its queue is still
        # draining — and we admit the next wave anyway.
        if (isinstance(record, IterationRecord) and record.index >= 2
                and not speculative):
            speculative.append(app.submit_many(_adds(tree, 15)))
            assert app.iterations_run >= 2
            _assert_conserved(app)  # conservation holds mid-drain too
    # The same drain generator served the speculative wave.
    outcome_records = [r for r in seen if isinstance(r, OutcomeRecord)]
    assert speculative, "no rollover happened; the test lost its point"
    assert len(outcome_records) == 35
    assert all(t.done for t in first + speculative[0])
    _assert_conserved(app)
    app.close()


def test_interleaved_submit_and_drain_across_many_rollovers():
    app, tree = _app(n=8)
    total = 0
    boundaries = 0
    for wave in range(6):
        app.submit_many(_adds(tree, 10))
        total += 10
        # Partially drain: pull a handful of events, then go back to
        # submitting — the drain picks up where it left off next wave.
        stream = app.drain()
        for _ in range(4):
            try:
                record = next(stream)
            except StopIteration:
                break
            if isinstance(record, IterationRecord):
                boundaries += 1
        stream.close()
        _assert_conserved(app)
    tally_before = dict(app.tally())
    rest = app.settle_all()
    boundaries += sum(isinstance(r, IterationRecord) for r in rest)
    assert app.iterations_run >= 3 and boundaries >= 2
    tally = app.tally()
    assert sum(tally[v] for v in ("granted", "rejected", "cancelled",
                                  "pending")) == total
    assert tally["granted"] >= tally_before["granted"]
    _assert_conserved(app)
    app.close()


def test_rollover_conservation_counts_every_banked_grant():
    app, tree = _app(n=6)
    app.submit_many(_adds(tree, 40))
    app.settle_all()
    view = app.app_view()
    assert view.iterations == app.iterations_run >= 2
    # The books themselves: banked + live == the app's granted tally.
    live = app._live_granted()
    assert view.grants_banked + live == view.granted_total
    assert view.granted_total == app.tally()["granted"]
    _assert_conserved(app)
    app.close()


def test_gateway_front_door_over_rollovers_audits_clean():
    app, tree = _app()
    gateway = Gateway(app, GatewayConfig(batch_size=4))
    tickets = []
    for wave in range(5):
        tickets += gateway.submit_many(_adds(tree, 8), client=f"w{wave}")
        gateway.pump()  # interleave pumping with admission
    gateway.run_until_idle()
    assert all(t.done for t in tickets)
    assert gateway.stats.iterations >= 1  # boundaries crossed the pump
    report = gateway.audit()  # recurses through audit_app
    assert report.passed, [v.to_json() for v in report.violations]
    assert report.checks.get("conservation", 0) >= 1
    app.close()


def test_threaded_clients_through_gateway_conserve_grants():
    app, tree = _app(n=12)
    gateway = Gateway(app, GatewayConfig(batch_size=8)).start()
    errors = []

    def client(idx):
        try:
            for request in _adds(tree, 15):
                gateway.submit(request, client=f"c{idx}").result(timeout=30)
        except Exception as error:
            errors.append(error)

    threads = [threading.Thread(target=client, args=(idx,))
               for idx in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not any(t.is_alive() for t in threads)
    assert not errors, errors
    assert gateway.join(timeout=30)
    gateway.stop()
    assert gateway.stats.settled == 60
    assert gateway.stats.double_settles == 0
    _assert_conserved(app)
    assert gateway.audit().passed
    app.close()
