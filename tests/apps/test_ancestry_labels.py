"""Tests for the dynamic ancestry labeling (Corollary 5.7)."""

import math
import random

from repro import DynamicTree, RequestKind
from repro.apps import AncestryLabeling
from repro.tree.paths import is_ancestor
from repro.workloads import NodePicker, build_random_tree, random_request


def assert_labels_correct(tree, labeling, rng, samples=30):
    nodes = list(tree.nodes())
    pairs = [(nodes[rng.randrange(len(nodes))],
              nodes[rng.randrange(len(nodes))]) for _ in range(samples)]
    labeling.check_correctness(pairs)


def test_static_labels_answer_all_pairs():
    tree = build_random_tree(50, seed=1)
    labeling = AncestryLabeling(tree)
    for u in tree.nodes():
        for v in tree.nodes():
            assert labeling.query_ancestry(u, v) == is_ancestor(u, v)


def test_labels_survive_leaf_and_internal_deletions():
    tree = build_random_tree(80, seed=2)
    labeling = AncestryLabeling(tree)
    rng = random.Random(3)
    picker = NodePicker(tree)
    mix = {RequestKind.REMOVE_LEAF: 0.6, RequestKind.REMOVE_INTERNAL: 0.4}
    for _ in range(60):
        request = random_request(tree, rng, mix=mix, picker=picker)
        if request.kind is RequestKind.REMOVE_LEAF:
            tree.remove_leaf(request.node)
        elif request.kind is RequestKind.REMOVE_INTERNAL:
            tree.remove_internal(request.node)
        assert_labels_correct(tree, labeling, rng)
    picker.detach()


def test_labels_correct_under_full_churn():
    tree = build_random_tree(40, seed=4)
    labeling = AncestryLabeling(tree)
    rng = random.Random(5)
    picker = NodePicker(tree)
    for _ in range(200):
        request = random_request(tree, rng, picker=picker)
        if request.kind is RequestKind.PLAIN:
            continue
        if request.kind is RequestKind.ADD_LEAF:
            tree.add_leaf(request.node)
        elif request.kind is RequestKind.ADD_INTERNAL:
            tree.add_internal(request.node, request.child)
        elif request.kind is RequestKind.REMOVE_LEAF:
            tree.remove_leaf(request.node)
        else:
            tree.remove_internal(request.node)
        assert_labels_correct(tree, labeling, rng)
    picker.detach()


def test_relabel_keeps_label_bits_logarithmic():
    """Shrink the tree by 10x: label bits must shrink too."""
    tree = build_random_tree(300, seed=6)
    labeling = AncestryLabeling(tree)
    bits_full = labeling.label_bits()
    rng = random.Random(7)
    while tree.size > 25:
        leaves = [n for n in tree.nodes()
                  if n.is_leaf and not n.is_root]
        tree.remove_leaf(leaves[rng.randrange(len(leaves))])
    assert labeling.relabels > 1
    bits_small = labeling.label_bits()
    assert bits_small < bits_full
    assert bits_small <= 2 * (math.log2(tree.size * labeling.slack) + 4)


def test_gap_exhaustion_triggers_relabel():
    tree = DynamicTree()
    labeling = AncestryLabeling(tree, slack=4)
    node = tree.root
    for _ in range(30):  # nested chain exhausts halving gaps
        node = tree.add_leaf(node)
    assert labeling.relabels > 1
    rng = random.Random(8)
    assert_labels_correct(tree, labeling, rng)
