"""Tests for the subtree (super-weight) estimator app (Lemma 5.3)."""

from repro import AppSpec, RequestKind, make_app
from repro.workloads import build_random_tree
from tests.drivers import churn_app


def _build(tree, beta=2.0):
    return make_app(AppSpec("subtree_estimator", params={"beta": beta}),
                    tree=tree)


def test_initial_estimates_are_exact():
    tree = build_random_tree(40, seed=1)
    app = _build(tree)
    for node in tree.nodes():
        assert app.estimate_of(node) == app.true_super_weight(node)
    app.close()


def test_estimates_never_undercount():
    """omega_0 + passed permits >= SW: every addition below v shipped a
    permit through v first."""
    tree = build_random_tree(50, seed=2)
    app = _build(tree)
    mix = {RequestKind.ADD_LEAF: 0.7, RequestKind.REMOVE_LEAF: 0.3}
    def check(step):
        for node in tree.nodes():
            assert (app.estimate_of(node)
                    >= app.true_super_weight(node) / app.beta)
    churn_app(tree, app, steps=150, seed=3, mix=mix, on_step=check)
    app.close()


def test_estimates_stay_within_factor_on_growth():
    """On grow-only workloads the estimate tracks SW within the
    beta-and-parked-packages envelope."""
    tree = build_random_tree(40, seed=4)
    app = _build(tree)
    mix = {RequestKind.ADD_LEAF: 1.0}
    churn_app(tree, app, steps=300, seed=5, mix=mix)
    worst = 1.0
    for node in tree.nodes():
        true_sw = app.true_super_weight(node)
        est = app.estimate_of(node)
        worst = max(worst, est / true_sw, true_sw / est)
    # The paper proves a beta-approximation; parked-but-unconsumed
    # packages can inflate transiently, so allow beta * 2.
    assert worst <= app.beta * 2
    app.close()


def test_root_estimate_tracks_total_size():
    tree = build_random_tree(30, seed=6)
    app = _build(tree)
    mix = {RequestKind.ADD_LEAF: 1.0}
    churn_app(tree, app, steps=200, seed=7, mix=mix)
    assert tree.size == 230
    # SW(root) within the current iteration is at least the live size
    # accrued since the iteration start; the estimate must track it.
    true_root = app.true_super_weight(tree.root)
    est = app.estimate_of(tree.root)
    assert true_root / 2 <= est <= 4 * true_root
    app.close()
