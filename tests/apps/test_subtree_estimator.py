"""Tests for the subtree (super-weight) estimator (Lemma 5.3)."""

import random

from repro import RequestKind
from repro.apps import SubtreeEstimator
from repro.workloads import NodePicker, build_random_tree, random_request


def churn(tree, estimator, steps, seed, mix=None, on_step=None):
    rng = random.Random(seed)
    picker = NodePicker(tree)
    done = 0
    while done < steps:
        request = random_request(tree, rng, mix=mix, picker=picker)
        if request.kind is RequestKind.PLAIN:
            continue
        estimator.submit(request)
        done += 1
        if on_step is not None:
            on_step(done)
    picker.detach()


def test_initial_estimates_are_exact():
    tree = build_random_tree(40, seed=1)
    estimator = SubtreeEstimator(tree, beta=2.0)
    for node in tree.nodes():
        assert estimator.estimate(node) == estimator.true_super_weight(node)


def test_estimates_never_undercount():
    """omega_0 + passed permits >= SW: every addition below v shipped a
    permit through v first."""
    tree = build_random_tree(50, seed=2)
    estimator = SubtreeEstimator(tree, beta=2.0)
    mix = {RequestKind.ADD_LEAF: 0.7, RequestKind.REMOVE_LEAF: 0.3}
    def check(step):
        for node in tree.nodes():
            assert (estimator.estimate(node)
                    >= estimator.true_super_weight(node) / estimator.beta)
    churn(tree, estimator, steps=150, seed=3, mix=mix, on_step=check)


def test_estimates_stay_within_factor_on_growth():
    """On grow-only workloads the estimate tracks SW within the
    beta-and-parked-packages envelope."""
    tree = build_random_tree(40, seed=4)
    estimator = SubtreeEstimator(tree, beta=2.0)
    mix = {RequestKind.ADD_LEAF: 1.0}
    churn(tree, estimator, steps=300, seed=5, mix=mix)
    worst = 1.0
    for node in tree.nodes():
        true_sw = estimator.true_super_weight(node)
        est = estimator.estimate(node)
        worst = max(worst, est / true_sw, true_sw / est)
    # The paper proves a beta-approximation; parked-but-unconsumed
    # packages can inflate transiently, so allow beta * 2.
    assert worst <= estimator.beta * 2


def test_root_estimate_tracks_total_size():
    tree = build_random_tree(30, seed=6)
    estimator = SubtreeEstimator(tree, beta=2.0)
    mix = {RequestKind.ADD_LEAF: 1.0}
    churn(tree, estimator, steps=200, seed=7, mix=mix)
    assert tree.size == 230
    # SW(root) within the current iteration is at least the live size
    # accrued since the iteration start; the estimate must track it.
    true_root = estimator.true_super_weight(tree.root)
    est = estimator.estimate(tree.root)
    assert true_root / 2 <= est <= 4 * true_root
