"""The public API surface and the README quickstart."""

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_quickstart_from_module_docstring():
    from repro import (
        CentralizedController,
        DynamicTree,
        Request,
        RequestKind,
    )
    tree = DynamicTree()
    controller = CentralizedController(tree, m=100, w=20, u=256)
    outcome = controller.handle(Request(RequestKind.ADD_LEAF, tree.root))
    assert outcome.granted and tree.size == 2


def test_subpackages_importable():
    import repro.apps
    import repro.baselines
    import repro.bench
    import repro.core
    import repro.distributed
    import repro.metrics
    import repro.sim
    import repro.tree
    import repro.workloads
    assert repro.apps.SizeEstimationProtocol
    assert repro.distributed.DistributedController
    assert repro.bench.SCENARIOS


def test_batch_api_present_on_all_controllers():
    from repro import (
        AdaptiveController,
        CentralizedController,
        IteratedController,
        TerminatingController,
    )
    from repro.distributed import DistributedController
    for cls in (CentralizedController, IteratedController,
                AdaptiveController, TerminatingController):
        assert callable(getattr(cls, "handle_batch"))
    assert callable(getattr(DistributedController, "submit_batch"))
