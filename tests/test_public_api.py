"""The public API surface and the README quickstart."""

import os
import re

import repro

_README = os.path.join(os.path.dirname(__file__), os.pardir, "README.md")


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_every_export_documented_in_readme_table():
    """The curated ``__all__`` and README's public-API table stay in
    sync: every exported name imports (above) and appears, backticked,
    inside the table section."""
    with open(_README, encoding="utf-8") as handle:
        readme = handle.read()
    match = re.search(r"### Public API table\n(.*?)\n## ", readme,
                      flags=re.S)
    assert match, "README lost its '### Public API table' section"
    table = match.group(1)
    documented = set(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", table))
    missing = [name for name in repro.__all__ if name not in documented]
    assert not missing, (
        f"exports missing from README's public-API table: {missing}")


def test_session_quickstart_from_module_docstring():
    from repro import (
        ControllerSession,
        Request,
        RequestKind,
        SessionConfig,
    )
    session = ControllerSession(
        SessionConfig.of("centralized", m=100, w=20, u=256))
    ticket = session.submit(
        Request(RequestKind.ADD_LEAF, session.tree.root))
    record = ticket.result()
    assert record.granted and session.tree.size == 2


def test_quickstart_from_module_docstring():
    from repro import (
        CentralizedController,
        DynamicTree,
        Request,
        RequestKind,
    )
    tree = DynamicTree()
    controller = CentralizedController(tree, m=100, w=20, u=256)
    outcome = controller.handle(Request(RequestKind.ADD_LEAF, tree.root))
    assert outcome.granted and tree.size == 2


def test_subpackages_importable():
    import repro.apps
    import repro.baselines
    import repro.bench
    import repro.core
    import repro.distributed
    import repro.fleet
    import repro.metrics
    import repro.service
    import repro.sim
    import repro.tree
    import repro.workloads
    assert repro.apps.SizeEstimationApp
    assert repro.fleet.FleetRouter
    assert repro.distributed.DistributedController
    assert repro.bench.SCENARIOS
    assert repro.service.ControllerSession


def test_batch_api_present_on_all_controllers():
    from repro import (
        AdaptiveController,
        CentralizedController,
        IteratedController,
        TerminatingController,
    )
    from repro.distributed import DistributedController
    for cls in (CentralizedController, IteratedController,
                AdaptiveController, TerminatingController):
        assert callable(getattr(cls, "handle_batch"))
    assert callable(getattr(DistributedController, "submit_batch"))
