"""Smoke tests for the ``python -m repro.bench`` experiment runner."""

import json
import os
import subprocess
import sys

import pytest

from repro.bench import (
    SCENARIOS,
    run_ancestry,
    run_batch,
    run_distributed_batch,
    run_scenario_bench,
)


def test_registry_names():
    assert set(SCENARIOS) == {"ancestry", "move_complexity", "batch",
                              "scenario", "scenario_grid",
                              "distributed_batch", "kernel", "session",
                              "apps", "gateway", "profile", "memory",
                              "fleet"}


def test_ancestry_small_sweep_is_exact_and_json():
    result = run_ancestry(sizes=[80, 160], repeats=1)
    json.dumps(result)  # serializable
    assert [row["n"] for row in result["rows"]] == [80, 160]
    for row in result["rows"]:
        assert row["granted"] == row["steps"]
        assert row["engine_ms"] > 0 and row["legacy_ms"] > 0
    assert result["deep_path_speedup"] == result["rows"][-1]["speedup"]


def test_batch_scenario_checks_equivalence():
    result = run_batch(n=120, steps=240, batch_size=16)
    assert result["outcomes_identical"] and result["counters_identical"]
    json.dumps(result)


@pytest.mark.parametrize("controller", ["centralized", "iterated",
                                        "adaptive", "terminating"])
def test_generic_scenario_all_controllers(controller):
    result = run_scenario_bench(controller=controller, n=80, steps=160,
                                batch_size=8)
    assert result["granted"] + result["rejected"] + result["cancelled"] \
        + result["pending"] == 160
    json.dumps(result)


def test_distributed_batch_scenario():
    result = run_distributed_batch(sizes=[60])
    row = result["rows"][0]
    assert row["granted"] == row["requests"]
    json.dumps(result)


def test_gateway_bench_shape_and_audit():
    """A small ``gateway`` run: throughput + latency fields present,
    the breaker cycled, and the full-stack audit is clean.  (Absolute
    throughput is not asserted — the contract under test is shape +
    conservation + the trip/recover cycle.)"""
    from repro.bench import run_gateway
    result = run_gateway(scenario="mixed_flood", seeds="0,1", clients=3,
                         wave=8, batch_size=8, scale=0.4)
    json.dumps(result)
    assert result["passed"] and result["violations"] == 0
    assert result["throughput"]["breaker_trips"] >= 1
    assert result["throughput"]["breaker_recoveries"] >= 1
    assert result["throughput"]["sustained_req_per_s"] > 0
    for cell in result["cells"]:
        stats = cell["stats"]
        assert stats["double_settles"] == 0 and stats["aborted"] == 0
        assert stats["accepted"] == stats["settled"]
        assert cell["latency_wall_ms"]["p99"] >= \
            cell["latency_wall_ms"]["p50"]
        assert cell["fault_stats"].get("stalls", 0) > 0


def test_session_overhead_rejects_eager_batch_flavors():
    """The bench's lazy TreeMirror replay cannot feed engines that
    materialize batches up front; asking for one is a ConfigError, not
    a mid-run KeyError."""
    from repro.bench import run_session_overhead
    from repro.errors import ConfigError
    with pytest.raises(ConfigError, match="synchronous flavours"):
        run_session_overhead(n=60, steps=80, batch_size=16, repeats=1,
                             flavor="distributed")


def test_session_overhead_is_equivalence_checked():
    from repro.bench import run_session_overhead
    result = run_session_overhead(n=100, steps=200, batch_size=16,
                                  repeats=1)
    # Timing on a tiny run is noise; the contract under test is the
    # four-arm outcome/counter equivalence and the document shape.
    assert result["equivalent"] is True
    assert result["granted"] + result["rejected"] + result["cancelled"] \
        + result["pending"] == 200
    assert result["target_pct"] == 5.0
    for key in ("direct_batch_ms", "session_batch_ms",
                "overhead_batch_pct", "overhead_seq_pct",
                "within_target"):
        assert key in result
    json.dumps(result)


def test_apps_bench_shape_and_equivalence():
    """A small ``apps`` run: the seq/batch arms must agree, the grid
    must audit clean, and the document must be JSON-serializable.
    (Timing thresholds are not asserted at this scale — the contract
    under test is equivalence + shape.)"""
    from repro.bench import run_apps
    result = run_apps(apps="size_estimation,name_assignment",
                      sizes=[48, 96], steps_per_node=2, overhead_n=60,
                      overhead_steps=120, batch_size=16, repeats=1,
                      policies="fifo,random", faults="stall=0.05",
                      grid_n=20, grid_steps=40)
    json.dumps(result)
    for row in result["overhead"]["rows"]:
        assert row["equivalent"] is True
    assert result["overhead"]["target_pct"] == 5.0
    for fit in result["complexity"]:
        assert fit["polylog_envelope_held"] is True
        assert fit["log_log_slope"] is not None
    grid = result["grid"]
    # 2 apps x 2 policies x {no faults, stall plan}.
    assert len(grid["cells"]) == 8
    assert grid["passed"] and grid["violations"] == 0
    faulted = [c for c in grid["cells"] if c["faults"] != "none"]
    assert faulted and all("fault_stats" in c for c in faulted)
    # With a stall plan over whole runs, some cell must have stalled.
    assert any(c["fault_stats"].get("stalls", 0) > 0 for c in faulted)


def test_fleet_bench_shape_and_audit():
    """A small ``fleet`` run: every cell audits clean, the 1-shard arm
    is bit-for-bit equivalent to the plain session, the skewed stress
    cells produce cross-shard transfers (including a live reclaim) and
    end in the global reject wave.  (The 3x-at-4-shards bar is only
    asserted when a 4-shard cell runs — this scaled run stops at 2.)"""
    from repro.bench import run_fleet
    result = run_fleet(shards="1,2", steps=200, clients=32)
    json.dumps(result)
    assert result["passed"] and result["violations"] == 0
    assert result["equivalence"]["equivalent"] is True
    assert [c["shards"] for c in result["cells"]] == [1, 2]
    for cell in result["cells"]:
        assert cell["audit_passed"] is True
        assert cell["tally"].get("rejected", 0) == 0
        assert cell["sustained_req_per_s"] > 0
        assert cell["makespan_ticks"] <= cell["total_ticks"]
    baseline = result["scaling"][0]
    assert baseline["shards"] == 1 and baseline["speedup"] == 1.0
    stress = result["stress"]
    assert len(stress["tranche_cell"]["transfers"]) >= 1
    assert stress["tranche_cell"]["reject_wave"] is True
    assert stress["tranche_cell"]["granted_total"] == \
        stress["tranche_cell"]["m_total"]
    assert "reclaim" in stress["reclaim_cell"]["transfer_kinds"]


def test_apps_bench_rejects_unknown_names():
    from repro.bench import run_apps
    with pytest.raises(ValueError, match="unknown app"):
        run_apps(apps="definitely_not_an_app")
    with pytest.raises(ValueError, match="unknown policy"):
        run_apps(apps="size_estimation", policies="yolo")


def test_cli_list_and_run(tmp_path):
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    env_cmd = [sys.executable, "-m", "repro.bench"]
    listing = subprocess.run(env_cmd + ["list"], capture_output=True,
                             text=True, check=True, env=env)
    assert "ancestry" in listing.stdout
    out = tmp_path / "bench.json"
    run = subprocess.run(
        env_cmd + ["scenario", "--n", "60", "--steps", "120",
                   "--batch-size", "10", "--out", str(out)],
        capture_output=True, text=True, check=True, env=env,
    )
    document = json.loads(out.read_text())
    assert document["scenario"] == "scenario"
    assert json.loads(run.stdout) == document
