"""Smoke tests for the ``python -m repro.bench`` experiment runner."""

import json
import os
import subprocess
import sys

import pytest

from repro.bench import (
    SCENARIOS,
    run_ancestry,
    run_batch,
    run_distributed_batch,
    run_scenario_bench,
)


def test_registry_names():
    assert set(SCENARIOS) == {"ancestry", "move_complexity", "batch",
                              "scenario", "scenario_grid",
                              "distributed_batch", "kernel", "session"}


def test_ancestry_small_sweep_is_exact_and_json():
    result = run_ancestry(sizes=[80, 160], repeats=1)
    json.dumps(result)  # serializable
    assert [row["n"] for row in result["rows"]] == [80, 160]
    for row in result["rows"]:
        assert row["granted"] == row["steps"]
        assert row["engine_ms"] > 0 and row["legacy_ms"] > 0
    assert result["deep_path_speedup"] == result["rows"][-1]["speedup"]


def test_batch_scenario_checks_equivalence():
    result = run_batch(n=120, steps=240, batch_size=16)
    assert result["outcomes_identical"] and result["counters_identical"]
    json.dumps(result)


@pytest.mark.parametrize("controller", ["centralized", "iterated",
                                        "adaptive", "terminating"])
def test_generic_scenario_all_controllers(controller):
    result = run_scenario_bench(controller=controller, n=80, steps=160,
                                batch_size=8)
    assert result["granted"] + result["rejected"] + result["cancelled"] \
        + result["pending"] == 160
    json.dumps(result)


def test_distributed_batch_scenario():
    result = run_distributed_batch(sizes=[60])
    row = result["rows"][0]
    assert row["granted"] == row["requests"]
    json.dumps(result)


def test_session_overhead_rejects_eager_batch_flavors():
    """The bench's lazy TreeMirror replay cannot feed engines that
    materialize batches up front; asking for one is a ConfigError, not
    a mid-run KeyError."""
    from repro.bench import run_session_overhead
    from repro.errors import ConfigError
    with pytest.raises(ConfigError, match="synchronous flavours"):
        run_session_overhead(n=60, steps=80, batch_size=16, repeats=1,
                             flavor="distributed")


def test_session_overhead_is_equivalence_checked():
    from repro.bench import run_session_overhead
    result = run_session_overhead(n=100, steps=200, batch_size=16,
                                  repeats=1)
    # Timing on a tiny run is noise; the contract under test is the
    # four-arm outcome/counter equivalence and the document shape.
    assert result["equivalent"] is True
    assert result["granted"] + result["rejected"] + result["cancelled"] \
        + result["pending"] == 200
    assert result["target_pct"] == 5.0
    for key in ("direct_batch_ms", "session_batch_ms",
                "overhead_batch_pct", "overhead_seq_pct",
                "within_target"):
        assert key in result
    json.dumps(result)


def test_cli_list_and_run(tmp_path):
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    env_cmd = [sys.executable, "-m", "repro.bench"]
    listing = subprocess.run(env_cmd + ["list"], capture_output=True,
                             text=True, check=True, env=env)
    assert "ancestry" in listing.stdout
    out = tmp_path / "bench.json"
    run = subprocess.run(
        env_cmd + ["scenario", "--n", "60", "--steps", "120",
                   "--batch-size", "10", "--out", str(out)],
        capture_output=True, text=True, check=True, env=env,
    )
    document = json.loads(out.read_text())
    assert document["scenario"] == "scenario"
    assert json.loads(run.stdout) == document
