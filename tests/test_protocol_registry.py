"""ControllerProtocol conformance, the public registry, and detach
idempotency across all eight controller flavours."""

import pytest

from repro import (
    CONTROLLER_FLAVORS,
    ConfigError,
    ControllerProtocol,
    ControllerView,
    ReproError,
    Request,
    RequestKind,
    controller_flavors,
    make_controller,
)
from repro.metrics import audit_controller
from repro.workloads import build_random_tree
from tests.drivers import drive_handle


def _fresh(flavor, n=30, seed=4):
    tree = build_random_tree(n, seed=seed)
    return tree, make_controller(flavor, tree, m=240, w=30, u=480)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
def test_registry_lists_all_eight_flavors():
    assert controller_flavors() == CONTROLLER_FLAVORS
    assert set(CONTROLLER_FLAVORS) == {
        "centralized", "iterated", "adaptive", "terminating",
        "distributed", "distributed_iterated", "distributed_adaptive",
        "trivial",
    }


def test_unknown_flavor_error_lists_registry():
    tree = build_random_tree(5)
    with pytest.raises(ConfigError) as err:
        make_controller("quantum", tree, m=10, w=2, u=20)
    for flavor in CONTROLLER_FLAVORS:
        assert flavor in str(err.value)


def test_missing_u_is_rejected_for_known_u_flavors():
    tree = build_random_tree(5)
    with pytest.raises(ConfigError, match="needs the node bound"):
        make_controller("centralized", tree, m=10, w=2)
    # Adaptive flavours derive U per epoch and need none.
    assert make_controller("adaptive", tree, m=10, w=2) is not None


def test_missing_u_error_names_the_registry():
    tree = build_random_tree(5)
    with pytest.raises(ConfigError) as err:
        make_controller("distributed", tree, m=10, w=2)
    for flavor in CONTROLLER_FLAVORS:
        assert flavor in str(err.value)


def test_config_error_is_one_catchable_type():
    """Both misconfiguration paths raise the *same* exception type,
    and it stays catchable as ValueError (the pre-1.3 contract) and as
    ReproError (the library-wide base)."""
    tree = build_random_tree(5)
    for bad_call in (
        lambda: make_controller("quantum", tree, m=10, w=2, u=20),
        lambda: make_controller("iterated", tree, m=10, w=2),
    ):
        for catch in (ConfigError, ValueError, ReproError):
            with pytest.raises(catch):
                bad_call()


def test_hyphenated_flavor_names_resolve():
    tree = build_random_tree(5)
    controller = make_controller("distributed-iterated", tree,
                                 m=20, w=4, u=40)
    assert controller.introspect().flavor == "distributed-iterated"


def test_kwargs_pass_through():
    from repro.metrics import MoveCounters
    tree = build_random_tree(5)
    counters = MoveCounters()
    controller = make_controller("centralized", tree, m=20, w=4, u=40,
                                 counters=counters)
    assert controller.counters is counters


# ----------------------------------------------------------------------
# Protocol conformance (all eight flavours).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("flavor", CONTROLLER_FLAVORS)
def test_protocol_surface(flavor):
    tree, controller = _fresh(flavor)
    assert isinstance(controller, ControllerProtocol)
    outcome = controller.handle(Request(RequestKind.PLAIN, tree.root))
    assert outcome.granted
    outcomes = controller.handle_batch(
        [Request(RequestKind.PLAIN, tree.root) for _ in range(3)])
    assert len(outcomes) == 3 and all(o.granted for o in outcomes)
    assert isinstance(controller.unused_permits(), int)
    view = controller.introspect()
    assert isinstance(view, ControllerView)
    assert view.granted >= 4
    assert view.m == 240


@pytest.mark.parametrize("flavor", CONTROLLER_FLAVORS)
def test_introspection_audits_green_after_a_run(flavor):
    tree, controller = _fresh(flavor)
    drive_handle(tree, controller.handle, steps=120, seed=9)
    report = audit_controller(controller)
    assert report.passed, (flavor, report.violations[:3])
    assert sum(report.checks.values()) > 0


# ----------------------------------------------------------------------
# detach() idempotency (the regression the protocol mandates).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("flavor", CONTROLLER_FLAVORS)
def test_detach_is_idempotent(flavor):
    tree, controller = _fresh(flavor)
    drive_handle(tree, controller.handle, steps=40, seed=2)
    controller.detach()
    controller.detach()  # second call must be a no-op, never an error
    # The tree keeps working after the detach pair.
    tree.add_leaf(tree.root)


def test_detach_idempotent_after_internal_rollovers():
    """Wrappers that already detached their inner stage (halving
    rollover, termination) must still detach cleanly twice."""
    tree = build_random_tree(20, seed=1)
    controller = make_controller("terminating", tree, m=6, w=2, u=40)
    # Exhaust so the wrapper terminates and detaches its inner engine.
    for _ in range(10):
        controller.handle(Request(RequestKind.PLAIN, tree.root))
    assert controller.terminated
    controller.detach()
    controller.detach()


def test_remove_listener_is_discard_semantics():
    tree = build_random_tree(4)
    listener = object.__new__(type("L", (), {}))
    tree.remove_listener(listener)  # never registered: still a no-op
