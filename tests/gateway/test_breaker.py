"""CircuitBreaker: the CLOSED/OPEN/HALF_OPEN machine, deterministically."""

from repro.gateway import BreakerState, CircuitBreaker
from repro.gateway.breaker import ADMIT, PROBE, SHED


def _breaker(failures=3, cooldown=2, probes=2):
    return CircuitBreaker(failure_threshold=failures, cooldown=cooldown,
                          probe_quota=probes)


def trip(breaker):
    for _ in range(breaker.failure_threshold):
        breaker.record(ok=False)
    assert breaker.state is BreakerState.OPEN


def test_closed_admits_and_successes_reset_the_streak():
    breaker = _breaker(failures=3)
    assert breaker.admit() == ADMIT
    breaker.record(ok=False)
    breaker.record(ok=False)
    breaker.record(ok=True)  # streak broken
    breaker.record(ok=False)
    breaker.record(ok=False)
    assert breaker.state is BreakerState.CLOSED
    breaker.record(ok=False)
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 1


def test_open_sheds_until_cooldown_then_probes():
    breaker = _breaker(cooldown=2, probes=2)
    trip(breaker)
    assert breaker.admit() == SHED
    breaker.on_cycle()
    assert breaker.state is BreakerState.OPEN
    breaker.on_cycle()
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.admit() == PROBE
    assert breaker.admit() == PROBE
    # Quota exhausted: non-probe traffic still sheds.
    assert breaker.admit() == SHED


def test_all_probes_succeeding_closes_and_counts_a_recovery():
    breaker = _breaker(cooldown=1, probes=2)
    trip(breaker)
    breaker.on_cycle()
    assert breaker.admit() == PROBE and breaker.admit() == PROBE
    breaker.record(ok=True, probe=True)
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record(ok=True, probe=True)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.recoveries == 1 and breaker.trips == 1


def test_probe_failure_re_trips_with_fresh_cooldown():
    breaker = _breaker(cooldown=2, probes=2)
    trip(breaker)
    breaker.on_cycle(), breaker.on_cycle()
    assert breaker.admit() == PROBE
    breaker.record(ok=False, probe=True)
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2 and breaker.recoveries == 0
    # The cooldown restarts: one cycle is not enough.
    breaker.on_cycle()
    assert breaker.state is BreakerState.OPEN


def test_straggler_settlements_do_not_disturb_open_or_half_open():
    breaker = _breaker(cooldown=1, probes=1)
    trip(breaker)
    # A request admitted before the trip settles late, as a failure:
    # OPEN is unaffected (no double trip).
    breaker.record(ok=False)
    assert breaker.trips == 1
    breaker.on_cycle()
    assert breaker.state is BreakerState.HALF_OPEN
    # Non-probe stragglers do not resolve HALF_OPEN either way.
    breaker.record(ok=True)
    breaker.record(ok=False)
    assert breaker.state is BreakerState.HALF_OPEN
