"""TokenBucket: explicit-clock refill, burst cap, shed-costs-nothing."""

from repro.gateway import TokenBucket


def test_burst_then_refusal():
    bucket = TokenBucket(rate=1.0, burst=3)
    assert all(bucket.try_take(0.0) for _ in range(3))
    assert not bucket.try_take(0.0)


def test_refill_is_continuous_and_capped():
    bucket = TokenBucket(rate=2.0, burst=4)
    for _ in range(4):
        assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)
    # 0.5 clock units at rate 2 -> exactly one token back.
    assert bucket.try_take(0.5)
    assert not bucket.try_take(0.5)
    # A long idle stretch refills to burst, never beyond.
    assert bucket.available(1000.0) == 4.0


def test_refusal_does_not_drain():
    bucket = TokenBucket(rate=1.0, burst=1)
    assert bucket.try_take(0.0)
    for _ in range(5):
        assert not bucket.try_take(0.1)
    # The failed attempts cost nothing: the refill earned at 1.1 is
    # still whole.
    assert bucket.try_take(1.1)


def test_zero_rate_is_unlimited():
    bucket = TokenBucket(rate=0.0, burst=2)
    assert all(bucket.try_take(0.0) for _ in range(100))
    assert bucket.available(0.0) == 2.0


def test_cost_parameter():
    bucket = TokenBucket(rate=1.0, burst=10)
    assert bucket.try_take(0.0, cost=7.0)
    assert not bucket.try_take(0.0, cost=4.0)
    assert bucket.try_take(0.0, cost=3.0)
