"""Gateway behaviour: admission layers, the pump, stats conservation,
health probes, lifecycle, and both serving modes (worker and asyncio)."""

import asyncio
import threading

import pytest

from repro import (
    AsyncGateway,
    BreakerState,
    Gateway,
    GatewayConfig,
    ControllerSession,
    Request,
    RequestKind,
    SessionConfig,
    SessionVerdict,
    make_app,
    AppSpec,
)
from repro.errors import ConfigError, GatewayError
from repro.distributed.faults import FaultPlan
from repro.metrics.invariants import audit_gateway
from repro.workloads import build_random_tree, get_scenario


class FakeClock:
    """A settable clock for deterministic throttle/latency tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _session(flavor="iterated", tree_n=16, **knobs):
    tree = build_random_tree(tree_n, seed=5)
    knobs.setdefault("max_in_flight", 1 << 20)
    config = SessionConfig.of(flavor, m=400, w=40, u=2000, **knobs)
    return ControllerSession(config, tree=tree)


def _requests(session, count, kind=RequestKind.PLAIN):
    return [Request(kind, session.tree.root) for _ in range(count)]


# ----------------------------------------------------------------------
# Admission and the manual pump.
# ----------------------------------------------------------------------
def test_manual_pump_settles_everything_and_audits_clean():
    session = _session()
    gateway = Gateway(session, GatewayConfig(batch_size=8))
    tickets = gateway.submit_many(_requests(session, 30))
    assert gateway.queue_depth == 30 and gateway.open_requests == 30
    assert gateway.run_until_idle() == 30
    assert gateway.open_requests == 0
    for ticket in tickets:
        assert ticket.done
        record = ticket.result().record
        assert record is not None and ticket.verdict is record.verdict
    stats = gateway.stats
    assert stats.submitted == stats.accepted == stats.settled == 30
    assert stats.batches == 4 and stats.max_batch == 8
    assert stats.double_settles == 0
    report = audit_gateway(gateway)
    assert report.passed, [v.to_json() for v in report.violations]


def test_submit_preserves_client_tags_and_seq_order():
    session = _session()
    gateway = Gateway(session, GatewayConfig())
    a = gateway.submit(_requests(session, 1)[0], client="alice")
    b = gateway.submit(_requests(session, 1)[0], client="bob")
    assert (a.client, b.client) == ("alice", "bob")
    assert b.seq == a.seq + 1


def test_throttle_sheds_with_shed_verdict_and_settles_immediately():
    clock = FakeClock()
    session = _session()
    gateway = Gateway(session, GatewayConfig(rate=1.0, burst=2),
                      clock=clock)
    tickets = gateway.submit_many(_requests(session, 5))
    shed = [t for t in tickets if t.verdict is SessionVerdict.SHED]
    assert len(shed) == 3 and all(t.done and t.record is None for t in shed)
    assert gateway.stats.shed_throttle == 3
    # The bucket refills on the injected clock: two more admissions.
    clock.now = 2.0
    more = gateway.submit_many(_requests(session, 3))
    assert [t.verdict for t in more].count(SessionVerdict.SHED) == 1
    gateway.run_until_idle()
    assert gateway.audit().passed


def test_full_queue_answers_backpressure():
    session = _session()
    gateway = Gateway(session, GatewayConfig(queue_capacity=4, batch_size=4))
    tickets = gateway.submit_many(_requests(session, 6))
    verdicts = [t.verdict for t in tickets]
    assert verdicts[:4] == [None] * 4  # queued, not yet settled
    assert verdicts[4:] == [SessionVerdict.BACKPRESSURE] * 2
    assert gateway.stats.backpressured == 2
    gateway.run_until_idle()
    assert gateway.audit().passed


def test_breaker_open_sheds_at_admission():
    session = _session()
    gateway = Gateway(session,
                      GatewayConfig().with_breaker(latency=1.0, failures=1))
    gateway._breaker.record(ok=False)  # force the trip
    assert gateway.breaker_state is BreakerState.OPEN
    ticket = gateway.submit(_requests(session, 1)[0])
    assert ticket.verdict is SessionVerdict.SHED
    assert gateway.stats.shed_breaker == 1


def test_session_window_narrower_than_batch_is_a_config_error():
    session = _session(max_in_flight=4)
    with pytest.raises(ConfigError, match="admission window"):
        Gateway(session, GatewayConfig(batch_size=8))


def test_bad_gateway_config_raises_eagerly():
    with pytest.raises(ConfigError):
        GatewayConfig(queue_capacity=0)
    with pytest.raises(ConfigError):
        GatewayConfig(rate=-1.0)
    with pytest.raises(ConfigError):
        GatewayConfig(breaker_latency=0.0)


# ----------------------------------------------------------------------
# Breaker trip and recovery through the real stack.
# ----------------------------------------------------------------------
def test_breaker_trips_and_recovers_under_stall_storms():
    spec = get_scenario("hot_spot").scaled(0.25)
    tree = spec.build_tree(seed=3)
    requests = spec.stream(tree, seed=3)
    plan = FaultPlan(stall_prob=0.15, stall_factor=40.0, horizon=50_000.0)
    config = SessionConfig.of("distributed", m=spec.m, w=spec.w, u=spec.u,
                              schedule_policy="fifo", delay_model="burst",
                              faults=plan, max_in_flight=1 << 20)
    session = ControllerSession(config, tree=tree)
    gateway = Gateway(session, GatewayConfig(batch_size=8).with_breaker(
        latency=400.0, failures=3, cooldown=2, probes=2))
    # Interleave submission with pumping so HALF_OPEN sees fresh
    # requests to admit as probes.
    for start in range(0, len(requests), 6):
        gateway.submit_many(requests[start:start + 6])
        gateway.pump()
    gateway.run_until_idle()
    stats = gateway.stats
    assert stats.breaker_trips >= 1
    assert stats.breaker_recoveries >= 1
    assert stats.shed_breaker >= 1 and stats.probes >= 1
    assert gateway.audit().passed


# ----------------------------------------------------------------------
# App backend: iteration boundaries surface in the stats.
# ----------------------------------------------------------------------
def test_gateway_over_app_session_counts_iterations():
    tree = build_random_tree(10, seed=2)
    app = make_app(AppSpec("size_estimation", max_in_flight=1 << 20),
                   tree=tree)
    gateway = Gateway(app, GatewayConfig(batch_size=8))
    tickets = gateway.submit_many(
        [Request(RequestKind.ADD_LEAF, tree.root) for _ in range(30)])
    gateway.run_until_idle()
    assert all(t.done for t in tickets)
    # 30 adds from n=10 force at least one Observation 2.1 rollover,
    # and the pump's drain pass consumed the boundary records.
    assert gateway.stats.iterations >= 1
    assert gateway.audit().passed
    app.close()


# ----------------------------------------------------------------------
# Health probes.
# ----------------------------------------------------------------------
def test_health_report_reflects_queue_and_breaker():
    session = _session()
    gateway = Gateway(session, GatewayConfig(queue_capacity=4))
    assert gateway.health().healthy
    gateway.submit_many(_requests(session, 4))
    probe = gateway.health()
    assert probe.queue_saturated and not probe.healthy
    assert probe.queue_depth == 4 and probe.in_flight == 4
    gateway.run_until_idle()
    probe = gateway.health()
    assert probe.healthy and probe.in_flight == 0
    assert probe.snapshot()["breaker"] == "closed"


def test_health_exposes_fault_stats_from_the_injector():
    plan = FaultPlan(stall_prob=0.5, stall_factor=10.0, horizon=1000.0)
    session = _session("distributed", delay_model="uniform", faults=plan)
    gateway = Gateway(session, GatewayConfig())
    gateway.submit_many(_requests(session, 10, kind=RequestKind.ADD_LEAF))
    gateway.run_until_idle()
    assert set(gateway.health().fault_stats) >= {"stalls"}


# ----------------------------------------------------------------------
# Worker thread and asyncio serving modes.
# ----------------------------------------------------------------------
def test_worker_thread_serves_concurrent_clients():
    session = _session()
    gateway = Gateway(session, GatewayConfig(batch_size=8)).start()
    assert gateway.running
    results = []

    def client(count):
        tickets = [gateway.submit(request)
                   for request in _requests(session, count)]
        results.extend(t.result(timeout=30).verdict for t in tickets)

    threads = [threading.Thread(target=client, args=(20,))
               for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert gateway.join(timeout=30)
    gateway.stop()
    assert len(results) == 80
    assert gateway.stats.settled == 80
    assert gateway.audit().passed


def test_async_gateway_serves_and_closes():
    async def run():
        session = _session()
        async with AsyncGateway(session, GatewayConfig(batch_size=4)) as front:
            tickets = await front.serve(_requests(session, 12), client="aio")
            assert all(t.done for t in tickets)
            assert await front.join(timeout=30)
            return front.gateway

    gateway = asyncio.run(run())
    assert gateway.closed and gateway.stats.settled == 12
    assert gateway.audit().passed


def test_async_gateway_needs_session_or_gateway():
    with pytest.raises(ConfigError):
        AsyncGateway()


# ----------------------------------------------------------------------
# Lifecycle: close aborts, never hangs.
# ----------------------------------------------------------------------
def test_close_aborts_queued_tickets_with_gateway_error():
    session = _session()
    gateway = Gateway(session, GatewayConfig())
    tickets = gateway.submit_many(_requests(session, 5))
    gateway.close()
    for ticket in tickets:
        with pytest.raises(GatewayError, match="closed"):
            ticket.result(timeout=1)
    assert gateway.stats.aborted == 5
    with pytest.raises(GatewayError):
        gateway.submit(_requests(session, 1)[0])
    gateway.close()  # idempotent
    assert gateway.audit().passed  # aborted tickets are conserved too


def test_context_manager_closes():
    session = _session()
    with Gateway(session, GatewayConfig()) as gateway:
        gateway.submit_many(_requests(session, 3))
        gateway.run_until_idle()
    assert gateway.closed
    with pytest.raises(GatewayError):
        gateway.start()
