"""Property test: the gateway over the fast-path engine == reference.

``fast_path=True`` swaps the session's discrete-event scheduler for the
record-heap :class:`~repro.sim.fastsched.FastScheduler`; its contract is
the *same execution*, not a similar one.  That equivalence is already
pinned at the session layer (``tests/distributed/test_fast_path.py``);
this property closes the stack: with a :class:`Gateway` in front —
admission queue, batching, drawn client interleavings — the fast-path
run must still produce identical outcome tallies, identical per-request
verdict sequences, and identical message counters to a gateway over the
reference engine fed the same drawn schedule.
"""

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro import ControllerSession, Gateway, GatewayConfig, SessionConfig
from repro.sim import FastScheduler, Scheduler
from repro.workloads import TreeMirror, get_scenario, request_spec

_SCALE = 0.15
_SPEC_CACHE = {}


def _materialized(name):
    if name not in _SPEC_CACHE:
        spec = get_scenario(name).scaled(_SCALE)
        tree = spec.build_tree(seed=23)
        stream = [request_spec(r) for r in spec.stream(tree, seed=23)]
        _SPEC_CACHE[name] = (spec, stream)
    return _SPEC_CACHE[name]


def _run_arm(spec, stream_specs, drawn, *, fast):
    """One gateway-fronted run; returns the behavioural artefacts the
    equivalence covers plus the scheduler type actually wired."""
    n_clients, ops, batch_size = drawn
    tree = spec.build_tree(seed=23)
    mirror = TreeMirror(tree)
    requests = [mirror.request(s) for s in stream_specs]
    mirror.detach()
    config = SessionConfig.of(
        "distributed", m=spec.m, w=spec.w, u=spec.u, seed=7,
        options={"fast_path": fast}, max_in_flight=1 << 20)
    session = ControllerSession(config, tree=tree)
    gateway = Gateway(session, GatewayConfig(
        queue_capacity=len(requests) + 1, batch_size=batch_size))
    queues = [list(reversed(requests[i::n_clients]))
              for i in range(n_clients)]
    tickets = []
    for op in ops:
        if op == n_clients:
            gateway.pump()
            continue
        if queues[op]:
            tickets.append(gateway.submit(queues[op].pop(),
                                          client=f"c{op}"))
    while any(queues):
        for client, queue in enumerate(queues):
            if queue:
                tickets.append(gateway.submit(queue.pop(),
                                              client=f"c{client}"))
    gateway.run_until_idle()
    report = gateway.audit()
    assert report.passed, [v.to_json() for v in report.violations]
    tickets.sort(key=lambda t: t.seq)
    verdicts = tuple(t.verdict for t in tickets)
    tally = gateway.tally()
    counters = tuple(sorted(session.controller.counters.snapshot().items()))
    scheduler_type = type(session.scheduler)
    session.close()
    return verdicts, tally, counters, scheduler_type


def interleavings():
    return st.tuples(
        st.integers(min_value=2, max_value=4),
        st.lists(st.integers(min_value=0, max_value=4),
                 min_size=1, max_size=50),
        st.integers(min_value=1, max_value=16))


# Regression seeds: pump-heavy (empty batches interleave every submit)
# and a starved-client draw.
@example(scenario="hot_spot", drawn=(2, [2, 0, 2, 1, 2, 2, 0], 1))
@example(scenario="near_exhaustion", drawn=(3, [0] * 20 + [3, 1, 2], 8))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario=st.sampled_from(["hot_spot", "near_exhaustion",
                                 "mixed_flood"]),
       drawn=interleavings())
def test_gateway_fast_path_matches_reference_engine(scenario, drawn):
    n_clients, ops, batch_size = drawn
    drawn = (n_clients, [min(op, n_clients) for op in ops], batch_size)
    spec, stream = _materialized(scenario)
    reference = _run_arm(spec, stream, drawn, fast=False)
    fast = _run_arm(spec, stream, drawn, fast=True)
    assert reference[3] is Scheduler
    assert fast[3] is FastScheduler
    # Verdict sequence (admission order), tallies, message counters:
    # all identical — the gateway adds nothing the engine can observe.
    assert fast[:3] == reference[:3]
