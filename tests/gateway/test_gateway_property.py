"""Property test: N concurrent gateway clients == one serial session.

The gateway's whole contract is that concurrency is *only* about
admission and batching — it must never change what the engine decides.
Hypothesis drives arbitrary client interleavings (which client submits
next, when the pump runs) over catalogue streams; the property is that
the gateway-served run produces **identical outcome tallies** (and,
for the deterministic engines, the identical per-request verdict
sequence) to a plain serial session fed the same requests in the
gateway's admission order — plus **zero audit violations** on both
sides.

Request specs (``request_spec``/``TreeMirror``) make the comparison
honest: the two runs use twin trees built identically, so node ids
resolve the same way, and the serial replay consumes the *admission
order* the drawn interleaving actually produced.
"""

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro import ControllerSession, Gateway, GatewayConfig, SessionConfig
from repro.workloads import TreeMirror, get_scenario, request_spec

#: Small twins of two catalogue scenarios (speed: a property example
#: builds four trees).  Module-level cache — streams are pure.
_SCALE = 0.15
_SPEC_CACHE = {}


def _materialized(name):
    if name not in _SPEC_CACHE:
        spec = get_scenario(name).scaled(_SCALE)
        tree = spec.build_tree(seed=11)
        stream = [request_spec(r) for r in spec.stream(tree, seed=11)]
        _SPEC_CACHE[name] = (spec, stream)
    return _SPEC_CACHE[name]


def _twin(spec, stream_specs, flavor, **knobs):
    """A fresh session over a twin tree plus the mirrored requests."""
    tree = spec.build_tree(seed=11)
    mirror = TreeMirror(tree)
    requests = [mirror.request(s) for s in stream_specs]
    mirror.detach()
    knobs.setdefault("max_in_flight", 1 << 20)
    config = SessionConfig.of(flavor, m=spec.m, w=spec.w, u=spec.u, **knobs)
    return ControllerSession(config, tree=tree), requests


def _gateway_run(session, requests, n_clients, ops, batch_size):
    """Drive the gateway under the drawn interleaving; returns the
    settled tickets in admission (seq) order."""
    gateway = Gateway(session, GatewayConfig(
        queue_capacity=len(requests) + 1, batch_size=batch_size))
    # Client i owns the round-robin slice requests[i::n_clients]; an op
    # value of n_clients means "run one pump cycle now".
    queues = [list(reversed(requests[i::n_clients]))
              for i in range(n_clients)]
    tickets = []
    for op in ops:
        if op == n_clients:
            gateway.pump()
            continue
        if queues[op]:
            tickets.append(gateway.submit(queues[op].pop(),
                                          client=f"c{op}"))
    # Whatever the interleaving left unsubmitted goes in round-robin.
    while any(queues):
        for client, queue in enumerate(queues):
            if queue:
                tickets.append(gateway.submit(queue.pop(),
                                              client=f"c{client}"))
    gateway.run_until_idle()
    report = gateway.audit()
    assert report.passed, [v.to_json() for v in report.violations]
    assert all(t.done for t in tickets)
    return gateway, sorted(tickets, key=lambda t: t.seq)


def interleavings():
    return st.tuples(
        st.integers(min_value=2, max_value=4),
        st.lists(st.integers(min_value=0, max_value=4),
                 min_size=1, max_size=60),
        st.integers(min_value=1, max_value=16))


# Regression seeds: the all-pump draw (empty batches between every
# submission) and a lopsided draw that starves one client for a while.
@example(scenario="hot_spot", flavor="iterated",
         drawn=(2, [2, 2, 2, 0, 2, 1, 2], 1))
@example(scenario="near_exhaustion", flavor="centralized",
         drawn=(4, [4] * 5 + [0, 1, 2, 3] * 6 + [4], 3))
@example(scenario="near_exhaustion", flavor="iterated",
         drawn=(3, [0] * 30 + [3, 1, 2], 16))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenario=st.sampled_from(["hot_spot", "near_exhaustion"]),
       flavor=st.sampled_from(["iterated", "centralized"]),
       drawn=interleavings())
def test_concurrent_clients_match_serial_session(scenario, flavor, drawn):
    n_clients, ops, batch_size = drawn
    # op == n_clients means pump; clamp draws above the client count.
    ops = [min(op, n_clients) for op in ops]
    spec, stream = _materialized(scenario)

    session_g, requests_g = _twin(spec, stream, flavor)
    gateway, tickets = _gateway_run(session_g, requests_g,
                                    n_clients, ops, batch_size)

    # Serial replay in the gateway's admission order, on a fresh twin.
    admitted = [request_spec(t.request) for t in tickets]
    session_s, requests_s = _twin(spec, admitted, flavor)
    serial_records = [session_s.serve(request) for request in requests_s]
    assert session_s.audit().passed

    assert gateway.tally() == session_s.tally()
    gateway_verdicts = [t.verdict for t in tickets]
    serial_verdicts = [r.verdict for r in serial_records]
    assert gateway_verdicts == serial_verdicts
    session_s.close(), session_g.close()


@example(drawn=(2, [2, 0, 1] * 8, 4), policy="adversary", seed=0)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(drawn=interleavings(),
       policy=st.sampled_from(["fifo", "random", "adversary"]),
       seed=st.integers(min_value=0, max_value=3))
def test_distributed_gateway_settles_everything_and_audits(drawn, policy,
                                                           seed):
    """The event-driven engine is timing-sensitive, so the property is
    liveness + invariants, not tally equality: every admitted request
    settles exactly once and the full-stack audit is clean under every
    drawn interleaving x schedule policy."""
    n_clients, ops, batch_size = drawn
    ops = [min(op, n_clients) for op in ops]
    spec, stream = _materialized("hot_spot")
    session, requests = _twin(spec, stream, "distributed",
                              schedule_policy=policy, seed=seed)
    gateway, tickets = _gateway_run(session, requests,
                                    n_clients, ops, batch_size)
    assert len(tickets) == len(requests)
    assert sum(gateway.tally().values()) == len(requests)
    assert gateway.stats.settled == len(requests)
    session.close()
