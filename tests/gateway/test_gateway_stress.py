"""Stress/soak: the gateway under stall storms and churn, with real
threads — never deadlock, never drop, never double-settle.

The regime the circuit breaker exists for: a distributed engine on
bursty delays with stall faults (hops inflated 40x) and churn storms
(topology mutated mid-run), fed by concurrent client threads that
retry shed requests the way real clients do.  Assertions:

* every client thread finishes (joins within its timeout — no
  deadlock, no ticket that never settles);
* every accepted envelope settles exactly once (``accepted ==
  settled``, ``double_settles == 0``, nothing aborted);
* the breaker actually cycled: at least one trip *and* one probe-driven
  recovery, read off :class:`repro.gateway.GatewayStats`;
* the full-stack audit (gateway conservation -> session envelopes ->
  controller safety/waste/locks) is clean afterwards.
"""

import threading
import time

import pytest

from repro import ControllerSession, Gateway, GatewayConfig, SessionConfig
from repro.distributed.faults import FaultPlan
from repro.service.envelopes import SessionVerdict
from repro.workloads import get_scenario

pytestmark = pytest.mark.timeout(120)

#: Per-wait timeout: far above anything the engine needs, far below the
#: suite guard, so a hang fails fast with a usable message.
WAIT = 60.0


def _stressed_gateway(seed):
    spec = get_scenario("mixed_flood").scaled(0.5)
    tree = spec.build_tree(seed=seed)
    requests = spec.stream(tree, seed=seed)
    plan = FaultPlan(stall_prob=0.15, stall_factor=40.0,
                     storms=3, storm_size=6, horizon=80_000.0, seed=seed)
    config = SessionConfig.of("distributed", m=spec.m, w=spec.w, u=spec.u,
                              schedule_policy="fifo", delay_model="burst",
                              faults=plan, max_in_flight=1 << 20)
    session = ControllerSession(config, tree=tree)
    gateway = Gateway(session, GatewayConfig(
        queue_capacity=256, batch_size=8).with_breaker(
            latency=300.0, failures=2, cooldown=2, probes=1))
    return gateway, requests


def test_soak_under_stall_storms_trips_and_recovers():
    gateway, requests = _stressed_gateway(seed=7)
    gateway.start()
    n_clients = 4
    outcomes = []
    failures = []

    def client(idx):
        # Chunked bursts: submit a wave of tickets, then wait on them
        # all.  Bursts keep the pump's batches full, so a stall storm
        # stalls *consecutive* settlements — the trip condition.
        try:
            mine = requests[idx::n_clients]
            for start in range(0, len(mine), 10):
                wave = mine[start:start + 10]
                # Real-client retry loop: a SHED answer (throttle or
                # open breaker) is retried after a beat, which is
                # exactly what keeps HALF_OPEN supplied with probes.
                for _ in range(500):
                    tickets = [gateway.submit(request, client=f"c{idx}")
                               for request in wave]
                    for ticket in tickets:
                        ticket.result(timeout=WAIT)
                    outcomes.extend(
                        t.verdict for t in tickets
                        if t.verdict is not SessionVerdict.SHED)
                    wave = [t.request for t in tickets
                            if t.verdict is SessionVerdict.SHED]
                    if not wave:
                        break
                    time.sleep(0.001)
        except Exception as error:  # surfaced after the joins
            failures.append(error)

    threads = [threading.Thread(target=client, args=(idx,))
               for idx in range(n_clients)]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=WAIT)
    hung = [t for t in threads if t.is_alive()]
    assert not hung, f"deadlocked client threads: {hung}"
    assert not failures, failures
    assert gateway.join(timeout=WAIT), "queue never drained"
    gateway.stop()

    stats = gateway.stats
    # No drops: every request eventually got a non-shed settlement.
    assert len(outcomes) == len(requests)
    # Exactly once: accepted == settled, nothing aborted, no double
    # settles ever attempted.
    assert stats.accepted == stats.settled
    assert stats.aborted == 0 and stats.double_settles == 0
    # The breaker earned its keep: it tripped on the stall storm and
    # recovered through probes (clients retried through the OPEN
    # window, so sheds were observed too).
    assert stats.breaker_trips >= 1, stats.snapshot()
    assert stats.breaker_recoveries >= 1, stats.snapshot()
    assert stats.shed_breaker >= 1
    report = gateway.audit()
    assert report.passed, [v.to_json() for v in report.violations]
    # Soak sanity: the run actually exercised sustained load.
    assert time.monotonic() - start < WAIT


def test_close_mid_storm_aborts_cleanly_instead_of_hanging():
    gateway, requests = _stressed_gateway(seed=9)
    gateway.start()
    tickets = [gateway.submit(request) for request in requests[:200]]
    # Let the pump get some batches in flight, then slam the door.
    deadline = time.monotonic() + WAIT
    while gateway.stats.settled == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    gateway.close()
    settled = aborted = 0
    for ticket in tickets:
        try:
            ticket.result(timeout=WAIT)
            settled += 1
        except Exception:
            aborted += 1
    assert settled + aborted == len(tickets)
    stats = gateway.stats
    assert stats.settled == settled - stats.shed
    assert stats.aborted == aborted
    assert stats.double_settles == 0
    assert gateway.audit().passed
