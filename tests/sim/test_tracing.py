"""Tests for the trace collector."""

from repro.sim import Tracer


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "grant", node=3)
    assert tracer.events == []
    assert tracer.count("grant") == 0


def test_enabled_tracer_records_events():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "grant", node=3)
    tracer.emit(2.0, "reject", node=4)
    tracer.emit(3.0, "grant", node=5)
    assert tracer.count("grant") == 2
    assert [e.details["node"] for e in tracer.with_tag("grant")] == [3, 5]


def test_last_returns_most_recent():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "tick", value=1)
    tracer.emit(2.0, "tick", value=2)
    assert tracer.last("tick").details["value"] == 2
    assert tracer.last("missing") is None


def test_clear_empties_log():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "tick")
    tracer.clear()
    assert tracer.events == []
