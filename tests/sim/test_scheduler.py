"""Tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim import Scheduler


def test_events_run_in_time_order():
    sched = Scheduler()
    seen = []
    sched.schedule(3.0, lambda: seen.append("c"))
    sched.schedule(1.0, lambda: seen.append("a"))
    sched.schedule(2.0, lambda: seen.append("b"))
    sched.run()
    assert seen == ["a", "b", "c"]


def test_ties_break_in_insertion_order():
    sched = Scheduler()
    seen = []
    for tag in ("first", "second", "third"):
        sched.schedule(1.0, lambda t=tag: seen.append(t))
    sched.run()
    assert seen == ["first", "second", "third"]


def test_now_advances_with_events():
    sched = Scheduler()
    times = []
    sched.schedule(2.5, lambda: times.append(sched.now))
    sched.schedule(5.0, lambda: times.append(sched.now))
    sched.run()
    assert times == [2.5, 5.0]
    assert sched.now == 5.0


def test_events_scheduled_from_handlers_run():
    sched = Scheduler()
    seen = []
    def outer():
        seen.append("outer")
        sched.schedule(1.0, lambda: seen.append("inner"))
    sched.schedule(1.0, outer)
    sched.run()
    assert seen == ["outer", "inner"]
    assert sched.now == 2.0


def test_negative_delay_rejected():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sched = Scheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.schedule_at(1.0, lambda: None)


def test_schedule_at_future():
    sched = Scheduler()
    seen = []
    sched.schedule_at(4.0, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [4.0]


def test_cancelled_events_are_skipped():
    sched = Scheduler()
    seen = []
    event = sched.schedule(1.0, lambda: seen.append("cancelled"))
    sched.schedule(2.0, lambda: seen.append("kept"))
    event.cancel()
    sched.run()
    assert seen == ["kept"]


def test_run_until_stops_early():
    sched = Scheduler()
    seen = []
    sched.schedule(1.0, lambda: seen.append(1))
    sched.schedule(10.0, lambda: seen.append(10))
    sched.run(until=5.0)
    assert seen == [1]
    assert sched.pending() == 1
    sched.run()
    assert seen == [1, 10]


def test_step_returns_false_when_empty():
    sched = Scheduler()
    assert sched.step() is False
    sched.schedule(1.0, lambda: None)
    assert sched.step() is True
    assert sched.step() is False


def test_event_budget_catches_livelock():
    sched = Scheduler(max_events=100)
    def loop():
        sched.schedule(1.0, loop)
    sched.schedule(1.0, loop)
    with pytest.raises(SimulationError):
        sched.run()


def test_executed_counter():
    sched = Scheduler()
    for _ in range(5):
        sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.executed == 5


# ----------------------------------------------------------------------
# Live-event accounting: O(1) pending() and idempotent cancel().
# ----------------------------------------------------------------------
def test_pending_counts_live_events():
    sched = Scheduler()
    events = [sched.schedule(1.0, lambda: None) for _ in range(5)]
    assert sched.pending() == 5
    events[0].cancel()
    events[3].cancel()
    assert sched.pending() == 3
    sched.run()
    assert sched.pending() == 0
    assert sched.executed == 3


def test_double_cancel_is_idempotent():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    event.cancel()
    assert sched.pending() == 1  # not driven negative by repeat cancels
    sched.run()
    assert sched.pending() == 0
    assert sched.executed == 1


def test_cancel_after_execution_is_a_noop():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    sched.step()  # runs ``event``
    event.cancel()
    event.cancel()
    assert sched.pending() == 1
    sched.run()
    assert sched.executed == 2


def test_cancel_after_pop_does_not_double_decrement():
    """Regression: an event that cancels *itself* from its own callback
    has already been popped and counted as consumed — the late cancel
    must not decrement the live counter a second time."""
    sched = Scheduler()
    holder = {}

    def fire():
        holder["event"].cancel()

    holder["event"] = sched.schedule(1.0, fire)
    sched.schedule(2.0, lambda: None)
    sched.step()
    assert sched.pending() == 1  # not driven to 0 by the self-cancel
    sched.run()
    assert sched.pending() == 0
    assert sched.executed == 2


def test_cancel_hook_is_shared_across_events():
    """The live-event bookkeeping hook is bound once per scheduler, not
    allocated per schedule() call — and stays correct for every event."""
    sched = Scheduler()
    first = sched.schedule(1.0, lambda: None)
    second = sched.schedule(2.0, lambda: None)
    assert first._canceller is second._canceller
    first.cancel()
    second.cancel()
    assert sched.pending() == 0


def test_pending_is_constant_time():
    """pending() must not scan the queue: cancelling from within a large
    backlog keeps the count exact without touching the heap."""
    sched = Scheduler()
    events = [sched.schedule(float(i % 7), lambda: None)
              for i in range(1000)]
    for event in events[::2]:
        event.cancel()
    for event in events[::4]:  # half of these are second cancels
        event.cancel()
    assert sched.pending() == 500
