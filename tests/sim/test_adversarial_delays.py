"""The adversarial delay models: per-edge jitter and burst stalls."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    DELAY_MODELS,
    BurstStallDelay,
    PerEdgeJitterDelay,
    UnitDelay,
    make_delay_model,
)


def test_per_edge_jitter_is_persistent_per_key():
    model = PerEdgeJitterDelay(UnitDelay(), seed=0, slow_fraction=0.5,
                               slow_factor=10.0, jitter=0.0)
    delays = {key: model.sample(key) for key in range(50)}
    # Re-sampling the same key gives the same multiplier (UnitDelay base).
    for key, delay in delays.items():
        assert model.sample(key) == delay
    values = set(delays.values())
    assert values <= {1.0, 10.0}
    assert len(values) == 2  # both fast and slow links exist


def test_per_edge_jitter_without_key_passes_through():
    model = PerEdgeJitterDelay(UnitDelay(), seed=0, slow_fraction=1.0,
                               slow_factor=10.0)
    assert model.sample() == 1.0
    assert model.sample(3) == 10.0


def test_burst_stall_windows():
    model = BurstStallDelay(UnitDelay(), seed=0, period=10, burst=3,
                            factor=5.0)
    values = [model.sample() for _ in range(20)]
    assert values[:7] == [1.0] * 7
    assert values[7:10] == [5.0] * 3
    assert values[10:17] == [1.0] * 7
    assert values[17:20] == [5.0] * 3


def test_split_derives_independent_models():
    base = PerEdgeJitterDelay(UnitDelay(), seed=1, slow_fraction=0.3)
    other = base.split(4)
    assert isinstance(other, PerEdgeJitterDelay)
    burst = BurstStallDelay(UnitDelay(), seed=1).split(4)
    assert isinstance(burst, BurstStallDelay)


def test_invalid_parameters_rejected():
    with pytest.raises(SimulationError):
        PerEdgeJitterDelay(UnitDelay(), slow_fraction=1.5)
    with pytest.raises(SimulationError):
        PerEdgeJitterDelay(UnitDelay(), slow_factor=0.5)
    with pytest.raises(SimulationError):
        BurstStallDelay(UnitDelay(), period=0)
    with pytest.raises(SimulationError):
        BurstStallDelay(UnitDelay(), burst=20, period=10)


def test_registry_builds_every_model():
    for name in DELAY_MODELS:
        model = make_delay_model(name, seed=2)
        for key in (None, 1, 2):
            delay = model.sample(key)
            assert delay > 0
    with pytest.raises(SimulationError):
        make_delay_model("pigeon")
