"""Tests for the message-delay models."""

import pytest

from repro.errors import SimulationError
from repro.sim import HeavyTailDelay, UniformDelay, UnitDelay


def test_unit_delay_is_constant():
    model = UnitDelay()
    assert all(model.sample() == 1.0 for _ in range(10))


def test_uniform_delay_within_bounds():
    model = UniformDelay(seed=3, low=0.25, high=2.0)
    samples = [model.sample() for _ in range(500)]
    assert all(0.25 <= s <= 2.0 for s in samples)
    # Not degenerate.
    assert len(set(samples)) > 100


def test_uniform_delay_deterministic_per_seed():
    a = [UniformDelay(seed=7).sample() for _ in range(20)]
    b = [UniformDelay(seed=7).sample() for _ in range(20)]
    c = [UniformDelay(seed=8).sample() for _ in range(20)]
    assert a == b
    assert a != c


def test_uniform_delay_validates_bounds():
    with pytest.raises(SimulationError):
        UniformDelay(low=0.0, high=1.0)
    with pytest.raises(SimulationError):
        UniformDelay(low=2.0, high=1.0)


def test_heavy_tail_is_positive_and_capped():
    model = HeavyTailDelay(seed=1, shape=1.2, cap=10.0)
    samples = [model.sample() for _ in range(1000)]
    assert all(0 < s <= 10.0 for s in samples)
    # The tail actually produces large values sometimes.
    assert max(samples) > 3.0


def test_heavy_tail_validates_parameters():
    with pytest.raises(SimulationError):
        HeavyTailDelay(shape=0)
    with pytest.raises(SimulationError):
        HeavyTailDelay(cap=-1)


def test_split_produces_independent_deterministic_models():
    base = UniformDelay(seed=5)
    a1 = base.split(1)
    a2 = UniformDelay(seed=5).split(1)
    b = base.split(2)
    series_a1 = [a1.sample() for _ in range(10)]
    series_a2 = [a2.sample() for _ in range(10)]
    series_b = [b.sample() for _ in range(10)]
    assert series_a1 == series_a2
    assert series_a1 != series_b


def test_unit_split_is_unit():
    assert UnitDelay().split(42).sample() == 1.0


def test_heavy_tail_split_deterministic():
    a = HeavyTailDelay(seed=9).split(3)
    b = HeavyTailDelay(seed=9).split(3)
    assert [a.sample() for _ in range(5)] == [b.sample() for _ in range(5)]
