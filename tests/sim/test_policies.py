"""Schedule-policy semantics and the scheduler's policy plumbing."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    SCHEDULE_POLICIES,
    AdversaryPolicy,
    FifoPolicy,
    LifoPolicy,
    RandomPolicy,
    Scheduler,
    make_policy,
)


def _run_tagged(policy, delays):
    """Schedule one tagged event per delay; return execution order."""
    sched = Scheduler(policy=policy)
    seen = []
    for tag, delay in enumerate(delays):
        sched.schedule(delay, lambda t=tag: seen.append(t))
    sched.run()
    return seen


def test_fifo_matches_default_scheduler():
    delays = [3.0, 1.0, 2.0, 1.0, 0.5]
    assert _run_tagged(FifoPolicy(), delays) == _run_tagged(None, delays)


def test_adversary_reverses_fifo_order():
    delays = [3.0, 1.0, 2.0]
    fifo = _run_tagged(FifoPolicy(), delays)
    adversary = _run_tagged(AdversaryPolicy(), delays)
    assert adversary == list(reversed(fifo))


def test_lifo_runs_newest_first():
    assert _run_tagged(LifoPolicy(), [1.0, 1.0, 1.0]) == [2, 1, 0]


def test_lifo_depth_bias_follows_causal_chain():
    """LIFO drives one causal chain to completion before starting the
    next: a chain's freshly scheduled continuation is always newest."""
    sched = Scheduler(policy=LifoPolicy())
    seen = []

    def chain(name, hops):
        seen.append((name, hops))
        if hops > 1:
            sched.schedule(1.0, lambda: chain(name, hops - 1))

    sched.schedule(1.0, lambda: chain("a", 3))
    sched.schedule(1.0, lambda: chain("b", 3))
    sched.run()
    # "b" was scheduled last, so its whole chain runs before "a" starts.
    assert seen == [("b", 3), ("b", 2), ("b", 1), ("a", 3), ("a", 2),
                    ("a", 1)]


def test_random_policy_is_seed_deterministic():
    delays = [1.0] * 12
    first = _run_tagged(RandomPolicy(seed=7), delays)
    second = _run_tagged(RandomPolicy(seed=7), delays)
    other = _run_tagged(RandomPolicy(seed=8), delays)
    assert first == second
    assert sorted(first) == list(range(12))
    assert first != other  # 1 in 12! chance of colliding


def test_random_policy_peek_pop_agree():
    policy = RandomPolicy(seed=3)
    sched = Scheduler(policy=policy)
    for _ in range(8):
        sched.schedule(1.0, lambda: None)
    for _ in range(8):
        head = policy.peek()
        assert policy.pop() is head
    assert policy.peek() is None


def test_now_stays_monotone_under_reordering():
    sched = Scheduler(policy=AdversaryPolicy())
    times = []
    for delay in (5.0, 1.0, 3.0):
        sched.schedule(delay, lambda: times.append(sched.now))
    sched.run()
    assert times == sorted(times)
    assert sched.now == 5.0


def test_every_policy_drains_and_preserves_the_event_set():
    delays = [2.0, 1.0, 3.0, 1.0, 2.5, 0.5]
    for name in SCHEDULE_POLICIES:
        order = _run_tagged(make_policy(name, seed=11), delays)
        assert sorted(order) == list(range(len(delays))), name


def test_cancelled_events_skipped_under_every_policy():
    for name in SCHEDULE_POLICIES:
        sched = Scheduler(policy=make_policy(name, seed=5))
        seen = []
        events = [sched.schedule(1.0, lambda t=tag: seen.append(t))
                  for tag in range(6)]
        events[1].cancel()
        events[4].cancel()
        sched.run()
        assert sorted(seen) == [0, 2, 3, 5], name


def test_make_policy_rejects_unknown_name():
    with pytest.raises(SimulationError):
        make_policy("chaos-monkey")


def test_run_until_with_nonfifo_policy():
    sched = Scheduler(policy=AdversaryPolicy())
    seen = []
    sched.schedule(1.0, lambda: seen.append(1))
    sched.schedule(10.0, lambda: seen.append(10))
    # The adversary pops the latest event first, so the time-10 head
    # blocks the run; nothing at all runs before until=5.
    sched.run(until=5.0)
    assert seen == []
    sched.run()
    assert sorted(seen) == [1, 10]
