"""Tests for the FIFO fast-path scheduler (``repro.sim.fastsched``).

The contract under test: a :class:`FastScheduler` executes the identical
callback sequence a FIFO-policy reference :class:`Scheduler` would —
pop order, timestamps, tie-breaks, cancellation semantics — while
exposing the same introspection surface.  The equivalence tests drive
both engines through randomized workloads (including zero-delay chains
scheduled from inside callbacks, the pattern the distributed lock
hand-offs rely on) and compare the full execution logs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim import FastScheduler, Scheduler


def drive_workload(sched, delays, nested_every=5):
    """Schedule one callback per delay (plus a nested zero-delay child
    every ``nested_every`` events) and run to quiescence, logging
    ``(label, now)`` per execution."""
    log = []

    def make(label):
        def fire():
            log.append((label, sched.now))
            if label % nested_every == 0:
                child = label + 100_000
                sched.schedule(0.0, lambda: log.append((child, sched.now)))
        return fire

    for label, delay in enumerate(delays):
        sched.schedule(delay, make(label))
    sched.run()
    return log


@given(st.lists(st.floats(min_value=0.0, max_value=8.0,
                          allow_nan=False, allow_infinity=False),
                min_size=0, max_size=60),
       st.integers(min_value=2, max_value=7))
@settings(max_examples=50, deadline=None)
def test_pop_order_matches_reference_fifo(delays, nested_every):
    # Quantize so timestamp ties actually occur and exercise the
    # (time, seq) tie-break.
    delays = [round(d * 2) / 2 for d in delays]
    reference = drive_workload(Scheduler(), delays, nested_every)
    fast = drive_workload(FastScheduler(), delays, nested_every)
    assert fast == reference


def test_schedule_call_orders_like_schedule():
    """schedule_call records interleave with schedule handles in strict
    (time, seq) order — one global sequence covers both entry points."""
    sched = FastScheduler()
    log = []
    sched.schedule(1.0, lambda: log.append("handle-1"))
    sched.schedule_call(1.0, log.append, "call-1")
    sched.schedule_call(0.5, log.append, "call-0.5")
    sched.schedule(1.0, lambda: log.append("handle-2"))
    sched.run()
    assert log == ["call-0.5", "handle-1", "call-1", "handle-2"]


def test_zero_delay_chain_runs_after_same_stamp_backlog():
    """A zero-delay event scheduled mid-drain gets a later seq, so it
    runs after already-queued events carrying the same stamp — exactly
    the reference FIFO behaviour."""
    sched = FastScheduler()
    log = []
    sched.schedule(1.0, lambda: (log.append("first"),
                                 sched.schedule_call(0.0, log.append,
                                                     "chained")))
    sched.schedule(1.0, lambda: log.append("second"))
    sched.run()
    assert log == ["first", "second", "chained"]


def test_now_advances_and_negative_delay_rejected():
    sched = FastScheduler()
    times = []
    sched.schedule(2.5, lambda: times.append(sched.now))
    sched.schedule_call(5.0, lambda _: times.append(sched.now), None)
    sched.run()
    assert times == [2.5, 5.0]
    assert sched.now == 5.0
    with pytest.raises(SimulationError):
        sched.schedule(-0.1, lambda: None)
    with pytest.raises(SimulationError):
        sched.schedule_call(-0.1, lambda _: None, None)


def test_schedule_at_past_rejected():
    sched = FastScheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.schedule_at(1.0, lambda: None)
    seen = []
    sched.schedule_at(9.0, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [9.0]


# ----------------------------------------------------------------------
# Tombstone cancellation.
# ----------------------------------------------------------------------
def test_cancelled_events_are_skipped_and_accounted():
    sched = FastScheduler()
    seen = []
    events = [sched.schedule(1.0, lambda i=i: seen.append(i))
              for i in range(5)]
    assert sched.pending() == 5
    events[0].cancel()
    events[3].cancel()
    events[3].cancel()  # idempotent
    assert sched.pending() == 3
    sched.run()
    assert seen == [1, 2, 4]
    assert sched.pending() == 0
    assert sched.executed == 3


def test_cancel_after_execution_is_a_noop():
    sched = FastScheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    assert sched.step() is True  # runs ``event``
    event.cancel()
    event.cancel()
    assert sched.pending() == 1
    sched.run()
    assert sched.executed == 2


def test_cancel_from_callback_before_pop():
    """Cancelling a later event from inside an earlier callback leaves
    a tombstone the drain loop skips without counting it."""
    sched = FastScheduler()
    seen = []
    victim = sched.schedule(2.0, lambda: seen.append("victim"))
    sched.schedule(1.0, lambda: (seen.append("killer"), victim.cancel()))
    sched.schedule(3.0, lambda: seen.append("after"))
    sched.run()
    assert seen == ["killer", "after"]
    assert sched.executed == 2
    assert sched.pending() == 0


# ----------------------------------------------------------------------
# Batched draining.
# ----------------------------------------------------------------------
def test_step_batch_respects_budget():
    sched = FastScheduler()
    seen = []
    for i in range(10):
        sched.schedule(float(i), lambda i=i: seen.append(i))
    assert sched.step_batch(4) == 4
    assert seen == [0, 1, 2, 3]
    assert sched.step_batch(100) == 6
    assert seen == list(range(10))
    assert sched.step_batch(1) == 0


def test_tombstones_do_not_consume_budget():
    sched = FastScheduler()
    seen = []
    victims = [sched.schedule(1.0, lambda: seen.append("victim"))
               for _ in range(3)]
    sched.schedule(2.0, lambda: seen.append("live"))
    for victim in victims:
        victim.cancel()
    # Budget 1 must still execute the live event: skipped tombstones
    # don't count against the batch.
    assert sched.step_batch(1) == 1
    assert seen == ["live"]


def test_pump_and_step_surface():
    sched = FastScheduler()
    assert sched.step() is False
    assert sched.pump() is False
    sched.schedule(1.0, lambda: None)
    assert sched.pump() is True
    assert sched.pump() is False


def test_batch_accounting_survives_raising_callback():
    """A callback that raises mid-batch must not corrupt the executed /
    pending counters: the remainder of the queue stays drainable."""
    sched = FastScheduler()
    seen = []
    sched.schedule(1.0, lambda: seen.append("ok"))

    def boom():
        raise RuntimeError("protocol bug")

    sched.schedule(2.0, boom)
    sched.schedule(3.0, lambda: seen.append("tail"))
    with pytest.raises(RuntimeError):
        sched.step_batch()
    assert sched.executed == 2  # "ok" and the raising event both ran
    assert sched.pending() == 1
    sched.run()
    assert seen == ["ok", "tail"]
    assert sched.pending() == 0


def test_event_budget_catches_livelock():
    sched = FastScheduler(max_events=100)

    def loop():
        sched.schedule(1.0, loop)

    sched.schedule(1.0, loop)
    with pytest.raises(SimulationError):
        sched.run()


# ----------------------------------------------------------------------
# Bounded runs.
# ----------------------------------------------------------------------
def test_run_until_stops_at_the_boundary():
    sched = FastScheduler()
    seen = []
    sched.schedule(1.0, lambda: seen.append(1))
    sched.schedule(5.0, lambda: seen.append(5))  # exactly at the bound
    sched.schedule(10.0, lambda: seen.append(10))
    sched.run(until=5.0)
    assert seen == [1, 5]
    assert sched.pending() == 1
    assert sched.now == 5.0
    sched.run()
    assert seen == [1, 5, 10]


def test_run_until_does_not_overshoot_from_nested_schedules():
    """Events scheduled during the bounded run that land past ``until``
    must stay queued, even when the queue head was in range."""
    sched = FastScheduler()
    seen = []

    def fire():
        seen.append("in-range")
        sched.schedule(100.0, lambda: seen.append("far-future"))

    sched.schedule(1.0, fire)
    sched.schedule(2.0, lambda: seen.append("also-in-range"))
    sched.run(until=10.0)
    assert seen == ["in-range", "also-in-range"]
    assert sched.pending() == 1


def test_run_until_skips_head_tombstones():
    sched = FastScheduler()
    seen = []
    victim = sched.schedule(1.0, lambda: seen.append("victim"))
    sched.schedule(2.0, lambda: seen.append("live"))
    victim.cancel()
    sched.run(until=2.0)
    assert seen == ["live"]
    assert sched.pending() == 0


def test_run_until_matches_reference_scheduler():
    rng = random.Random(7)
    delays = [rng.uniform(0.0, 10.0) for _ in range(200)]
    cut = 5.0
    logs = []
    for sched in (Scheduler(), FastScheduler()):
        log = []
        for label, delay in enumerate(delays):
            sched.schedule(delay, lambda l=label: log.append((l, sched.now)))
        sched.run(until=cut)
        log.append(("pending", sched.pending()))
        sched.run()
        logs.append(log)
    assert logs[0] == logs[1]


def test_pending_is_exact_inside_step_batch():
    """Regression: ``pending()`` read from a callback running *inside*
    ``step_batch`` must be exact, not batch-stale.

    The original implementation settled its live-event counter only at
    batch boundaries, so a same-thread reader mid-batch could see up to
    PUMP_BATCH - 1 phantom events.  The fast and reference schedulers
    must report the identical backlog at every execution point, also
    when a callback cancels a future event (the tombstone must leave
    the count immediately) and when it schedules new work.
    """
    rng = random.Random(13)
    delays = [round(rng.uniform(0.0, 4.0) * 2) / 2 for _ in range(120)]
    observed = []
    for make_sched in (Scheduler, FastScheduler):
        sched = make_sched()
        log = []
        handles = {}

        def fire(label, sched=sched, log=log, handles=handles):
            # Cancel a not-yet-run sibling every 7th event: the drop
            # must be visible in pending() immediately.
            if label % 7 == 0:
                victim = handles.get(label + 1)
                if victim is not None and not victim.cancelled:
                    victim.cancel()
            # Spawn nested work every 11th event: the add must be
            # visible immediately too.
            if label % 11 == 0:
                sched.schedule(0.25, lambda: log.append(("child", label,
                                                         sched.pending())))
            log.append((label, sched.now, sched.pending()))

        for label, delay in enumerate(delays):
            handles[label] = sched.schedule(delay, lambda l=label: fire(l))
        # Drain the fast path through step_batch in deliberately lumpy
        # batches so callbacks observe pending() mid-batch at many
        # batch offsets; the reference (no step_batch) steps singly —
        # exactness means the logs agree anyway.
        if isinstance(sched, FastScheduler):
            budget = 1
            while sched.step_batch(budget):
                budget = budget % 17 + 1
        else:
            while sched.step():
                pass
        observed.append(log)
        assert sched.pending() == 0
    assert observed[0] == observed[1]


def test_pending_exact_after_cancel_between_batches():
    sched = FastScheduler()
    keep = sched.schedule(1.0, lambda: None)
    victim = sched.schedule(2.0, lambda: None)
    assert sched.pending() == 2
    victim.cancel()
    assert sched.pending() == 1
    victim.cancel()  # idempotent: no double decrement
    assert sched.pending() == 1
    sched.run()
    assert sched.pending() == 0
    assert not keep.cancelled
