"""Unit tests for the application-level invariant audits."""

from repro.metrics.invariants import audit_app
from repro.protocol import AppView, ControllerView


class _FakeController:
    """Minimal ControllerProtocol stand-in with a tallies-only view."""

    def __init__(self, granted=5, m=10):
        self.granted = granted
        self._m = m

    def introspect(self):
        return ControllerView(flavor="fake", m=self._m, w=2,
                              granted=self.granted, rejected=0)


class _FakeApp:
    def __init__(self, **overrides):
        self.view = AppView(name="fake_app", iterations=3, size=10,
                            grants_banked=7, granted_total=12,
                            controller=_FakeController(), **overrides)

    def app_view(self):
        return self.view


def test_clean_app_passes():
    report = audit_app(_FakeApp())
    assert report.passed
    assert report.checks["conservation"] >= 1
    assert report.checks["safety"] >= 1  # the live engine was audited


def test_missing_app_view_is_a_dispatch_failure():
    report = audit_app(object())
    assert not report.passed
    assert report.violations[0].invariant == "dispatch"


def test_estimate_sandwich_violation():
    app = _FakeApp(estimate=31, beta=2.0)  # 31 vs n=10 breaks beta=2
    report = audit_app(app)
    assert any(v.invariant == "estimate" for v in report.violations)
    app_ok = _FakeApp(estimate=17, beta=2.0)
    assert not [v for v in audit_app(app_ok).violations
                if v.invariant == "estimate"]


def test_degenerate_estimate_is_flagged():
    report = audit_app(_FakeApp(estimate=0, beta=2.0))
    assert any(v.invariant == "estimate" for v in report.violations)


def test_id_uniqueness_range_and_coverage():
    # Duplicate id.
    report = audit_app(_FakeApp(ids=tuple([3] * 10)))
    assert any(v.invariant == "ids" for v in report.violations)
    # Out of the [1, 4n] range.
    report = audit_app(_FakeApp(ids=tuple(range(1, 10)) + (41,)))
    assert any("outside" in v.message for v in report.violations)
    # Fewer ids than nodes (a node lost its name).
    report = audit_app(_FakeApp(ids=tuple(range(1, 10))))
    assert any(v.invariant == "ids" for v in report.violations)
    # Exactly n unique in-range ids: clean.
    report = audit_app(_FakeApp(ids=tuple(range(1, 11))))
    assert not [v for v in report.violations if v.invariant == "ids"]


def test_rollover_conservation_violation():
    app = _FakeApp()
    app.view.grants_banked = 2  # 2 + 5 != 12
    report = audit_app(app)
    assert any(v.invariant == "conservation"
               and "banked" in v.message for v in report.violations)


def test_live_engine_violations_propagate():
    app = _FakeApp()
    app.view.controller = _FakeController(granted=99, m=10)
    app.view.granted_total = 7 + 99
    report = audit_app(app)
    assert any(v.invariant == "safety" for v in report.violations)
