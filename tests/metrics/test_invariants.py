"""Unit tests for the invariant checker.

Two directions: clean runs of every controller flavour must audit
green, and doctored states must trip exactly the invariant they
violate (a checker that cannot fail checks nothing).
"""

from repro import make_controller
from repro.core.centralized import CentralizedController
from repro.core.packages import MobilePackage
from repro.core.requests import Request, RequestKind
from repro.distributed import DistributedController
from repro.metrics import MoveCounters
from repro.metrics.invariants import (
    CounterWatch,
    InvariantReport,
    audit_controller,
    audit_tallies,
)
from repro.workloads import build_random_tree
from tests.drivers import drive_handle


def _violated(report, invariant):
    return [v for v in report.violations if v.invariant == invariant]


# ----------------------------------------------------------------------
# Clean runs audit green (all five flavours).
# ----------------------------------------------------------------------
def test_clean_runs_audit_green():
    makers = [
        ("centralized", dict(m=300, w=60, u=600)),
        ("iterated", dict(m=300, w=8, u=600)),
        ("adaptive", dict(m=300, w=8)),
        ("terminating", dict(m=150, w=40, u=600)),
    ]
    for flavor, knobs in makers:
        tree = build_random_tree(50, seed=2)
        controller = make_controller(flavor, tree, **knobs)
        drive_handle(tree, controller.handle, steps=400, seed=5)
        report = audit_controller(controller)
        assert report.passed, (type(controller).__name__,
                               report.violations[:3])
        assert sum(report.checks.values()) > 0


def test_clean_distributed_run_audits_green():
    tree = build_random_tree(40, seed=3)
    controller = DistributedController(tree, m=400, w=100, u=800)
    nodes = list(tree.nodes())
    requests = [Request(RequestKind.PLAIN, nodes[i % len(nodes)])
                for i in range(60)]
    controller.submit_batch(requests, stagger=0.3)
    report = audit_controller(controller)
    assert report.passed, report.violations[:3]
    assert report.checks.get("locks", 0) > 0
    assert report.checks.get("conservation", 0) >= 1


# ----------------------------------------------------------------------
# Doctored states trip the right invariant.
# ----------------------------------------------------------------------
def test_safety_violation_detected():
    tree = build_random_tree(10, seed=0)
    controller = CentralizedController(tree, m=50, w=10, u=100)
    controller.granted = 51          # beyond M
    controller.storage = 0
    report = audit_controller(controller)
    assert _violated(report, "safety")


def test_waste_violation_detected():
    report = audit_tallies(granted=10, rejected=5, m=100, w=20)
    assert _violated(report, "waste")
    clean = audit_tallies(granted=85, rejected=5, m=100, w=20)
    assert clean.passed


def test_conservation_violation_detected():
    tree = build_random_tree(10, seed=0)
    controller = CentralizedController(tree, m=50, w=10, u=100)
    controller.handle(Request(RequestKind.PLAIN, tree.root))
    controller.storage -= 3          # permits vanish
    report = audit_controller(controller)
    assert _violated(report, "conservation")


def test_package_shape_violation_detected():
    tree = build_random_tree(10, seed=0)
    controller = CentralizedController(tree, m=64, w=10, u=100)
    store = controller.stores.get(tree.root)
    store.mobile.append(MobilePackage(level=2, size=3))  # should be 4*phi
    controller.storage -= 3          # keep conservation clean
    report = audit_controller(controller)
    assert _violated(report, "packages")
    assert not _violated(report, "conservation")


def test_lock_violation_detected():
    tree = build_random_tree(10, seed=0)
    controller = DistributedController(tree, m=50, w=10, u=100)
    outcome = controller.submit_and_run(Request(RequestKind.PLAIN, tree.root))
    assert outcome.granted

    class FakeAgent:
        agent_id = 999
        path = []

        class state:
            value = "climbing"

    controller.boards.get(tree.root).locked_by = FakeAgent()
    report = audit_controller(controller)
    assert _violated(report, "locks")


def test_orphaned_state_on_dead_node_detected():
    tree = build_random_tree(10, seed=0)
    controller = DistributedController(tree, m=50, w=10, u=100)
    leaf = next(n for n in tree.nodes() if not n.children)
    board = controller.boards.get(leaf)
    board.store.static_permits = 1
    controller.storage -= 1
    controller.detach()              # stop the graceful hand-over
    tree.remove_leaf(leaf)
    report = audit_controller(controller)
    assert _violated(report, "locks")


def test_counter_watch_flags_decrease():
    counters = MoveCounters()
    watch = CounterWatch(counters)
    counters.package_moves += 5
    watch.observe()
    counters.package_moves -= 2
    watch.observe()
    assert _violated(watch.report, "monotonicity")


def test_counter_watch_green_on_growth():
    counters = MoveCounters()
    watch = CounterWatch(counters)
    for _ in range(5):
        counters.package_moves += 3
        counters.reject_moves += 1
        watch.observe()
    assert watch.report.passed


def test_report_merge_and_json():
    first = InvariantReport()
    first.expect(True, "safety", "fine")
    second = InvariantReport()
    second.expect(False, "waste", "broken", granted=1)
    first.merge(second)
    assert not first.passed
    document = first.to_json()
    assert document["passed"] is False
    assert document["checks"] == {"safety": 1, "waste": 1}
    assert document["violations"][0]["invariant"] == "waste"


def test_unknown_controller_reported():
    report = audit_controller(object())
    assert _violated(report, "dispatch")
