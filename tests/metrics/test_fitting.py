"""Tests for the bound-fitting helpers."""

import math

import pytest

from repro.metrics.fitting import (
    amortized_series,
    bound_ratio,
    log_log_slope,
    observation_3_4_bound,
    theorem_3_5_bound,
)


def test_bound_ratio():
    assert bound_ratio([2, 4], [1, 2]) == [2.0, 2.0]
    with pytest.raises(ValueError):
        bound_ratio([1], [1, 2])


def test_log_log_slope_recovers_exponent():
    xs = [10, 100, 1000, 10000]
    for exponent in (0.5, 1.0, 2.0):
        ys = [x ** exponent for x in xs]
        assert abs(log_log_slope(xs, ys) - exponent) < 1e-9


def test_log_log_slope_with_polylog_factor_slightly_above_one():
    xs = [2 ** k for k in range(4, 16)]
    ys = [x * math.log2(x) ** 2 for x in xs]
    slope = log_log_slope(xs, ys)
    assert 1.0 < slope < 1.6


def test_log_log_slope_validation():
    with pytest.raises(ValueError):
        log_log_slope([1], [1])
    with pytest.raises(ValueError):
        log_log_slope([5, 5], [1, 2])


def test_amortized_series():
    assert amortized_series([2, 4, 6]) == [2.0, 3.0, 4.0]
    assert amortized_series([]) == []


def test_theorem_bounds_are_monotone_in_size():
    small = theorem_3_5_bound(10, [10] * 5, m=100, w=1)
    large = theorem_3_5_bound(100, [100] * 50, m=100, w=1)
    assert large > small
    assert observation_3_4_bound(100, 100, 1) > observation_3_4_bound(10, 100, 1)
