"""Tests for the cost counters and memory audit."""

from repro.metrics import MemoryAudit, MessageCounters, MoveCounters


def test_move_counters_total_and_merge():
    a = MoveCounters(package_moves=10, relocation_moves=2,
                     reject_moves=3, reset_moves=5)
    assert a.total == 20
    b = MoveCounters(package_moves=1)
    b.merge(a)
    assert b.package_moves == 11
    assert b.total == 21


def test_move_counters_snapshot():
    counters = MoveCounters(package_moves=7)
    snap = counters.snapshot()
    assert snap["package_moves"] == 7
    assert snap["total"] == 7


def test_message_counters():
    counters = MessageCounters(agent_hops=5, reject_messages=2,
                               broadcast_messages=1, relocation_messages=1)
    assert counters.total == 9
    other = MessageCounters()
    other.merge(counters)
    assert other.snapshot() == counters.snapshot()


def test_memory_audit_worst_ratio():
    audit = MemoryAudit()
    audit.record(node_id=1, degree=2, bits=100.0)
    audit.record(node_id=2, degree=0, bits=50.0)
    log_n, log_u = 10.0, 10.0
    # bounds: 2*10 + 1000 + 100 = 1120 and 0 + 1000 + 100 = 1100.
    worst = audit.worst_ratio(log_n, log_u)
    assert abs(worst - max(100 / 1120, 50 / 1100)) < 1e-12
