"""Tests for the AAPS bin-hierarchy reconstruction."""

import pytest

from repro.errors import TopologyError
from repro import DynamicTree, Request, RequestKind
from repro.baselines import AAPSController
from repro.workloads import (
    build_path,
    build_random_tree,
    grow_only_mix,
)
from tests.drivers import drive_handle


def test_grants_on_grow_only_workload():
    tree = build_random_tree(20, seed=1)
    controller = AAPSController(tree, m=500, w=100, u=2000)
    result = drive_handle(tree, controller.handle, steps=300, seed=2,
                          mix=grow_only_mix())
    assert result.granted == 300
    assert controller.granted == 300
    tree.validate()


def test_safety_and_liveness():
    for seed in range(4):
        tree = build_random_tree(10, seed=seed)
        controller = AAPSController(tree, m=50, w=12, u=500)
        drive_handle(tree, controller.handle, steps=200, seed=seed + 5,
                     mix=grow_only_mix())
        assert controller.granted <= 50
        if controller.rejecting:
            assert controller.granted >= 50 - 12


def test_permit_conservation():
    tree = build_random_tree(15, seed=3)
    controller = AAPSController(tree, m=400, w=80, u=1000)
    drive_handle(tree, controller.handle, steps=150, seed=4,
                 mix=grow_only_mix())
    assert controller.granted + controller.unused_permits() == 400


def test_rejects_unsupported_topology_changes():
    tree = DynamicTree()
    leaf = tree.add_leaf(tree.root)
    controller = AAPSController(tree, m=10, w=2, u=50)
    with pytest.raises(TopologyError):
        controller.handle(Request(RequestKind.REMOVE_LEAF, leaf))
    with pytest.raises(TopologyError):
        controller.handle(Request(RequestKind.ADD_INTERNAL, tree.root,
                                  child=leaf))


def test_bin_locality_amortizes_deep_requests():
    """Repeated requests at a deep node must not pay the full depth each
    time (the supervisor chain refills local bins)."""
    tree = build_path(200)
    deep = max(tree.nodes(), key=tree.depth)
    controller = AAPSController(tree, m=10_000, w=5000, u=400)
    costs = []
    for _ in range(20):
        before = controller.counters.package_moves
        controller.handle(Request(RequestKind.PLAIN, deep))
        costs.append(controller.counters.package_moves - before)
    # First request pays the climb; most later ones are (near) free.
    assert costs[0] > 0
    assert sum(costs[1:]) < costs[0] * 4
    assert costs.count(0) > 10
