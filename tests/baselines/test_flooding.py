"""Tests for the flooding (recount-per-change) size estimator."""

from repro import DynamicTree
from repro.baselines import FloodingSizeEstimator


def test_estimate_is_exact_after_every_change():
    tree = DynamicTree()
    estimator = FloodingSizeEstimator(tree)
    a = tree.add_leaf(tree.root)
    assert estimator.estimate_at(tree.root) == 2
    b = tree.add_leaf(a)
    tree.add_internal(a, b)
    assert estimator.estimate_at(a) == 4
    tree.remove_leaf(b)
    assert estimator.estimate_at(tree.root) == 3


def test_cost_is_linear_per_change():
    tree = DynamicTree()
    estimator = FloodingSizeEstimator(tree)
    node = tree.root
    for _ in range(50):
        node = tree.add_leaf(node)
    # Change j happens at size j+1 -> costs 3 * (size_after - 1).
    expected = sum(3 * size for size in range(1, 51))
    assert estimator.counters.broadcast_messages == expected
    assert estimator.changes_seen == 50
