"""Tests for the trivial root-round-trip controller."""

from repro import DynamicTree, OutcomeStatus, Request, RequestKind
from repro.baselines import TrivialController
from repro.workloads import build_path, build_random_tree
from tests.drivers import drive_handle


def test_exact_m_semantics():
    tree = DynamicTree()
    controller = TrivialController(tree, m=10)
    outcomes = [controller.handle(Request(RequestKind.PLAIN, tree.root))
                for _ in range(15)]
    assert sum(1 for o in outcomes if o.granted) == 10
    assert sum(1 for o in outcomes if o.rejected) == 5


def test_cost_is_two_depth_per_request():
    tree = build_path(50)
    deep = max(tree.nodes(), key=tree.depth)
    controller = TrivialController(tree, m=100)
    controller.handle(Request(RequestKind.PLAIN, deep))
    assert controller.counters.package_moves == 2 * 49
    controller.handle(Request(RequestKind.PLAIN, deep))
    assert controller.counters.package_moves == 4 * 49  # no amortization


def test_supports_full_dynamic_model():
    tree = build_random_tree(20, seed=1)
    controller = TrivialController(tree, m=500)
    result = drive_handle(tree, controller.handle, steps=200, seed=2)
    assert result.granted == 200
    tree.validate()


def test_stale_request_cancelled():
    tree = DynamicTree()
    controller = TrivialController(tree, m=10)
    leaf = controller.handle(
        Request(RequestKind.ADD_LEAF, tree.root)).new_node
    controller.handle(Request(RequestKind.REMOVE_LEAF, leaf))
    outcome = controller.handle(Request(RequestKind.REMOVE_LEAF, leaf))
    assert outcome.status is OutcomeStatus.CANCELLED
