"""E6 — Name assignment (Theorem 5.2).

Paper claim: unique ids in [1, 4n] at all times (log n + O(1) bits) at
``O(n0 log^2 n0 + sum_j log^2 n_j)`` messages.  We churn, verify the id
invariants continuously, and report the realized id compactness and the
amortized message cost.
"""

import math
import random

from repro import AppSpec, RequestKind, make_app
from repro.workloads import NodePicker, build_random_tree, random_request

TOPO_MIX = {
    RequestKind.ADD_LEAF: 0.40,
    RequestKind.ADD_INTERNAL: 0.10,
    RequestKind.REMOVE_LEAF: 0.30,
    RequestKind.REMOVE_INTERNAL: 0.20,
}

from _util import emit, format_table


def test_e06_name_assignment(benchmark):
    rows = []
    def sweep():
        for n in (100, 400, 1600):
            tree = build_random_tree(n, seed=n)
            app = make_app(AppSpec("name_assignment"), tree=tree)
            rng = random.Random(n + 1)
            picker = NodePicker(tree)
            for _ in range(3 * n):
                request = random_request(tree, rng, mix=TOPO_MIX,
                                         picker=picker)
                app.serve(request)
                app.check_invariants()
            picker.detach()
            max_id = max(app.id_of(v) for v in tree.nodes())
            id_bits = max_id.bit_length()
            rows.append([n, tree.size, app.iterations_run, max_id,
                         round(max_id / tree.size, 2), id_bits,
                         math.ceil(math.log2(tree.size)) + 2,
                         round(app.counters.total
                               / tree.topology_changes, 1)])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E6  Thm 5.2: name assignment under churn",
        ["n0", "final n", "iters", "max id", "max id / n", "id bits",
         "log n + 2", "msgs/change"],
        rows))
    for row in rows:
        assert row[4] <= 4.0, "ids exceeded the [1, 4n] range"
        assert row[5] <= row[6], "ids need more than log n + O(1) bits"
        assert row[7] <= 14 * math.log2(row[1]) ** 2
