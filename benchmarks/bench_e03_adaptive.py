"""E3 — The unknown-U controller (Theorem 3.5).

Paper claim: without knowing U in advance, move complexity is
``O(n0 log^2 n0 log(M/(W+1)) + sum_j log^2 n_j log(M/(W+1)))``.  We run
churn scenarios of increasing length, evaluate the theorem's RHS from
the recorded ``n_j`` series, and check the measured/bound ratio stays
flat while epochs re-estimate U.
"""

from repro import AdaptiveController
from repro.metrics.fitting import theorem_3_5_bound
from repro.workloads import build_random_tree, grow_only_mix

from _util import drive, emit, format_table


def run_once(steps, seed, mix=None):
    tree = build_random_tree(50, seed=seed)
    controller = AdaptiveController(tree, m=10 * steps + 100, w=50)
    drive(tree, controller.handle, steps=steps, seed=seed + 1, mix=mix)
    bound = theorem_3_5_bound(
        50, tree.size_history, controller.m, controller.w)
    return controller, tree, bound


def test_e03_churn_sweep(benchmark):
    rows, ratio_series = [], []
    def sweep():
        for steps in (250, 500, 1000, 2000, 4000):
            controller, tree, bound = run_once(steps, seed=steps)
            ratio = controller.counters.total / bound
            ratio_series.append(ratio)
            rows.append([steps, tree.topology_changes, tree.size,
                         controller.epochs_run,
                         controller.counters.total, int(bound),
                         round(ratio, 4)])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E3  Thm 3.5: unknown-U controller vs its bound (churn)",
        ["requests", "changes", "final n", "epochs", "moves", "bound",
         "moves/bound"],
        rows))
    assert max(ratio_series) < 1.0
    assert ratio_series[-1] <= 3.0 * ratio_series[0], "ratio drifts upward"


def test_e03_growth_epochs(benchmark):
    """Pure growth doubles U each epoch; epoch count must be O(log n)."""
    import math
    def run():
        tree = build_random_tree(10, seed=9)
        controller = AdaptiveController(tree, m=100_000, w=500)
        drive(tree, controller.handle, steps=4000, seed=10,
              mix=grow_only_mix())
        return controller, tree
    controller, tree = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        "E3b Thm 3.5: epochs under pure growth",
        ["final n", "epochs", "moves"],
        [[tree.size, controller.epochs_run, controller.counters.total]]))
    assert controller.epochs_run <= 4 * math.log2(tree.size)
