"""Shared helpers for the benchmark harness.

Each bench regenerates one experiment of EXPERIMENTS.md: it runs the
workload, prints the result table (and appends it to
``benchmarks/results.txt`` so the table survives pytest's capture), and
asserts the *shape* of the paper's claim — who wins, how ratios scale —
without chasing absolute constants.
"""

import os
import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.workloads import NodePicker, random_request

_RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def drive(tree, handle, steps: int, seed: int = 0,
          mix: Optional[Dict] = None,
          stop_when: Optional[Callable[[], bool]] = None) -> None:
    """Feed ``steps`` random feasible requests to a raw ``handle``
    callable (one picker, one seeded RNG — the suite-wide stream
    discipline; sessions go through ``repro.service.drive_scenario``)."""
    rng = random.Random(seed)
    picker = NodePicker(tree)
    try:
        for _ in range(steps):
            handle(random_request(tree, rng, mix=mix, picker=picker))
            if stop_when is not None and stop_when():
                break
    finally:
        picker.detach()


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [f"== {title} ==", fmt(headers),
             "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def emit(text: str) -> None:
    """Print a table and persist it to benchmarks/results.txt."""
    print("\n" + text)
    with open(_RESULTS_PATH, "a") as handle:
        handle.write(text + "\n\n")


def ratios(measured: Sequence[float], bound: Sequence[float]) -> List[float]:
    return [round(m / b, 4) for m, b in zip(measured, bound)]
