"""E1 — Safety and liveness of the (M,W)-Controller (Lemma 3.2).

Paper claim: at most M permits are granted, and once any request is
rejected at least M - W permits are eventually granted.  We drive the
controller to exhaustion on churn scenarios across a grid of (M, W) and
report granted/rejected totals with the two bounds checked.
"""

import pytest

from repro import IteratedController
from repro.workloads import build_random_tree

from _util import drive, emit, format_table

GRID = [(50, 1), (50, 10), (200, 5), (200, 50), (1000, 100)]


def drive_to_reject(m, w, seed):
    tree = build_random_tree(20, seed=seed)
    controller = IteratedController(tree, m=m, w=w, u=20 + 4 * m)
    drive(tree, controller.handle, steps=6 * m, seed=seed,
          stop_when=lambda: controller.rejecting)
    return controller, None


@pytest.mark.parametrize("m,w", GRID)
def test_e01_safety_liveness(benchmark, m, w):
    controller, _ = benchmark.pedantic(
        lambda: drive_to_reject(m, w, seed=m + w), rounds=1, iterations=1)
    assert controller.granted <= m, "safety violated"
    assert controller.rejecting, "scenario failed to exhaust the budget"
    assert controller.granted >= m - w, "liveness violated"
    benchmark.extra_info.update(
        m=m, w=w, granted=controller.granted, rejected=controller.rejected)


def test_e01_table(benchmark):
    rows = []
    def run_all():
        for m, w in GRID:
            controller, _ = drive_to_reject(m, w, seed=m * 7 + w)
            rows.append([
                m, w, controller.granted, controller.rejected,
                "yes" if controller.granted <= m else "NO",
                "yes" if controller.granted >= m - w else "NO",
            ])
        return rows
    benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(format_table(
        "E1  Lemma 3.2: safety & liveness at exhaustion",
        ["M", "W", "granted", "rejected", "granted<=M", "granted>=M-W"],
        rows))
    assert all(row[4] == "yes" and row[5] == "yes" for row in rows)
