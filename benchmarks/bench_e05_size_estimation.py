"""E5 — Size estimation (Theorem 5.1) vs the flooding baseline.

Paper claim: every node holds a β-approximation of n at all times, at
``O(n0 log^2 n0 + sum_j log^2 n_j)`` messages — i.e. O(log^2 n)
amortized per topological change, versus Theta(n) for recount-per-
change flooding.
"""

import math
import random

from repro import AppSpec, DynamicTree, RequestKind, make_app
from repro.baselines import FloodingSizeEstimator
from repro.workloads import NodePicker, build_random_tree, random_request

from _util import emit, format_table

TOPO_MIX = {
    RequestKind.ADD_LEAF: 0.35,
    RequestKind.ADD_INTERNAL: 0.15,
    RequestKind.REMOVE_LEAF: 0.30,
    RequestKind.REMOVE_INTERNAL: 0.20,
}


def churn_app(tree, app, steps, seed):
    rng = random.Random(seed)
    picker = NodePicker(tree)
    worst = 1.0
    for _ in range(steps):
        request = random_request(tree, rng, mix=TOPO_MIX, picker=picker)
        app.serve(request)
        worst = max(worst, app.check_approximation())
    picker.detach()
    return worst


def test_e05_estimator_vs_flooding(benchmark):
    rows = []
    def sweep():
        for n in (100, 400, 1600):
            seed = n
            tree = build_random_tree(n, seed=seed)
            app = make_app(AppSpec("size_estimation",
                                   params={"beta": 2.0}), tree=tree)
            worst = churn_app(tree, app, steps=4 * n, seed=seed)
            ours_per_change = (app.counters.total
                               / tree.topology_changes)

            tree_f = build_random_tree(n, seed=seed)
            flooding = FloodingSizeEstimator(tree_f)
            rng = random.Random(seed)
            picker = NodePicker(tree_f)
            from repro.core.requests import perform_event
            for _ in range(4 * n):
                request = random_request(tree_f, rng, mix=TOPO_MIX,
                                         picker=picker)
                perform_event(tree_f, request)
            picker.detach()
            flood_per_change = (flooding.counters.total
                                / tree_f.topology_changes)
            rows.append([n, round(worst, 3),
                         round(ours_per_change, 1),
                         round(flood_per_change, 1),
                         round(flood_per_change / ours_per_change, 1),
                         round(12 * math.log2(n) ** 2, 1)])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E5  Thm 5.1: size estimation (beta=2) vs flooding recount",
        ["n", "worst est. ratio", "ours msgs/change",
         "flooding msgs/change", "speedup", "12 log^2 n"],
        rows))
    for row in rows:
        assert row[1] <= 2.0, "beta-approximation violated"
        assert row[2] <= row[5], "amortized cost above polylog envelope"
    # The gap must widen with n (Theta(n) vs polylog).
    speedups = [row[4] for row in rows]
    assert speedups == sorted(speedups)


def test_e05_growth_from_singleton(benchmark):
    """n0 = 1 extreme: iterations double; approximation never breaks."""
    def run():
        tree = DynamicTree()
        app = make_app(AppSpec("size_estimation", params={"beta": 2.0}),
                       tree=tree)
        rng = random.Random(3)
        picker = NodePicker(tree)
        worst = 1.0
        for _ in range(3000):
            request = random_request(
                tree, rng, mix={RequestKind.ADD_LEAF: 1.0}, picker=picker)
            app.serve(request)
            worst = max(worst, app.check_approximation())
        picker.detach()
        return tree, app, worst
    tree, app, worst = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        "E5b growth from n0=1",
        ["final n", "iterations", "worst ratio", "msgs/change"],
        [[tree.size, app.iterations_run, round(worst, 3),
          round(app.counters.total / tree.topology_changes, 1)]]))
    assert worst <= 2.0
