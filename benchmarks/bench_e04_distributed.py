"""E4 — Distributed message complexity (Theorems 4.7 / 4.9).

Paper claims: (a) the distributed controller's message complexity
matches the centralized move complexity asymptotically (the agent
traverses each package route at most four times: climb, Proc, return,
unlock); (b) under the *more general* dynamic model its complexity is
never more than the AAPS controller's under AAPS's restricted
(grow-only) model.  We run identical seeded scenarios through all three
engines.
"""

import random

from repro import CentralizedController
from repro.baselines import AAPSController
from repro.distributed import DistributedController
from repro.workloads import (
    NodePicker,
    build_path,
    build_random_tree,
    grow_only_mix,
    random_request,
)

from _util import emit, format_table


def twin_run(n, steps, m, w, u, seed, mix=None, builder=None):
    builder = builder or (lambda k: build_random_tree(k, seed=seed))
    tree_c, tree_d = builder(n), builder(n)
    central = CentralizedController(tree_c, m=m, w=w, u=u)
    distributed = DistributedController(tree_d, m=m, w=w, u=u)
    rng_c, rng_d = random.Random(seed), random.Random(seed)
    picker_c, picker_d = NodePicker(tree_c), NodePicker(tree_d)
    for _ in range(steps):
        central.handle(random_request(tree_c, rng_c, mix=mix,
                                      picker=picker_c))
        distributed.submit_and_run(random_request(tree_d, rng_d, mix=mix,
                                                  picker=picker_d))
    return central, distributed


def test_e04_distributed_vs_centralized(benchmark):
    rows, ratio_series = [], []
    def sweep():
        for n in (100, 300, 900):
            central, distributed = twin_run(
                n, steps=n, m=6 * n, w=n, u=4 * n, seed=n,
                builder=build_path)
            moves = central.counters.total
            msgs = distributed.counters.total
            ratio = msgs / max(moves, 1)
            ratio_series.append(ratio)
            rows.append([n, central.granted, moves, msgs,
                         round(ratio, 3)])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E4  Thm 4.7: distributed messages vs centralized moves "
        "(same scenario, deep paths)",
        ["n", "granted", "moves (central)", "messages (dist)",
         "msgs/moves"],
        rows))
    # The reduction costs a small constant (4x traversals + overheads),
    # not a growing factor.
    assert max(ratio_series) < 10
    assert ratio_series[-1] <= 2.0 * ratio_series[0]


def test_e04_vs_aaps_on_grow_only(benchmark):
    """On AAPS's own model, our controller is never asymptotically
    worse (the paper: 'never more than the message complexity of the
    more restricted controller')."""
    rows = []
    def sweep():
        for n in (100, 300, 900):
            seed = n + 7
            tree_ours = build_random_tree(n, seed=seed)
            tree_aaps = build_random_tree(n, seed=seed)
            m, w, u = 4 * n, n // 2, 4 * n
            ours = CentralizedController(tree_ours, m=m, w=w, u=u)
            aaps = AAPSController(tree_aaps, m=m, w=w, u=u)
            rng_a, rng_b = random.Random(seed), random.Random(seed)
            picker_a = NodePicker(tree_ours)
            picker_b = NodePicker(tree_aaps)
            for _ in range(2 * n):
                ours.handle(random_request(tree_ours, rng_a,
                                           mix=grow_only_mix(),
                                           picker=picker_a))
                aaps.handle(random_request(tree_aaps, rng_b,
                                           mix=grow_only_mix(),
                                           picker=picker_b))
            rows.append([n, ours.counters.total, aaps.counters.total,
                         round(ours.counters.total
                               / max(aaps.counters.total, 1), 3)])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E4b vs AAPS on grow-only workloads (moves)",
        ["n", "ours", "AAPS", "ours/AAPS"],
        rows))
    # Same ballpark or better; definitely not a growing factor.
    assert all(row[3] < 8 for row in rows)


def test_e04_full_dynamic_model_only_ours(benchmark):
    """The qualitative win: on the general model AAPS cannot run at all;
    ours handles it at polylog amortized cost."""
    def run():
        central, distributed = twin_run(
            200, steps=400, m=2000, w=200, u=2000, seed=11)
        return central, distributed
    central, distributed = benchmark.pedantic(run, rounds=1, iterations=1)
    per_change = distributed.counters.total / max(
        distributed.tree.topology_changes, 1)
    emit(format_table(
        "E4c full dynamic model (insert/delete leaf+internal)",
        ["engine", "messages/moves", "granted", "per topological change"],
        [["centralized", central.counters.total, central.granted,
          round(central.counters.total
                / max(central.tree.topology_changes, 1), 2)],
         ["distributed", distributed.counters.total, distributed.granted,
          round(per_change, 2)]]))
    assert per_change < distributed.tree.size
