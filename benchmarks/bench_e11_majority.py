"""E11 — Majority commitment via size estimation (Section 1.3).

The generalization claim: Bar-Yehuda-Kutten majority commitment ran on
growing trees; layered over the new estimator it also tolerates
departures and internal joins, at the estimator's message cost (polylog
per membership change).
"""

import random

from repro import AppSpec, DynamicTree, make_app

from _util import emit, format_table


def wake_up_scenario(total, leavers, seed):
    tree = DynamicTree()
    protocol = make_app(
        AppSpec("majority_commit", params={"total": total, "beta": 1.5}),
        tree=tree)
    rng = random.Random(seed)
    nodes = [tree.root]
    commit_at = None
    while tree.size < total - 1:
        new = protocol.join(nodes[rng.randrange(len(nodes))])
        if new is not None:
            nodes.append(new)
        # Occasional departures (the generalized model).
        if leavers and rng.random() < 0.08 and tree.size > 3:
            leaf = next((x for x in reversed(nodes)
                         if x.alive and x.is_leaf and not x.is_root), None)
            if leaf is not None:
                protocol.leave(leaf)
                nodes.remove(leaf)
        if commit_at is None and protocol.can_commit():
            commit_at = tree.size
    return tree, protocol, commit_at


def test_e11_majority_commit(benchmark):
    rows = []
    def sweep():
        for total, leavers in ((100, False), (100, True),
                               (1000, False), (1000, True)):
            tree, protocol, commit_at = wake_up_scenario(
                total, leavers, seed=total + int(leavers))
            per_change = (protocol.counters.total
                          / max(tree.topology_changes, 1))
            rows.append([
                total, "yes" if leavers else "no",
                commit_at if commit_at is not None else "-",
                "yes" if protocol.can_commit() else "no",
                round(per_change, 1),
            ])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E11 majority commitment over the size estimator",
        ["universe", "churn", "estimate-certified commit at n",
         "committed", "msgs/change"],
        rows))
    for row in rows:
        # Soundness: never certified below a strict majority.
        if row[2] != "-":
            assert row[2] > row[0] / 2
        assert row[3] == "yes"
        assert row[4] < row[0]
