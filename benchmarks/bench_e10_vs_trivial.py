"""E10 — The controller vs the trivial root-round-trip strawman (§1).

Paper claim: the trivial controller pays Omega(n) messages per request
(Omega(nM) total); the real controller amortizes to polylog per
request.  The gap must therefore *widen linearly* with n.
"""

import math
import random

from repro import CentralizedController, Request, RequestKind
from repro.baselines import TrivialController
from repro.workloads import NodePicker, build_path, random_request

from _util import emit, format_table


def test_e10_crossover_with_depth(benchmark):
    rows, speedups = [], []
    def sweep():
        for n in (100, 400, 1600):
            requests = 4 * n
            tree_a, tree_b = build_path(n), build_path(n)
            ours = CentralizedController(tree_a, m=2 * requests,
                                         w=requests, u=4 * n)
            trivial = TrivialController(tree_b, m=2 * requests)
            rng_a, rng_b = random.Random(n), random.Random(n)
            picker_a, picker_b = NodePicker(tree_a), NodePicker(tree_b)
            mix = {RequestKind.PLAIN: 0.7, RequestKind.ADD_LEAF: 0.3}
            for _ in range(requests):
                ours.handle(random_request(tree_a, rng_a, mix=mix,
                                           picker=picker_a))
                trivial.handle(random_request(tree_b, rng_b, mix=mix,
                                              picker=picker_b))
            speedup = trivial.counters.total / max(ours.counters.total, 1)
            speedups.append(speedup)
            rows.append([n, requests, ours.counters.total,
                         trivial.counters.total, round(speedup, 1)])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E10 ours vs trivial controller on deep paths "
        "(plain-heavy workload)",
        ["n", "requests", "ours (moves)", "trivial (moves)", "speedup"],
        rows))
    assert all(s > 1 for s in speedups), "we should always win"
    # Omega(n) vs polylog: the speedup must grow with n.
    assert speedups == sorted(speedups)
    assert speedups[-1] / speedups[0] > 3


def test_e10_repeated_requests_at_one_node(benchmark):
    """The starkest case: many requests at one deep node — the trivial
    controller pays the depth every time, ours once per phi permits."""
    def run():
        n = 1000
        tree_a, tree_b = build_path(n), build_path(n)
        deep_a = max(tree_a.nodes(), key=tree_a.depth)
        deep_b = max(tree_b.nodes(), key=tree_b.depth)
        requests = 500
        # W large relative to U so that phi > 1 and the static pool
        # amortizes fetches (phi = floor(W / 2U) = 10 here).
        ours = CentralizedController(tree_a, m=80_000, w=40_000, u=2 * n)
        trivial = TrivialController(tree_b, m=80_000)
        for _ in range(requests):
            ours.handle(Request(RequestKind.PLAIN, deep_a))
            trivial.handle(Request(RequestKind.PLAIN, deep_b))
        return ours, trivial
    ours, trivial = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        "E10b 500 requests at one depth-999 node",
        ["engine", "total moves", "moves/request"],
        [["ours", ours.counters.total,
          round(ours.counters.total / 500, 2)],
         ["trivial", trivial.counters.total,
          round(trivial.counters.total / 500, 2)]]))
    assert ours.counters.total * 10 < trivial.counters.total
