"""E7 — Heavy-child decomposition (Lemma 5.3 / Theorem 5.4).

Paper claim: with the subtree estimator (beta = sqrt(3)) driving the mu
pointers, every node has O(log n) light ancestors at all times, under
insertions and deletions of leaves and internal nodes.
"""

import math
import random

from repro import AppSpec, RequestKind, make_app
from repro.workloads import (
    NodePicker,
    build_caterpillar,
    build_random_tree,
    random_request,
)

from _util import emit, format_table

TOPO_MIX = {
    RequestKind.ADD_LEAF: 0.45,
    RequestKind.ADD_INTERNAL: 0.15,
    RequestKind.REMOVE_LEAF: 0.25,
    RequestKind.REMOVE_INTERNAL: 0.15,
}


def test_e07_light_depth_scaling(benchmark):
    rows = []
    def sweep():
        for n in (100, 400, 1600):
            tree = build_random_tree(n, seed=n)
            decomposition = make_app(AppSpec("heavy_child"), tree=tree)
            rng = random.Random(n + 2)
            picker = NodePicker(tree)
            worst = 0
            for step in range(2 * n):
                request = random_request(tree, rng, mix=TOPO_MIX,
                                         picker=picker)
                decomposition.serve(request)
                if step % max(n // 8, 1) == 0:
                    worst = max(worst, decomposition.max_light_depth())
            worst = max(worst, decomposition.max_light_depth())
            picker.detach()
            log_n = math.log2(tree.size)
            rows.append([n, tree.size, worst, round(log_n, 1),
                         round(worst / log_n, 2)])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E7  Thm 5.4: max light ancestors under churn",
        ["n0", "final n", "max light depth", "log2 n", "ratio"],
        rows))
    ratios = [row[4] for row in rows]
    assert all(r <= 6 for r in ratios)
    # O(log n): the ratio must not grow with n.
    assert ratios[-1] <= 2.0 * max(ratios[0], 0.5)


def test_e07_adversarial_caterpillar(benchmark):
    """Caterpillar spines maximize naive light depth; the decomposition
    must keep it logarithmic anyway."""
    def run():
        tree = build_caterpillar(400, legs_per_node=3)
        decomposition = make_app(AppSpec("heavy_child"), tree=tree)
        rng = random.Random(5)
        picker = NodePicker(tree)
        for _ in range(600):
            request = random_request(
                tree, rng, mix={RequestKind.ADD_LEAF: 1.0}, picker=picker)
            decomposition.serve(request)
        picker.detach()
        return tree, decomposition.max_light_depth()
    tree, worst = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = 6 * math.log2(tree.size)
    emit(format_table(
        "E7b caterpillar growth",
        ["final n", "max light depth", "6 log2 n"],
        [[tree.size, worst, round(bound, 1)]]))
    assert worst <= bound
