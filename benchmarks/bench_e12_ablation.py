"""E12 — Ablation: the waste/traffic trade-off behind phi and psi.

Design choice under test: the controller's constants derive from W —
``phi = max(W/2U, 1)`` sets the static-pool (and smallest-package)
size, ``psi`` scales inversely with W.  The paper's construction
predicts a clean trade-off: allowing more waste (larger W) buys larger
local pools and *shorter* amortized package travel, while tiny W forces
near-per-request fetches.  This ablation sweeps W at fixed (M, U) on a
hot-spot workload and reports moves per request, making the mechanism
the proofs rely on directly visible.
"""

from repro import CentralizedController, Request, RequestKind
from repro.workloads import build_path

from _util import emit, format_table


def hot_spot_cost(w):
    n = 600
    tree = build_path(n)
    deep = max(tree.nodes(), key=tree.depth)
    controller = CentralizedController(tree, m=120_000, w=w, u=2 * n)
    requests = 400
    for _ in range(requests):
        controller.handle(Request(RequestKind.PLAIN, deep))
    params = controller.params
    return (controller.counters.total / requests,
            params.phi, params.psi)


def test_e12_waste_traffic_tradeoff(benchmark):
    rows, costs = [], []
    sweep_w = [1, 1_200, 12_000, 60_000, 110_000]
    def sweep():
        for w in sweep_w:
            per_request, phi, psi = hot_spot_cost(w)
            costs.append(per_request)
            rows.append([w, phi, psi, round(per_request, 2)])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E12 ablation: W -> (phi, psi) -> moves/request at a hot node "
        "(M=120k, path n=600)",
        ["W", "phi", "psi", "moves/request"],
        rows))
    # The predicted monotone trade-off: more allowed waste, less traffic.
    assert costs[-1] < costs[0] / 3, "larger pools failed to amortize"
    assert all(a >= b * 0.8 for a, b in zip(costs, costs[1:])), \
        "cost should be (weakly) decreasing in W"
