"""E9 — Dynamic ancestry labeling (Corollary 5.7).

Paper claim: ancestry labels on trees stay correct under controlled
deletions of leaves and internal nodes, with asymptotically optimal
label size (Theta(log n) bits) maintained by estimate-driven relabeling
at O(n0 log^2 n0 + sum log^2 n_j) message cost.
"""

import math
import random

from repro import RequestKind
from repro.apps import AncestryLabeling
from repro.workloads import NodePicker, build_random_tree, random_request

from _util import emit, format_table


def test_e09_labels_under_shrinkage(benchmark):
    rows = []
    def sweep():
        for n in (200, 800, 3200):
            tree = build_random_tree(n, seed=n)
            labeling = AncestryLabeling(tree)
            bits_initial = labeling.label_bits()
            rng = random.Random(n + 4)
            picker = NodePicker(tree)
            mix = {RequestKind.REMOVE_LEAF: 0.6,
                   RequestKind.REMOVE_INTERNAL: 0.4}
            checks = 0
            while tree.size > n // 10:
                request = random_request(tree, rng, mix=mix, picker=picker)
                if request.kind is RequestKind.REMOVE_LEAF:
                    tree.remove_leaf(request.node)
                elif request.kind is RequestKind.REMOVE_INTERNAL:
                    tree.remove_internal(request.node)
                else:
                    continue
                nodes = list(tree.nodes())
                pairs = [(nodes[rng.randrange(len(nodes))],
                          nodes[rng.randrange(len(nodes))])
                         for _ in range(5)]
                labeling.check_correctness(pairs)
                checks += 5
            picker.detach()
            bits_final = labeling.label_bits()
            optimal = 2 * math.ceil(math.log2(tree.size) + 1)
            rows.append([n, tree.size, bits_initial, bits_final,
                         optimal, labeling.relabels, checks])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E9  Cor 5.7: ancestry labels through 10x shrinkage",
        ["n0", "final n", "bits before", "bits after",
         "2(log n + 1)", "relabels", "queries checked"],
        rows))
    for row in rows:
        # Labels shrank with the tree and stay within a constant of the
        # 2 log n information floor.
        assert row[3] < row[2]
        assert row[3] <= row[4] + 2 * math.ceil(math.log2(row[0])) // 2 + 12


def test_e09_amortized_relabel_cost(benchmark):
    def run():
        tree = build_random_tree(500, seed=7)
        labeling = AncestryLabeling(tree)
        rng = random.Random(8)
        picker = NodePicker(tree)
        for _ in range(2000):
            request = random_request(tree, rng, picker=picker)
            if request.kind is RequestKind.PLAIN:
                continue
            from repro.core.requests import perform_event
            perform_event(tree, request)
        picker.detach()
        return tree, labeling
    tree, labeling = benchmark.pedantic(run, rounds=1, iterations=1)
    per_change = labeling.counters.total / tree.topology_changes
    emit(format_table(
        "E9b amortized relabel cost under full churn",
        ["changes", "relabels", "msgs/change", "n"],
        [[tree.topology_changes, labeling.relabels,
          round(per_change, 2), tree.size]]))
    assert per_change < tree.size
