"""E2 — Centralized move complexity (Observation 3.4).

Paper claim: the iterated controller's move complexity is
``O(U log^2 U log(M/(W+1)))``.  We sweep U on deep-path topologies with
churn (the worst regime for package travel), measure total moves, and
check that (a) measured/bound ratios do not grow with U, and (b) the
log-log slope of moves against U stays near 1 (near-linear, no hidden
polynomial).
"""

from repro import IteratedController
from repro.metrics.fitting import log_log_slope, observation_3_4_bound
from repro.workloads import build_path

from _util import drive, emit, format_table

SIZES = [200, 400, 800, 1600, 3200]


def run_once(n):
    tree = build_path(n)
    u = 2 * n
    m, w = 4 * n, n // 4
    controller = IteratedController(tree, m=m, w=w, u=u)
    drive(tree, controller.handle, steps=n, seed=n)
    return controller.counters.total, u, m, w


def test_e02_move_complexity_sweep(benchmark):
    rows, measured, bounds = [], [], []
    def sweep():
        for n in SIZES:
            moves, u, m, w = run_once(n)
            bound = observation_3_4_bound(u, m, w)
            measured.append(moves)
            bounds.append(bound)
            rows.append([n, u, moves, int(bound),
                         round(moves / bound, 4)])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E2  Obs 3.4: moves vs O(U log^2 U log(M/(W+1))) on deep paths",
        ["n", "U", "moves", "bound", "moves/bound"],
        rows))
    # Shape checks: the bound dominates with a stable constant, and the
    # growth is near-linear in U.
    ratios = [m / b for m, b in zip(measured, bounds)]
    assert max(ratios) < 1.0, "constant blew past the bound"
    assert ratios[-1] <= 2.5 * ratios[0], "ratio grows with U"
    slope = log_log_slope(SIZES, measured)
    assert slope < 1.45, f"super-linear move growth (slope {slope:.2f})"


def test_e02_log_factor_in_m_over_w(benchmark):
    """Fix U, sweep M/W: cost must grow (sub-)logarithmically."""
    n = 600
    rows, costs, mw = [], [], []
    def sweep():
        for w in (600, 150, 30, 6, 1):
            tree = build_path(n)
            controller = IteratedController(tree, m=2400, w=w, u=2 * n)
            drive(tree, controller.handle, steps=n, seed=w)
            rows.append([2400, w, controller.counters.total,
                         controller.stages_run])
            costs.append(controller.counters.total)
            mw.append(2400 / (w + 1))
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E2b Obs 3.4: cost growth as M/W increases (fixed U)",
        ["M", "W", "moves", "stages"],
        rows))
    # Shrinking W by 600x should cost far less than 600x more moves —
    # logarithmic growth means a small multiple.
    assert costs[-1] <= 8 * costs[0]
