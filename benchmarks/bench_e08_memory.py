"""E8 — Memory per node (Claim 4.8).

Paper claim: each node v needs ``O(deg(v) log N + log^3 N + log^2 U)``
bits: mobile packages are stored as per-level counts (O(log U) bits per
level, O(log^2 U) total), the merged static pool is one O(log M) =
O(log^3 N) integer, and the agent queue holds at most one O(log N)
agent per child.  We run a concurrent distributed storm, audit every
node's encoded state at its peak, and report the worst measured/bound
ratio.
"""

import math
import random

from repro import RequestKind
from repro.distributed import DistributedController
from repro.metrics import MemoryAudit
from repro.workloads import NodePicker, build_random_tree, random_request

from _util import emit, format_table


def encoded_bits(board, log_n, log_u):
    """Bits to encode one whiteboard per the Claim 4.8 representation."""
    bits = 2.0  # lock flag + reject flag
    levels = {p.level for p in board.store.mobile}
    bits += len(levels) * log_u          # count per occupied level
    if board.store.static_permits:
        bits += 3 * log_n                # one O(log M) integer
    bits += len(board.queue) * log_n     # queued agent records
    return bits


def audit_controller(controller, audit, tree, log_n, log_u):
    for node, board in controller.boards.items():
        if node.alive:
            audit.record(node.node_id, node.child_degree,
                         encoded_bits(board, log_n, log_u))


def test_e08_memory_audit(benchmark):
    rows = []
    def sweep():
        for n in (100, 400, 1600):
            tree = build_random_tree(n, seed=n)
            u = 4 * n
            controller = DistributedController(tree, m=6 * n, w=n, u=u)
            audit = MemoryAudit()
            log_n, log_u = math.log2(2 * n), math.log2(u)
            rng = random.Random(n + 3)
            picker = NodePicker(tree)
            at = 0.0
            outcomes = []
            for _ in range(2 * n):
                request = random_request(tree, rng, picker=picker)
                controller.submit(request, delay=at,
                                  callback=outcomes.append)
                at += 0.25
            # Audit mid-flight (peak queueing) and at quiescence.
            controller.scheduler.run(until=at / 2)
            audit_controller(controller, audit, tree, log_n, log_u)
            controller.run()
            audit_controller(controller, audit, tree, log_n, log_u)
            picker.detach()
            worst = audit.worst_ratio(log_n, log_u)
            rows.append([n, len(audit.samples), round(worst, 4)])
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "E8  Claim 4.8: measured node state vs "
        "deg*logN + log^3 N + log^2 U bits",
        ["n", "samples", "worst measured/bound"],
        rows))
    ratios = [row[2] for row in rows]
    assert all(r <= 1.0 for r in ratios), "memory exceeded the claim's bound"
    assert ratios[-1] <= 2.0 * max(ratios[0], 1e-6), "ratio grows with n"
