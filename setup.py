"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build; this
shim lets ``python setup.py develop`` provide the same editable install.
"""

from setuptools import setup

setup()
