"""P2P overlay churn — the paper's motivating scenario (Section 1.1).

A peer-to-peer overlay dedicated to one topic: peers join (as leaves or
as internal relay nodes) and leave gracefully.  A controller layer
"present[s] to the application a more orderly overlay network, one for
which the number of nodes is known (and can be controlled), nodes are
labeled economically..." — we run exactly that stack in two phases,
each built from one declarative :class:`repro.AppSpec` via
:func:`repro.make_app`:

1. the ``size_estimation`` app keeps a 2-approximation of the overlay
   size at every peer through heavy join/leave churn;
2. the ``name_assignment`` app keeps every peer's id unique and within
   [1, 4n] through further churn.

Both amortize to polylog messages per membership change, and both roll
their per-iteration controllers through the session layer — the same
specs run event-driven by adding ``flavor="distributed"``.

Run:  python examples/p2p_churn.py
"""

import random

from repro import AppSpec, RequestKind, make_app
from repro.workloads import NodePicker, build_random_tree, random_request

CHURN_MIX = {
    RequestKind.ADD_LEAF: 0.40,        # a peer joins at the edge
    RequestKind.ADD_INTERNAL: 0.10,    # a relay splices into a link
    RequestKind.REMOVE_LEAF: 0.30,     # an edge peer departs
    RequestKind.REMOVE_INTERNAL: 0.20,  # a relay departs gracefully
}


def churn(overlay, serve, steps, rng):
    picker = NodePicker(overlay)
    for _ in range(steps):
        serve(random_request(overlay, rng, mix=CHURN_MIX, picker=picker))
    picker.detach()


def main():
    overlay = build_random_tree(200, seed=1)
    rng = random.Random(2)
    print(f"overlay starts with {overlay.size} peers")

    # Phase 1: membership size, known everywhere, within a factor 2.
    sizes = make_app(AppSpec("size_estimation", params={"beta": 2.0}),
                     tree=overlay)
    worst = 1.0
    for epoch in range(4):
        def guarded(request):
            nonlocal worst
            sizes.serve(request)
            worst = max(worst, sizes.check_approximation())
        churn(overlay, guarded, steps=400, rng=rng)
        print(f"  epoch {epoch}: {overlay.size:4d} peers, every peer "
              f"estimates {sizes.estimate_at(overlay.root):4d} "
              f"(worst ratio so far {worst:.3f})")
    changes = overlay.topology_changes
    report = sizes.audit()  # estimate sandwich + controller invariants
    print(f"phase 1: {changes} changes, "
          f"{sizes.counters.total / changes:.1f} msgs/change "
          f"(flooding would pay ~{overlay.size}); "
          f"2-approximation held: {worst <= 2.0}; "
          f"audit passed={report.passed} over {sizes.iterations_run} "
          "iterations")
    sizes.close()

    # Phase 2: compact unique names for routing tables.
    names = make_app(AppSpec("name_assignment"), tree=overlay)
    churn(overlay, names.serve, steps=800, rng=rng)
    names.check_invariants()
    max_id = max(names.id_of(peer) for peer in overlay.nodes())
    print(f"phase 2: {overlay.size} peers named with unique ids in "
          f"[1, {max_id}] (4n = {4 * overlay.size}); "
          f"{names.iterations_run} renaming iterations")
    names.close()
    overlay.validate()
    print("overlay validated OK")


if __name__ == "__main__":
    main()
