"""Bounded resource control: distributed ticket sales.

Section 2.2: "a controller may also control and count any type of
non-topological event (e.g., sales of tickets by different nodes)".
Here a network of box offices sells a global stock of M tickets.  Every
sale is a PLAIN request to the distributed (M,W)-Controller running on
the simulated asynchronous network: no office ever oversells, offices
with steady demand are served from their local static pool (no message
to headquarters per ticket!), and when the stock runs out at most W
tickets are left unsold.

Run:  python examples/ticket_sales.py
"""

import random

from repro import Request, RequestKind
from repro.distributed import DistributedController
from repro.sim.delays import HeavyTailDelay
from repro.workloads import build_random_tree


def main():
    offices = build_random_tree(150, seed=3)
    tickets, waste = 10_000, 1_000
    controller = DistributedController(
        offices, m=tickets, w=waste, u=200,
        delays=HeavyTailDelay(seed=4),   # adversarial network weather
    )

    # Demand: a few hot offices, a long tail of cold ones.
    rng = random.Random(5)
    nodes = list(offices.nodes())
    hot = nodes[:10]
    sold, refused = 0, 0

    def record(outcome):
        nonlocal sold, refused
        if outcome.granted:
            sold += 1
        elif outcome.rejected:
            refused += 1

    at = 0.0
    for _ in range(12_000):
        office = (hot[rng.randrange(len(hot))] if rng.random() < 0.7
                  else nodes[rng.randrange(len(nodes))])
        controller.submit(Request(RequestKind.PLAIN, office),
                          delay=at, callback=record)
        at += 0.05  # overlapping purchases
    controller.run()

    print(f"stock: {tickets} tickets, waste allowance W = {waste}")
    print(f"sold: {sold}, refused: {refused}")
    print(f"never oversold: {sold <= tickets}")
    if refused:
        print(f"liveness (sold >= M - W = {tickets - waste}): "
              f"{sold >= tickets - waste}")
    msgs = controller.counters.total
    print(f"messages: {msgs} ({msgs / 12_000:.2f} per purchase; "
          f"a root round-trip per purchase would cost "
          f"~{2 * sum(offices.depth(n) for n in nodes) / len(nodes):.1f})")


if __name__ == "__main__":
    main()
