"""Bounded resource control: distributed ticket sales.

Section 2.2: "a controller may also control and count any type of
non-topological event (e.g., sales of tickets by different nodes)".
Here a network of box offices sells a global stock of M tickets.  Every
sale is a PLAIN request to the distributed (M,W)-Controller running on
the simulated asynchronous network — wired through the session layer:
one frozen :class:`repro.SessionConfig` describes the engine (flavour,
budget, heavy-tailed delay model), ``submit`` returns non-blocking
tickets, and ``drain()`` streams the settled outcome records.  No
office ever oversells, offices with steady demand are served from
their local static pool (no message to headquarters per ticket!), and
when the stock runs out at most W tickets are left unsold.

Run:  python examples/ticket_sales.py
"""

import random

from repro import ControllerSession, Request, RequestKind, SessionConfig
from repro.workloads import build_random_tree


def main():
    offices = build_random_tree(150, seed=3)
    tickets, waste = 10_000, 1_000
    session = ControllerSession(
        SessionConfig.of("distributed", m=tickets, w=waste, u=200,
                         delay_model="heavytail", seed=4,  # network weather
                         max_in_flight=20_000),
        tree=offices)

    # Demand: a few hot offices, a long tail of cold ones.
    rng = random.Random(5)
    nodes = list(offices.nodes())
    hot = nodes[:10]

    for position in range(12_000):
        office = (hot[rng.randrange(len(hot))] if rng.random() < 0.7
                  else nodes[rng.randrange(len(nodes))])
        session.submit(Request(RequestKind.PLAIN, office),
                       delay=position * 0.05)  # overlapping purchases
    sold = refused = 0
    for record in session.drain():
        if record.granted:
            sold += 1
        elif record.outcome is not None and record.outcome.rejected:
            refused += 1

    print(f"stock: {tickets} tickets, waste allowance W = {waste}")
    print(f"sold: {sold}, refused: {refused}")
    print(f"never oversold: {sold <= tickets}")
    if refused:
        print(f"liveness (sold >= M - W = {tickets - waste}): "
              f"{sold >= tickets - waste}")
    msgs = session.controller.counters.total
    print(f"messages: {msgs} ({msgs / 12_000:.2f} per purchase; "
          f"a root round-trip per purchase would cost "
          f"~{2 * sum(offices.depth(n) for n in nodes) / len(nodes):.1f})")
    report = session.audit()
    print(f"invariant audit passed={report.passed}")
    session.close()


if __name__ == "__main__":
    main()
