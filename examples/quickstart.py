"""Quickstart: an (M,W)-Controller behind a ControllerSession.

Builds a small network, routes every topological change through the
session layer (typed envelopes, admission control, streaming
settlement), exhausts the permit budget, and shows the safety/liveness
guarantee numerically.

Run:  python examples/quickstart.py
"""

from repro import Request, RequestKind, SessionConfig, ControllerSession
from repro.service import drive_scenario
from repro.workloads import build_random_tree


def main():
    # A 20-node network; the budget allows M = 50 more events, of which
    # at most W = 10 may be "wasted" if we ever reject.  Any of the
    # eight registered flavours would serve here — see
    # repro.controller_flavors().
    tree = build_random_tree(20, seed=42)
    session = ControllerSession(
        SessionConfig.of("iterated", m=50, w=10, u=500), tree=tree)

    print(f"initial size: {tree.size} nodes")

    # One explicit request: submit is non-blocking and returns a
    # ticket; result() settles it and yields the full outcome record
    # (verdict, submit/settle ticks, the raw controller outcome).
    ticket = session.submit(Request(RequestKind.ADD_LEAF, tree.root))
    record = ticket.result()
    print(f"explicit add-leaf -> {record.verdict.value}, "
          f"new node {record.outcome.new_node.node_id}, "
          f"latency {record.latency:g} ticks")

    # Drive random churn (adds/removes of leaves and internal nodes,
    # plus plain events) until the budget runs out.
    result = drive_scenario(session, steps=200, seed=7)

    controller = session.controller
    print("\nafter the scenario:")
    print(f"  granted:  {controller.granted}  (<= M = 50: safety)")
    print(f"  rejected: {controller.rejected}")
    if controller.rejecting:
        print(f"  liveness: granted >= M - W = 40 -> "
              f"{controller.granted >= 40}")
    print(f"  session tally: {session.tally()}")
    print(f"  tree size: {tree.size}, "
          f"topological changes: {tree.topology_changes}")
    print(f"  move complexity: {controller.counters.total} "
          f"({controller.counters.snapshot()})")
    tree.validate()
    report = session.audit()  # protocol-based introspection
    print(f"tree validated OK; invariant audit passed={report.passed} "
          f"({sum(report.checks.values())} checks)")
    session.close()
    assert result.granted == controller.granted - 1  # the explicit add


if __name__ == "__main__":
    main()
