"""Quickstart: an (M,W)-Controller guarding a dynamic tree.

Builds a small network, routes every topological change through the
controller, exhausts the permit budget, and shows the safety/liveness
guarantee numerically.

Run:  python examples/quickstart.py
"""

from repro import Request, RequestKind, make_controller
from repro.metrics import audit_controller
from repro.workloads import build_random_tree, run_scenario


def main():
    # A 20-node network; the budget allows M = 50 more events, of which
    # at most W = 10 may be "wasted" if we ever reject.  Any of the
    # eight registered flavours would serve here — see
    # repro.controller_flavors().
    tree = build_random_tree(20, seed=42)
    controller = make_controller("iterated", tree, m=50, w=10, u=500)

    print(f"initial size: {tree.size} nodes")

    # One explicit request: add a leaf below the root.
    outcome = controller.handle(Request(RequestKind.ADD_LEAF, tree.root))
    print(f"explicit add-leaf -> {outcome.status.value}, "
          f"new node {outcome.new_node.node_id}")

    # Drive random churn (adds/removes of leaves and internal nodes,
    # plus plain events) until the budget runs out.
    result = run_scenario(tree, controller.handle, steps=200, seed=7)

    print(f"\nafter the scenario:")
    print(f"  granted:  {controller.granted}  (<= M = 50: safety)")
    print(f"  rejected: {controller.rejected}")
    if controller.rejecting:
        print(f"  liveness: granted >= M - W = 40 -> "
              f"{controller.granted >= 40}")
    print(f"  tree size: {tree.size}, "
          f"topological changes: {tree.topology_changes}")
    print(f"  move complexity: {controller.counters.total} "
          f"({controller.counters.snapshot()})")
    tree.validate()
    report = audit_controller(controller)  # protocol-based introspection
    print(f"tree validated OK; invariant audit passed={report.passed} "
          f"({sum(report.checks.values())} checks)")


if __name__ == "__main__":
    main()
