"""Dynamic tree data structures: heavy-child + ancestry labels.

Section 5.3 / 5.4: on top of the size/subtree estimators, the library
maintains two classic informative structures on a *changing* tree:

* a heavy-child decomposition — every node has O(log n) light
  ancestors, the backbone of dynamic routing and separator schemes;
* interval ancestry labels — any two nodes decide ancestry from their
  labels alone, surviving deletions of leaves and internal nodes.

The decomposition is the ``heavy_child`` app (one declarative
:class:`repro.AppSpec`, controllers rolled through the session layer);
the ancestry labels ride along as the listener-layer
:class:`~repro.apps.AncestryLabeling` structure on the same tree, so
one controller guards the whole stack.  The drain stream makes the
iteration rollovers visible as ``IterationRecord`` events.

Run:  python examples/dynamic_labels.py
"""

import math
import random

from repro import AppSpec, IterationRecord, RequestKind, make_app
from repro.apps import AncestryLabeling
from repro.tree.paths import is_ancestor
from repro.workloads import NodePicker, build_random_tree, random_request


def main():
    tree = build_random_tree(300, seed=6)
    decomposition = make_app(AppSpec("heavy_child"), tree=tree)
    labels = AncestryLabeling(tree)
    rng = random.Random(7)
    picker = NodePicker(tree)

    mix = {
        RequestKind.ADD_LEAF: 0.35,
        RequestKind.ADD_INTERNAL: 0.15,
        RequestKind.REMOVE_LEAF: 0.30,
        RequestKind.REMOVE_INTERNAL: 0.20,
    }
    queries_checked = 0
    boundaries = 0
    for step in range(1200):
        request = random_request(tree, rng, mix=mix, picker=picker)
        decomposition.submit(request)   # non-blocking ticket
        if step % 60 == 59:
            # Drain the queued work; iteration rollovers appear in the
            # stream as IterationRecord boundary events.
            for record in decomposition.drain():
                if isinstance(record, IterationRecord):
                    boundaries += 1
            nodes = list(tree.nodes())
            for _ in range(20):
                u = nodes[rng.randrange(len(nodes))]
                v = nodes[rng.randrange(len(nodes))]
                assert labels.query_ancestry(u, v) == is_ancestor(u, v)
                queries_checked += 1
    decomposition.settle_all()
    picker.detach()

    n = tree.size
    print(f"final tree: {n} nodes after "
          f"{tree.topology_changes} topological changes "
          f"({decomposition.iterations_run} controller iterations, "
          f"{boundaries} observed as stream boundaries)")
    print(f"heavy-child decomposition: max light ancestors = "
          f"{decomposition.max_light_depth()} "
          f"(log2 n = {math.log2(n):.1f})")
    print(f"ancestry labels: {labels.label_bits()} bits/label, "
          f"{labels.relabels} relabels, "
          f"{queries_checked} label-only queries verified")
    report = decomposition.audit()
    print(f"invariant audit passed={report.passed} "
          f"({sum(report.checks.values())} checks)")
    decomposition.close()
    labels.detach()
    tree.validate()
    print("all structures consistent")


if __name__ == "__main__":
    main()
