"""The subtree (super-weight) estimator — Lemma 5.3.

The *super-weight* ``SW(u)`` at time t during iteration i is the number
of descendants of ``u`` (including ``u``) that existed at any point
since iteration i began.  The estimator maintains at each node

    ``omega_tilde(v) = omega_0(v, i) + S(v)``

where ``omega_0`` is the exact descendant count at the iteration start
(one broadcast + upcast) and ``S(v)`` counts the permits that passed
down through ``v`` since — every grant below ``v`` sent its permit
through ``v`` exactly once, so ``S`` tracks subtree growth.

The estimator piggybacks on the size-estimation protocol's controller
via the ``permit_flow_observer`` hook; it adds **zero** extra messages
for monitoring (nodes watch traffic already passing through them), and
the parent-notification messages of the heavy-child layer are counted
there.
"""

import warnings
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.errors import ControllerError
from repro.metrics.counters import MoveCounters
from repro.service.appspec import AppSpec
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode
from repro.apps.size_estimation import (
    SizeEstimationApp,
    SizeEstimationProtocol,
)


class SubtreeEstimatorApp(SizeEstimationApp, TreeListener):
    """β-approximate super-weights behind the app-session API.

    The session-era form of :class:`SubtreeEstimator` (Lemma 5.3): the
    size-estimation iterations run underneath (inherited), and the app
    taps every iteration controller's ``permit_flow_observer`` hook —
    on the synchronous engine *and* on the distributed engine, whose
    agents report each downward package hop — so monitoring still
    costs zero extra messages.  Parameters: ``beta`` (default 2.0).
    """

    name: ClassVar[str] = "subtree_estimator"

    def __init__(self, spec: AppSpec,
                 tree: Optional[DynamicTree] = None) -> None:
        self._omega0: Dict[TreeNode, int] = {}
        self._passed: Dict[TreeNode, int] = {}
        # Ground truth for tests: descendants ever existing this
        # iteration, maintained exactly (analysis-only, costs nothing).
        self._true_sw: Dict[TreeNode, int] = {}
        super().__init__(spec, tree)
        self.tree.add_listener(self)

    # ------------------------------------------------------------------
    # Iteration hooks.
    # ------------------------------------------------------------------
    def _iteration_contract(self, n_i: int
                            ) -> Tuple[int, int, int, Dict[str, Any]]:
        m_i, w_i, u_i, options = super()._iteration_contract(n_i)
        options["permit_flow_observer"] = self._observe_permits
        return m_i, w_i, u_i, options

    def _on_iteration_start(self, n_i: int) -> None:
        super()._on_iteration_start(n_i)
        # One broadcast + upcast delivers every node its exact subtree
        # count at iteration start.
        self.counters.reset_moves += 2 * max(self.tree.size - 1, 0)
        self._omega0.clear()
        self._passed.clear()
        self._true_sw.clear()
        self._compute_subtree_sizes()

    def _compute_subtree_sizes(self) -> None:
        # Post-order accumulation without recursion (deep paths).
        order = list(self.tree.nodes())
        for node in reversed(order):
            total = 1 + sum(self._omega0.get(c, 0) for c in node.children)
            self._omega0[node] = total
            self._true_sw[node] = total

    # ------------------------------------------------------------------
    # Permit-flow monitoring.
    # ------------------------------------------------------------------
    def _observe_permits(self, node: TreeNode, permits: int) -> None:
        self._passed[node] = self._passed.get(node, 0) + permits

    # ------------------------------------------------------------------
    # Public queries (the Lemma 5.3 guarantee).
    # ------------------------------------------------------------------
    def estimate_of(self, node: TreeNode) -> int:
        """``omega_tilde(node)``: the node's super-weight estimate."""
        return self._omega0.get(node, 1) + self._passed.get(node, 0)

    def true_super_weight(self, node: TreeNode) -> int:
        """Exact SW (test oracle; not available to the protocol)."""
        return self._true_sw.get(node, 1)

    # ------------------------------------------------------------------
    # Ground-truth maintenance (test oracle only).
    # ------------------------------------------------------------------
    def _bump_ancestors(self, start: Optional[TreeNode]) -> None:
        current = start
        while current is not None:
            self._true_sw[current] = self._true_sw.get(current, 1) + 1
            current = current.parent

    def on_add_leaf(self, node: TreeNode) -> None:
        self._true_sw[node] = 1
        self._bump_ancestors(node.parent)

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        # See SubtreeEstimator.on_add_internal: the new node inherits
        # only the child's counted history, going forward.
        self._true_sw[node] = 1 + self._true_sw.get(child, 1)
        self._bump_ancestors(parent)

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        self._true_sw.pop(node, None)

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children: List[TreeNode]) -> None:
        self._true_sw.pop(node, None)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent: the tree listener is removed with discard
        semantics, so a second close/detach is a no-op."""
        self.tree.remove_listener(self)
        super().close()


class SubtreeEstimator(TreeListener):
    """β-approximate super-weights on a dynamic tree.

    Construct it *instead of* a bare :class:`SizeEstimationProtocol`:
    it instantiates the size protocol internally and wires itself into
    the permit flow.  Submit topological requests through
    :meth:`submit`.
    """

    def __init__(self, tree: DynamicTree, beta: float = 2.0,
                 counters: Optional[MoveCounters] = None):
        warnings.warn(
            "SubtreeEstimator is deprecated; build the app through "
            "repro.apps.make_app(AppSpec('subtree_estimator', "
            "params={'beta': ...})) (same estimates and tallies, "
            "property-tested).  The legacy constructor will be removed "
            "in 2.0.", DeprecationWarning, stacklevel=2)
        self.tree = tree
        self.beta = beta
        self.counters = counters if counters is not None else MoveCounters()
        self._omega0: Dict[TreeNode, int] = {}
        self._passed: Dict[TreeNode, int] = {}
        # Ground truth for tests: descendants ever existing this
        # iteration, maintained exactly (analysis-only, costs nothing).
        self._true_sw: Dict[TreeNode, int] = {}
        self.size_protocol = SizeEstimationProtocol(
            tree, beta=beta, counters=self.counters,
            permit_flow_observer=self._on_permits_pass,
            on_iteration=self._on_iteration,
        )
        tree.add_listener(self)
        self._on_iteration(tree.size)

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def submit(self, request):
        return self.size_protocol.submit(request)

    def estimate(self, node: TreeNode) -> int:
        """``omega_tilde(node)``: the node's super-weight estimate."""
        return self._omega0.get(node, 1) + self._passed.get(node, 0)

    def true_super_weight(self, node: TreeNode) -> int:
        """Exact SW (test oracle; not available to the protocol)."""
        return self._true_sw.get(node, 1)

    # ------------------------------------------------------------------
    # Iteration reset: recompute omega_0 everywhere.
    # ------------------------------------------------------------------
    def _on_iteration(self, n_i: int) -> None:
        # One broadcast + upcast delivers every node its exact subtree
        # count at iteration start.
        self.counters.reset_moves += 2 * max(self.tree.size - 1, 0)
        self._omega0.clear()
        self._passed.clear()
        self._true_sw.clear()
        self._compute_subtree_sizes()

    def _compute_subtree_sizes(self) -> None:
        # Post-order accumulation without recursion (deep paths).
        order = list(self.tree.nodes())
        for node in reversed(order):
            total = 1 + sum(self._omega0.get(c, 0) for c in node.children)
            self._omega0[node] = total
            self._true_sw[node] = total

    # ------------------------------------------------------------------
    # Permit-flow monitoring.
    # ------------------------------------------------------------------
    def _on_permits_pass(self, node: TreeNode, permits: int) -> None:
        self._passed[node] = self._passed.get(node, 0) + permits

    # ------------------------------------------------------------------
    # Ground-truth maintenance (test oracle only).
    # ------------------------------------------------------------------
    def _bump_ancestors(self, start: Optional[TreeNode]) -> None:
        current = start
        while current is not None:
            self._true_sw[current] = self._true_sw.get(current, 1) + 1
            current = current.parent

    def on_add_leaf(self, node: TreeNode) -> None:
        self._true_sw[node] = 1
        self._bump_ancestors(node.parent)

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        # The new node's own SW starts at 1 + descendants ever counted
        # below it this iteration (it inherits child's history going
        # forward only; per the definition, descendants that existed
        # before it did are not its descendants-ever — they existed
        # while not below it.  New descendants will be counted as they
        # appear).
        self._true_sw[node] = 1 + self._true_sw.get(child, 1)
        self._bump_ancestors(parent)

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        self._true_sw.pop(node, None)

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children) -> None:
        self._true_sw.pop(node, None)

    def detach(self) -> None:
        self.tree.remove_listener(self)
        self.size_protocol.detach()
