"""The subtree (super-weight) estimator — Lemma 5.3.

The *super-weight* ``SW(u)`` at time t during iteration i is the number
of descendants of ``u`` (including ``u``) that existed at any point
since iteration i began.  The estimator maintains at each node

    ``omega_tilde(v) = omega_0(v, i) + S(v)``

where ``omega_0`` is the exact descendant count at the iteration start
(one broadcast + upcast) and ``S(v)`` counts the permits that passed
down through ``v`` since — every grant below ``v`` sent its permit
through ``v`` exactly once, so ``S`` tracks subtree growth.

The estimator piggybacks on the size-estimation protocol's controller
via the ``permit_flow_observer`` hook; it adds **zero** extra messages
for monitoring (nodes watch traffic already passing through them), and
the parent-notification messages of the heavy-child layer are counted
there.
"""

from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.service.appspec import AppSpec
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode
from repro.apps.size_estimation import SizeEstimationApp


class SubtreeEstimatorApp(SizeEstimationApp, TreeListener):
    """β-approximate super-weights behind the app-session API.

    Subtree super-weight estimation (Lemma 5.3): the
    size-estimation iterations run underneath (inherited), and the app
    taps every iteration controller's ``permit_flow_observer`` hook —
    on the synchronous engine *and* on the distributed engine, whose
    agents report each downward package hop — so monitoring still
    costs zero extra messages.  Parameters: ``beta`` (default 2.0).
    """

    name: ClassVar[str] = "subtree_estimator"

    def __init__(self, spec: AppSpec,
                 tree: Optional[DynamicTree] = None) -> None:
        self._omega0: Dict[TreeNode, int] = {}
        self._passed: Dict[TreeNode, int] = {}
        # Ground truth for tests: descendants ever existing this
        # iteration, maintained exactly (analysis-only, costs nothing).
        self._true_sw: Dict[TreeNode, int] = {}
        super().__init__(spec, tree)
        self.tree.add_listener(self)

    # ------------------------------------------------------------------
    # Iteration hooks.
    # ------------------------------------------------------------------
    def _iteration_contract(self, n_i: int
                            ) -> Tuple[int, int, int, Dict[str, Any]]:
        m_i, w_i, u_i, options = super()._iteration_contract(n_i)
        options["permit_flow_observer"] = self._observe_permits
        return m_i, w_i, u_i, options

    def _on_iteration_start(self, n_i: int) -> None:
        super()._on_iteration_start(n_i)
        # One broadcast + upcast delivers every node its exact subtree
        # count at iteration start.
        self.counters.reset_moves += 2 * max(self.tree.size - 1, 0)
        self._omega0.clear()
        self._passed.clear()
        self._true_sw.clear()
        self._compute_subtree_sizes()

    def _compute_subtree_sizes(self) -> None:
        # Post-order accumulation without recursion (deep paths).
        order = list(self.tree.nodes())
        for node in reversed(order):
            total = 1 + sum(self._omega0.get(c, 0) for c in node.children)
            self._omega0[node] = total
            self._true_sw[node] = total

    # ------------------------------------------------------------------
    # Permit-flow monitoring.
    # ------------------------------------------------------------------
    def _observe_permits(self, node: TreeNode, permits: int) -> None:
        self._passed[node] = self._passed.get(node, 0) + permits

    # ------------------------------------------------------------------
    # Public queries (the Lemma 5.3 guarantee).
    # ------------------------------------------------------------------
    def estimate_of(self, node: TreeNode) -> int:
        """``omega_tilde(node)``: the node's super-weight estimate."""
        return self._omega0.get(node, 1) + self._passed.get(node, 0)

    def true_super_weight(self, node: TreeNode) -> int:
        """Exact SW (test oracle; not available to the protocol)."""
        return self._true_sw.get(node, 1)

    # ------------------------------------------------------------------
    # Ground-truth maintenance (test oracle only).
    # ------------------------------------------------------------------
    def _bump_ancestors(self, start: Optional[TreeNode]) -> None:
        current = start
        while current is not None:
            self._true_sw[current] = self._true_sw.get(current, 1) + 1
            current = current.parent

    def on_add_leaf(self, node: TreeNode) -> None:
        self._true_sw[node] = 1
        self._bump_ancestors(node.parent)

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        # The new node inherits
        # only the child's counted history, going forward.
        self._true_sw[node] = 1 + self._true_sw.get(child, 1)
        self._bump_ancestors(parent)

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        self._true_sw.pop(node, None)

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children: List[TreeNode]) -> None:
        self._true_sw.pop(node, None)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent: the tree listener is removed with discard
        semantics, so a second close/detach is a no-op."""
        self.tree.remove_listener(self)
        super().close()
