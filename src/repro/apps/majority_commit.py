"""Majority commitment via size estimation (Section 1.3).

Bar-Yehuda and Kutten introduced asynchronous size estimation as the
engine of *majority commitment*: in a network of ``total`` processors,
many of which may be asleep or initially failed, commit a transaction
only once it is certain that a majority participates.  The awake nodes
form a growing spanning tree (wakeups join as leaves); Korman-Kutten's
estimator generalizes the protocol to trees that also shrink (nodes
leaving) and gain internal nodes.

This implementation layers directly on
:class:`~repro.apps.size_estimation.SizeEstimationApp`:

* the participant tree evolves through :meth:`join` / :meth:`leave`,
  each guarded by the estimator's controller;
* ``n_tilde/beta`` is a certified lower bound on the participant count,
  so :meth:`can_commit` returns True only when a true majority is
  guaranteed — at the price that the estimate-based trigger needs
  ``beta^2``-fold majority to fire;
* :meth:`commit_exact` runs one exact upcast (n - 1 messages) for the
  boundary case, mirroring the final counting round of the original
  protocol.
"""

from typing import ClassVar, Optional

from repro.errors import ControllerError
from repro.service.appspec import AppSpec
from repro.service.envelopes import OutcomeRecord
from repro.tree.dynamic_tree import DynamicTree
from repro.tree.node import TreeNode
from repro.core.requests import Request, RequestKind
from repro.apps.size_estimation import SizeEstimationApp


class MajorityCommitApp(SizeEstimationApp):
    """Majority commitment behind the app-session API.

    Majority commitment (Section
    1.3): the size-estimation iterations run underneath (inherited),
    the participant tree evolves through :meth:`join` / :meth:`leave`
    (each a guarded request), and ``n_tilde / beta`` certifies the
    lower bound :meth:`can_commit` fires on.  Parameters: ``total``
    (the universe size, required) and ``beta`` (default 1.5).
    """

    name: ClassVar[str] = "majority_commit"
    _default_beta: ClassVar[float] = 1.5

    def __init__(self, spec: AppSpec,
                 tree: Optional[DynamicTree] = None) -> None:
        total = spec.param("total")
        if total is None or int(total) < 1:
            raise ControllerError(
                "majority_commit needs params={'total': <universe size>} "
                f"with total >= 1, got {total!r}")
        self.total = int(total)
        self.committed = False
        super().__init__(spec, tree)
        if self.tree.size > self.total:
            raise ControllerError("tree already exceeds the universe size")

    # ------------------------------------------------------------------
    # Participant churn (guarded by the estimator's controller).
    # ------------------------------------------------------------------
    def join(self, parent: TreeNode) -> Optional[TreeNode]:
        """A processor wakes up and joins below ``parent``."""
        if self.tree.size >= self.total:
            raise ControllerError("all processors are already awake")
        record = self.serve(Request(RequestKind.ADD_LEAF, parent))
        outcome = record.outcome
        assert outcome is not None
        return outcome.new_node if outcome.granted else None

    def leave(self, node: TreeNode) -> OutcomeRecord:
        """A processor leaves (leaf or internal — the generalization)."""
        kind = (RequestKind.REMOVE_LEAF if not node.children
                else RequestKind.REMOVE_INTERNAL)
        return self.serve(Request(kind, node))

    # ------------------------------------------------------------------
    # Commitment (the Section 1.3 decision rule).
    # ------------------------------------------------------------------
    def certified_participants(self) -> float:
        """A lower bound on the participant count from the estimate."""
        return self.estimate / self.beta

    def can_commit(self) -> bool:
        """True only when the estimate *certifies* a strict majority."""
        if self.committed:
            return True
        return self.certified_participants() > self.total / 2

    def commit_exact(self) -> bool:
        """Exact counting round (one upcast): decide at the boundary."""
        self.counters.reset_moves += max(self.tree.size - 1, 0)
        if self.tree.size > self.total / 2:
            self.committed = True
        return self.committed
