"""The Section 5 applications of the controller.

* :class:`SizeEstimationProtocol` — every node holds a β-approximation
  of the current network size (Theorem 5.1);
* :class:`NameAssignmentProtocol` — unique ids in [1, 4n] at all times
  (Theorem 5.2);
* :class:`SubtreeEstimator` — β-approximate super-weights (Lemma 5.3);
* :class:`HeavyChildDecomposition` — O(log n) light ancestors
  (Theorem 5.4);
* :class:`AncestryLabeling` — dynamic ancestry labels under controlled
  deletions (Corollary 5.7);
* :class:`MajorityCommitProtocol` — majority commitment via size
  estimation (Section 1.3).
"""

from repro.apps.size_estimation import SizeEstimationProtocol
from repro.apps.name_assignment import NameAssignmentProtocol
from repro.apps.subtree_estimator import SubtreeEstimator
from repro.apps.heavy_child import HeavyChildDecomposition
from repro.apps.ancestry_labels import AncestryLabeling
from repro.apps.majority_commit import MajorityCommitProtocol
from repro.apps.routing_labels import RoutingLabeling

__all__ = [
    "SizeEstimationProtocol",
    "NameAssignmentProtocol",
    "SubtreeEstimator",
    "HeavyChildDecomposition",
    "AncestryLabeling",
    "MajorityCommitProtocol",
    "RoutingLabeling",
]
