"""The Section 5 applications of the controller.

Two surfaces live here:

**The app-session API (supported).**  :func:`make_app` builds any of
the seven applications from a frozen
:class:`~repro.service.appspec.AppSpec`; every product is an
:class:`~repro.apps.base.AppSession` implementing
:class:`repro.protocol.AppProtocol` — non-blocking ``submit`` ->
``Ticket``, streaming ``drain()`` interleaving outcome records with
:class:`~repro.service.envelopes.IterationRecord` boundary events, and
per-iteration controllers owned through
:class:`~repro.service.session.ControllerSession`, so every app runs
synchronously (flavour ``terminating``) or event-driven (flavour
``distributed`` under any schedule policy, delay model, and fault
plan):

* :class:`SizeEstimationApp` — every node holds a β-approximation of
  the current network size (Theorem 5.1);
* :class:`NameAssignmentApp` — unique ids in [1, 4n] at all times,
  interval mode (Theorem 5.2);
* :class:`SubtreeEstimatorApp` — β-approximate super-weights
  (Lemma 5.3);
* :class:`HeavyChildApp` — O(log n) light ancestors (Theorem 5.4);
* :class:`AncestryLabelsApp` — dynamic ancestry labels under
  controlled deletions (Corollary 5.7);
* :class:`RoutingLabelsApp` — exact interval tree routing under
  controlled deletions (Corollary 5.6);
* :class:`MajorityCommitApp` — majority commitment via size
  estimation (Section 1.3).

``AncestryLabeling`` and ``RoutingLabeling`` are the listener-layer
label structures the corresponding apps compose with the size
estimator.  The legacy hand-wired ``*Protocol`` constructors (and
``SubtreeEstimator`` / ``HeavyChildDecomposition``), deprecated since
1.4, were removed in 2.0 — ``make_app`` is the only construction path.
"""

from repro.apps.base import AppSession
from repro.apps.size_estimation import SizeEstimationApp
from repro.apps.name_assignment import NameAssignmentApp
from repro.apps.subtree_estimator import SubtreeEstimatorApp
from repro.apps.heavy_child import HeavyChildApp
from repro.apps.ancestry_labels import AncestryLabeling, AncestryLabelsApp
from repro.apps.majority_commit import MajorityCommitApp
from repro.apps.routing_labels import RoutingLabeling, RoutingLabelsApp
from repro.apps.registry import APP_REGISTRY, app_names, make_app

__all__ = [
    # The app-session surface.
    "AppSession",
    "make_app",
    "app_names",
    "APP_REGISTRY",
    "SizeEstimationApp",
    "NameAssignmentApp",
    "SubtreeEstimatorApp",
    "HeavyChildApp",
    "AncestryLabelsApp",
    "RoutingLabelsApp",
    "MajorityCommitApp",
    # Listener-layer label structures (composed by the apps).
    "AncestryLabeling",
    "RoutingLabeling",
]
