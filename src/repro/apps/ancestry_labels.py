"""Dynamic ancestry labeling under controlled deletions — Corollary 5.7.

A static ancestry labeling scheme (Kannan-Naor-Rudich style interval
labels) stays *correct* under deletions of both leaves and internal
nodes: removing a node never breaks the nesting of the surviving
intervals.  What deletions do break is *size optimality* — after the
tree shrinks by a constant factor, labels are longer than the new
optimum.  Corollary 5.7 fixes that by pairing the static scheme with
the size-estimation protocol: when the estimate reveals the tree has
halved (or doubled) since the last labeling, relabel once, for an
amortized O(log^2 n) messages per change.

Labels are ``(low, high)`` interval pairs; ``u`` is an ancestor of
``v`` iff ``low(u) <= low(v)`` and ``high(v) <= high(u)``.  Insertions
are served from gap budgets pre-allocated inside the parent's interval
(the standard dynamization); exhausting a gap forces a relabel, which
the amortized accounting also covers.
"""

from typing import ClassVar, Dict, Iterable, List, Optional, Tuple

from repro.errors import ControllerError, InvariantViolation
from repro.metrics.counters import MoveCounters
from repro.service.appspec import AppSpec
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode
from repro.tree.paths import is_ancestor

from repro.apps.size_estimation import SizeEstimationApp


class AncestryLabelsApp(SizeEstimationApp):
    """Controlled dynamic ancestry labels behind the app-session API.

    The Corollary 5.7 stack as one app: the size-estimation iterations
    guard every topological change (inherited — so deletions are
    *controlled* in the paper's sense and the amortized accounting
    applies), and an :class:`AncestryLabeling` structure listens on the
    same tree, relabeling when the size halves/doubles relative to the
    last labeling.  Parameters: ``slack`` (gap budget, default 4).
    """

    name: ClassVar[str] = "ancestry_labels"

    def __init__(self, spec: AppSpec,
                 tree: Optional[DynamicTree] = None) -> None:
        self.labeling: Optional[AncestryLabeling] = None
        # The label structure keeps its own ledger so the controller
        # layer's polylog cost and the relabel traversals stay
        # separately reportable (the bench fits them separately).
        self.label_counters = MoveCounters()
        super().__init__(spec, tree)
        self.labeling = AncestryLabeling(
            self.tree, slack=int(spec.param("slack", 4)),
            counters=self.label_counters)

    # ------------------------------------------------------------------
    # Label queries (delegated to the structure layer).
    # ------------------------------------------------------------------
    @property
    def labels(self) -> Dict[TreeNode, Tuple[int, int]]:
        assert self.labeling is not None
        return self.labeling.labels

    @property
    def relabels(self) -> int:
        assert self.labeling is not None
        return self.labeling.relabels

    def label_of(self, node: TreeNode) -> Tuple[int, int]:
        assert self.labeling is not None
        return self.labeling.label_of(node)

    def query_ancestry(self, ancestor: TreeNode, node: TreeNode) -> bool:
        assert self.labeling is not None
        return self.labeling.query_ancestry(ancestor, node)

    def label_bits(self) -> int:
        assert self.labeling is not None
        return self.labeling.label_bits()

    def check_correctness(
            self, sample_pairs: Iterable[Tuple[TreeNode, TreeNode]]) -> None:
        assert self.labeling is not None
        self.labeling.check_correctness(sample_pairs)

    def close(self) -> None:
        if self.labeling is not None:
            self.labeling.detach()
        super().close()


class AncestryLabeling(TreeListener):
    """Interval ancestry labels with estimate-driven relabeling.

    ``slack`` controls the gap budget: each node's interval is ``slack``
    times larger than its subtree strictly needs, so roughly
    ``log(slack)``-fold growth is absorbed before a relabel.
    """

    def __init__(self, tree: DynamicTree, slack: int = 4,
                 counters: Optional[MoveCounters] = None) -> None:
        if slack < 2:
            raise ControllerError("slack must be at least 2")
        self.tree = tree
        self.slack = slack
        self.counters = counters if counters is not None else MoveCounters()
        self.labels: Dict[TreeNode, Tuple[int, int]] = {}
        self.relabels = 0
        self.labeled_size = 0
        # Next free slot inside each node's interval for new children.
        self._cursor: Dict[TreeNode, int] = {}
        tree.add_listener(self)
        self._relabel()

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def label_of(self, node: TreeNode) -> Tuple[int, int]:
        return self.labels[node]

    def query_ancestry(self, ancestor: TreeNode, node: TreeNode) -> bool:
        """Is ``ancestor`` an ancestor of ``node``?  Pure label lookup."""
        a_low, a_high = self.labels[ancestor]
        n_low, n_high = self.labels[node]
        return a_low <= n_low and n_high <= a_high

    def label_bits(self) -> int:
        """Current label size in bits (two endpoints)."""
        top = max(high for _, high in self.labels.values())
        return 2 * max(top.bit_length(), 1)

    def check_correctness(self, sample_pairs:
                          Iterable[Tuple[TreeNode, TreeNode]]) -> None:
        """Verify the labels against true ancestry on given node pairs."""
        for u, v in sample_pairs:
            expected = is_ancestor(u, v)
            if self.query_ancestry(u, v) != expected:
                raise InvariantViolation(
                    f"ancestry({u}, {v}) mislabeled: expected {expected}"
                )

    # ------------------------------------------------------------------
    # Relabeling.
    # ------------------------------------------------------------------
    def _interval_need(self, node: TreeNode,
                       sizes: Dict[TreeNode, int]) -> int:
        return self.slack * sizes[node]

    def _relabel(self) -> None:
        """Assign fresh intervals: one DFS traversal (2(n-1) messages)."""
        self.relabels += 1
        self.labeled_size = self.tree.size
        self.counters.reset_moves += 2 * max(self.tree.size - 1, 0)
        self.labels.clear()
        self._cursor.clear()
        sizes: Dict[TreeNode, int] = {}
        order = list(self.tree.nodes())
        for node in reversed(order):
            sizes[node] = 1 + sum(sizes[c] for c in node.children)
        self._assign(self.tree.root, 0, sizes)

    def _assign(self, node: TreeNode, low: int,
                sizes: Dict[TreeNode, int]) -> None:
        stack = [(node, low)]
        while stack:
            current, lo = stack.pop()
            hi = lo + self._interval_need(current, sizes) - 1
            self.labels[current] = (lo, hi)
            child_lo = lo + 1
            for child in current.children:
                stack.append((child, child_lo))
                child_lo += self._interval_need(child, sizes)
            self._cursor[current] = child_lo

    def _maybe_relabel(self) -> None:
        n = self.tree.size
        if n < self.labeled_size // 2 or n > 2 * self.labeled_size:
            self._relabel()

    def _place_new_node(self, node: TreeNode, parent: TreeNode) -> None:
        """Give a fresh leaf half of its parent's remaining gap budget.

        Halving lets ~log(gap) nested insertions succeed before a
        relabel is forced, keeping relabels rare on random growth.
        """
        parent_low, parent_high = self.labels[parent]
        cursor = self._cursor.get(parent, parent_low + 1)
        width = (parent_high - cursor) // 2
        if width < 1:
            self._relabel()
            return
        self.labels[node] = (cursor, cursor + width - 1)
        self._cursor[node] = cursor + 1
        self._cursor[parent] = cursor + width

    # ------------------------------------------------------------------
    # Topology events.
    # ------------------------------------------------------------------
    def on_add_leaf(self, node: TreeNode) -> None:
        self._place_new_node(node, node.parent)
        self._maybe_relabel()

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        # An internal insertion must strictly nest between two existing
        # intervals; no gap is reserved there (Corollary 5.7 extends the
        # static scheme to *deletions* — additions of internal nodes pay
        # a full relabel, which the amortized accounting reports).
        self._relabel()

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        self.labels.pop(node, None)
        self._cursor.pop(node, None)
        self._maybe_relabel()

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children: List[TreeNode]) -> None:
        self.labels.pop(node, None)
        self._cursor.pop(node, None)
        self._maybe_relabel()

    def detach(self) -> None:
        self.tree.remove_listener(self)
