"""Compact tree routing under controlled deletions — Corollary 5.6.

Observation 5.5 lists "any exact (stretch 1) routing scheme" among the
structures whose *correctness* survives deletions of degree-one nodes;
Corollary 5.6 pairs such a scheme with the size estimator so its *label
size* stays O(f(n)) as the tree shrinks.

This module implements the classic interval routing scheme on trees
(Santoro-Khatib style): every node stores its own DFS interval and the
interval of each child; routing toward a target label goes to the child
whose interval contains it, or to the parent when the target lies
outside the node's own interval.  Routing decisions are purely local to
the current node — the distributed reading.

Deletions keep the scheme correct (surviving intervals keep nesting);
relabeling is triggered when the size halves/doubles relative to the
last labeling, piggybacking on the estimate exactly like
:class:`~repro.apps.ancestry_labels.AncestryLabeling` (the two schemes
share the relabel policy; this one additionally maintains the per-node
child tables that routing needs).
"""

from typing import ClassVar, Dict, List, Optional, Tuple

from repro.errors import InvariantViolation
from repro.metrics.counters import MoveCounters
from repro.service.appspec import AppSpec
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode

from repro.apps.size_estimation import SizeEstimationApp

Interval = Tuple[int, int]


class RoutingLabelsApp(SizeEstimationApp):
    """Compact tree routing behind the app-session API.

    The Corollary 5.6 stack as one app: the size-estimation iterations
    guard the churn (inherited), and a :class:`RoutingLabeling`
    structure maintains the per-node interval routing tables on the
    same tree — correctness survives the controlled deletions, and the
    estimate-paced relabel keeps the label size O(log n).
    """

    name: ClassVar[str] = "routing_labels"

    def __init__(self, spec: AppSpec,
                 tree: Optional[DynamicTree] = None) -> None:
        self.labeling: Optional[RoutingLabeling] = None
        # Separate ledger for the label structure: routing relabels on
        # every addition (tight intervals leave no gaps), which is the
        # structure's linear term, not the controller's polylog one.
        self.label_counters = MoveCounters()
        super().__init__(spec, tree)
        self.labeling = RoutingLabeling(self.tree,
                                        counters=self.label_counters)

    # ------------------------------------------------------------------
    # Routing queries (delegated to the structure layer).
    # ------------------------------------------------------------------
    @property
    def labels(self) -> Dict[TreeNode, Interval]:
        assert self.labeling is not None
        return self.labeling.labels

    @property
    def relabels(self) -> int:
        assert self.labeling is not None
        return self.labeling.relabels

    def label_of(self, node: TreeNode) -> Interval:
        assert self.labeling is not None
        return self.labeling.label_of(node)

    def next_hop(self, node: TreeNode, target_label: Interval) -> TreeNode:
        assert self.labeling is not None
        return self.labeling.next_hop(node, target_label)

    def route(self, source: TreeNode, destination: TreeNode,
              hop_limit: Optional[int] = None) -> List[TreeNode]:
        assert self.labeling is not None
        return self.labeling.route(source, destination,
                                   hop_limit=hop_limit)

    def label_bits(self) -> int:
        assert self.labeling is not None
        return self.labeling.label_bits()

    def close(self) -> None:
        if self.labeling is not None:
            self.labeling.detach()
        super().close()


class RoutingLabeling(TreeListener):
    """Exact (stretch-1) interval routing on a dynamic tree."""

    def __init__(self, tree: DynamicTree,
                 counters: Optional[MoveCounters] = None) -> None:
        self.tree = tree
        self.counters = counters if counters is not None else MoveCounters()
        self.labels: Dict[TreeNode, Interval] = {}
        self.relabels = 0
        self.labeled_size = 0
        tree.add_listener(self)
        self._relabel()

    # ------------------------------------------------------------------
    # Labels and routing.
    # ------------------------------------------------------------------
    def label_of(self, node: TreeNode) -> Interval:
        return self.labels[node]

    def next_hop(self, node: TreeNode, target_label: Interval) -> TreeNode:
        """One routing step from ``node`` toward ``target_label``.

        Uses only ``node``'s local table (its own interval and its
        children's); returns the neighbor to forward to.
        """
        low, high = self.labels[node]
        t_low, t_high = target_label
        if not (low <= t_low and t_high <= high):
            if node.parent is None:
                raise InvariantViolation(
                    f"target {target_label} outside the root's interval"
                )
            return node.parent
        for child in node.children:
            c_low, c_high = self.labels[child]
            if c_low <= t_low and t_high <= c_high:
                return child
        raise InvariantViolation(
            f"target {target_label} inside {node}'s interval but in no "
            "child's — target not in the tree?"
        )

    def route(self, source: TreeNode, destination: TreeNode,
              hop_limit: Optional[int] = None) -> List[TreeNode]:
        """Full path from ``source`` to ``destination`` (both inclusive).

        Each step costs one message; ``hop_limit`` guards tests against
        routing loops (exact schemes must never need it).
        """
        target = self.labels[destination]
        path = [source]
        current = source
        limit = hop_limit if hop_limit is not None else 4 * self.tree.size
        while self.labels[current] != target:
            if len(path) > limit:
                raise InvariantViolation("routing loop detected")
            current = self.next_hop(current, target)
            self.counters.package_moves += 1
            path.append(current)
        return path

    def label_bits(self) -> int:
        top = max(high for _, high in self.labels.values())
        return 2 * max(top.bit_length(), 1)

    # ------------------------------------------------------------------
    # (Re)labeling.
    # ------------------------------------------------------------------
    def _relabel(self) -> None:
        """One DFS traversal: tight intervals, 2(n-1) messages."""
        self.relabels += 1
        self.labeled_size = self.tree.size
        self.counters.reset_moves += 2 * max(self.tree.size - 1, 0)
        self.labels.clear()
        sizes: Dict[TreeNode, int] = {}
        order = list(self.tree.nodes())
        for node in reversed(order):
            sizes[node] = 1 + sum(sizes[c] for c in node.children)
        stack = [(self.tree.root, 0)]
        while stack:
            node, low = stack.pop()
            self.labels[node] = (low, low + sizes[node] - 1)
            child_low = low + 1
            for child in node.children:
                stack.append((child, child_low))
                child_low += sizes[child]

    def _maybe_relabel(self) -> None:
        n = self.tree.size
        if n < self.labeled_size // 2 or n > 2 * self.labeled_size:
            self._relabel()

    # ------------------------------------------------------------------
    # Topology events.  Deletions of degree-one nodes preserve
    # correctness (Observation 5.5); anything else relabels.
    # ------------------------------------------------------------------
    def on_add_leaf(self, node: TreeNode) -> None:
        # Tight intervals leave no gaps: additions relabel.  (The
        # corollary's claim concerns deletions; see AncestryLabeling for
        # the gap-budget variant that absorbs additions.)
        self._relabel()

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        self._relabel()

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        self.labels.pop(node, None)
        self._maybe_relabel()

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children: List[TreeNode]) -> None:
        # An internal deletion re-parents whole subtrees: the surviving
        # intervals still nest under the grandparent, so routing stays
        # correct — the child-table at the grandparent simply gains the
        # adopted children's (still-valid) intervals.
        self.labels.pop(node, None)
        self._maybe_relabel()

    def detach(self) -> None:
        self.tree.remove_listener(self)
