"""The public application registry: one factory for every Section 5 app.

``make_app(spec, tree=...)`` builds any of the seven applications
behind one call, exactly as :func:`repro.registry.make_controller`
does for the controller flavours.  Every product subclasses
:class:`repro.apps.base.AppSession` and implements
:class:`repro.protocol.AppProtocol` (``submit`` / ``submit_many`` /
``serve`` / ``drain`` / ``settle_all`` / ``introspect`` / ``app_view``
/ ``close``).

Registered apps (the :data:`repro.service.appspec.APP_NAMES` catalogue):

=====================  ===============================================
``size_estimation``    β-approximate network size (Theorem 5.1)
``name_assignment``    unique ids in [1, 4n], interval mode
                       (Theorem 5.2)
``subtree_estimator``  β-approximate super-weights (Lemma 5.3)
``heavy_child``        O(log n) light ancestors (Theorem 5.4)
``ancestry_labels``    dynamic interval ancestry labels
                       (Corollary 5.7)
``routing_labels``     exact interval tree routing (Corollary 5.6)
``majority_commit``    majority commitment via size estimation
                       (Section 1.3)
=====================  ===============================================
"""

from typing import Dict, Optional, Tuple, Type

from repro.apps.ancestry_labels import AncestryLabelsApp
from repro.apps.base import AppSession
from repro.apps.heavy_child import HeavyChildApp
from repro.apps.majority_commit import MajorityCommitApp
from repro.apps.name_assignment import NameAssignmentApp
from repro.apps.routing_labels import RoutingLabelsApp
from repro.apps.size_estimation import SizeEstimationApp
from repro.apps.subtree_estimator import SubtreeEstimatorApp
from repro.service.appspec import APP_NAMES, AppSpec, resolve_app
from repro.tree.dynamic_tree import DynamicTree

APP_REGISTRY: Dict[str, Type[AppSession]] = {
    "size_estimation": SizeEstimationApp,
    "name_assignment": NameAssignmentApp,
    "subtree_estimator": SubtreeEstimatorApp,
    "heavy_child": HeavyChildApp,
    "ancestry_labels": AncestryLabelsApp,
    "routing_labels": RoutingLabelsApp,
    "majority_commit": MajorityCommitApp,
}

# The spec layer validates names without importing app classes; the two
# catalogues must describe the same set (also asserted in the tests).
assert tuple(APP_REGISTRY) == APP_NAMES, (
    "APP_REGISTRY out of sync with repro.service.appspec.APP_NAMES")


def app_names() -> Tuple[str, ...]:
    """The registered app names, in registry order."""
    return APP_NAMES


def make_app(spec: AppSpec, tree: Optional[DynamicTree] = None
             ) -> AppSession:
    """Build the application ``spec`` describes, on ``tree``.

    ``spec`` carries everything: the app name and its parameters, the
    per-iteration engine flavour, and the asynchrony knobs (schedule
    policy, delay model, fault plan).  ``tree=None`` builds a fresh
    single-root tree owned by the app.  Raises
    :class:`repro.errors.ConfigError` for unknown names (the spec
    already validated itself eagerly at construction).
    """
    return APP_REGISTRY[resolve_app(spec.app)](spec, tree=tree)
