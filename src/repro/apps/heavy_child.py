"""Heavy-child decomposition on a dynamic tree — Theorem 5.4.

Each internal node ``v`` points at one child ``mu(v)`` (the *heavy*
child); all other children are *light*.  The decomposition quality
requirement: at any time, every node has O(log n) light ancestors.

Construction (Section 5.3): run the subtree estimator with
``beta = sqrt(3)``; every time a node's super-weight estimate changes it
notifies its parent (one message — at most doubling the protocol's
message count); each node points ``mu`` at the child with the largest
reported estimate.  The β²-sandwich then forces every light child ``u``
of ``v`` to satisfy ``SW(u) <= (3/4) SW(v)``, giving the logarithmic
light-depth.
"""

import math
from typing import ClassVar, Dict, List, Optional

from repro.service.appspec import AppSpec
from repro.tree.dynamic_tree import DynamicTree
from repro.tree.node import TreeNode
from repro.apps.subtree_estimator import SubtreeEstimatorApp


class HeavyChildApp(SubtreeEstimatorApp):
    """Heavy-child decomposition behind the app-session API.

    Heavy-child decomposition (Theorem
    5.4): the subtree estimator runs underneath with
    ``beta = sqrt(3)`` (inherited, the Section 5.3 constant), every
    estimate change notifies the node's parent (one message), and each
    node points ``mu`` at the child with the largest reported
    estimate.  At iteration boundaries the estimates reset to fresh
    ``omega_0`` values, so every ``mu`` pointer is refreshed
    (piggybacking on the iteration's counting upcast).
    """

    name: ClassVar[str] = "heavy_child"
    _default_beta: ClassVar[float] = math.sqrt(3)

    def __init__(self, spec: AppSpec,
                 tree: Optional[DynamicTree] = None) -> None:
        self._mu: Dict[TreeNode, TreeNode] = {}
        super().__init__(spec, tree)

    # ------------------------------------------------------------------
    # Iteration hooks.
    # ------------------------------------------------------------------
    def _on_iteration_start(self, n_i: int) -> None:
        super()._on_iteration_start(n_i)
        # Refresh every mu pointer against the fresh omega_0 values
        # (one extra message per node, on the counting upcast).
        self.counters.reset_moves += self.tree.size
        self._rebuild_all()

    def _observe_permits(self, node: TreeNode, permits: int) -> None:
        # Flat override (no super() hop): this fires once per node a
        # package passes, the hottest app-layer callback there is.  The
        # first line is SubtreeEstimatorApp's accumulation verbatim.
        passed = self._passed
        passed[node] = passed.get(node, 0) + permits
        self._estimate_changed(node)

    # ------------------------------------------------------------------
    # Public queries (the Theorem 5.4 guarantee).
    # ------------------------------------------------------------------
    def heavy_child(self, node: TreeNode) -> Optional[TreeNode]:
        """``mu(node)``: the heavy child, or None for leaves."""
        return self._mu.get(node)

    def is_light(self, node: TreeNode) -> bool:
        """A non-root node is light iff its parent points elsewhere."""
        if node.parent is None:
            return False
        return self._mu.get(node.parent) is not node

    def light_ancestors(self, node: TreeNode) -> int:
        """Number of light ancestors of ``node`` — the O(log n) figure."""
        count = 0
        current: Optional[TreeNode] = node
        while current is not None:
            if self.is_light(current):
                count += 1
            current = current.parent
        return count

    def max_light_depth(self) -> int:
        """max over nodes of light_ancestors (scan; test/bench helper)."""
        return max(self.light_ancestors(n) for n in self.tree.nodes())

    # ------------------------------------------------------------------
    # Mu maintenance (Section 5.3).
    # ------------------------------------------------------------------
    def _estimate_changed(self, node: TreeNode) -> None:
        """``node``'s estimate changed: notify the parent (1 message)."""
        parent = node.parent
        if parent is None:
            return
        self.counters.package_moves += 1
        self._reconsider(parent, node)

    def _reconsider(self, parent: TreeNode, child: TreeNode) -> None:
        """Parent remembers only the largest child estimate."""
        current = self._mu.get(parent)
        if current is None or current.parent is not parent:
            self._recompute_mu(parent)
            return
        if child is current:
            return
        if self.estimate_of(child) > self.estimate_of(current):
            self._mu[parent] = child

    def _recompute_mu(self, node: TreeNode) -> None:
        if not node.children:
            self._mu.pop(node, None)
            return
        self._mu[node] = max(node.children, key=self.estimate_of)

    def _rebuild_all(self) -> None:
        for node in self.tree.nodes():
            self._recompute_mu(node)

    # ------------------------------------------------------------------
    # Topology events: ground truth (super) plus mu well-formedness.
    # ------------------------------------------------------------------
    def on_add_leaf(self, node: TreeNode) -> None:
        super().on_add_leaf(node)
        parent = node.parent
        if parent is not None and parent not in self._mu:
            self._mu[parent] = node
        self._estimate_changed(node)

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        super().on_add_internal(node, parent, child)
        # The new node adopts the child as its (only) heavy child; the
        # parent's pointer is refreshed if it pointed at the child.
        self._mu[node] = child
        if self._mu.get(parent) is child:
            self._mu[parent] = node
        self._estimate_changed(node)

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        super().on_remove_leaf(node, parent)
        self._mu.pop(node, None)
        if self._mu.get(parent) is node:
            self._recompute_mu(parent)

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children: List[TreeNode]) -> None:
        super().on_remove_internal(node, parent, children)
        self._mu.pop(node, None)
        if self._mu.get(parent) is node or self._mu.get(parent) is None:
            self._recompute_mu(parent)
