"""The size-estimation protocol (Theorem 5.1).

Every node maintains ``n_tilde`` with ``n/beta <= n_tilde <= beta*n``
at all times.  The protocol runs in iterations:

* at the start of iteration i the exact size ``N_i`` is counted and
  broadcast (all nodes adopt ``n_tilde = N_i``);
* with ``alpha = 1 - 1/beta``, a terminating
  ``(alpha*N_i, alpha*N_i/2)``-controller guards all topological
  changes during the iteration;
* the iteration ends when the controller terminates, which caps the
  number of changes at ``alpha*N_i`` — hence
  ``N_i/beta <= n <= (2 - 1/beta) N_i <= beta*N_i`` throughout.

Because the controller grants at least ``alpha*N_i/2 = Omega(N_i)``
permits before terminating, each iteration's ``O(N_i log^2 N_i)``
messages amortize to ``O(log^2 n)`` per change — the Theorem 5.1 bound.

The protocol exposes ``submit`` for topological requests; requests that
arrive while an iteration rolls over are transparently resubmitted to
the next iteration (the queue of Observation 2.1).

The app is built via ``repro.apps.make_app`` (the legacy hand-wired
``SizeEstimationProtocol`` constructor was removed in 2.0).
"""

from dataclasses import replace
from typing import Any, ClassVar, Dict, Optional, Tuple

from repro.apps.base import AppSession
from repro.errors import ControllerError
from repro.protocol import AppView
from repro.service.appspec import AppSpec
from repro.tree.dynamic_tree import DynamicTree
from repro.tree.node import TreeNode


class SizeEstimationApp(AppSession):
    """β-approximate size estimation behind the app-session API.

    Size estimation (Theorem
    5.1): the same iteration discipline — count and broadcast ``N_i``,
    guard the iteration with an ``(alpha*N_i, alpha*N_i/2)``-terminating
    controller, roll on exhaustion — but the per-iteration controller
    lives inside a :class:`~repro.service.session.ControllerSession`
    built from the app's :class:`~repro.service.appspec.AppSpec`, so
    the protocol runs synchronously or event-driven (schedule policies,
    delay models, fault plans) unchanged.  Parameters: ``beta`` (> 1,
    default 2.0).
    """

    name: ClassVar[str] = "size_estimation"
    _default_beta: ClassVar[float] = 2.0

    def __init__(self, spec: AppSpec,
                 tree: Optional[DynamicTree] = None) -> None:
        beta = float(spec.param("beta", self._default_beta))
        if beta <= 1.0:
            raise ControllerError(f"beta must exceed 1, got {beta}")
        self.beta = beta
        self.alpha = 1.0 - 1.0 / beta
        #: Every node's current estimate ``n_tilde`` (uniform: the
        #: iteration-start broadcast delivered it everywhere).
        self.estimate = 0
        super().__init__(spec, tree)

    # ------------------------------------------------------------------
    # Iteration hooks.
    # ------------------------------------------------------------------
    def _iteration_contract(self, n_i: int
                            ) -> Tuple[int, int, int, Dict[str, Any]]:
        m_i = max(int(self.alpha * n_i), 1)
        w_i = max(m_i // 2, 1)
        u_i = max(2 * n_i, 2)
        return m_i, w_i, u_i, {}

    def _on_iteration_start(self, n_i: int) -> None:
        super()._on_iteration_start(n_i)
        self.estimate = n_i
        # Count and broadcast N_i: upcast + broadcast.
        self.counters.reset_moves += 2 * max(n_i - 1, 0)

    # ------------------------------------------------------------------
    # Public queries (the Theorem 5.1 guarantee).
    # ------------------------------------------------------------------
    def estimate_at(self, node: TreeNode) -> int:
        """The estimate ``n_tilde(v)`` held at ``node`` (uniform; the
        per-node signature documents the distributed reading)."""
        return self.estimate

    def check_approximation(self) -> float:
        """Current ratio max(n_tilde/n, n/n_tilde); must stay <= beta."""
        n = self.tree.size
        if n == 0 or self.estimate == 0:
            raise ControllerError("degenerate size")
        return max(self.estimate / n, n / self.estimate)

    def app_view(self) -> AppView:
        return replace(super().app_view(),
                       beta=self.beta, estimate=self.estimate)
