"""The application session: iteration-owning engine behind the app API.

Every Section 5 application runs the same outer loop (Observation 2.1):
derive an ``(M_i, W_i, U_i)`` contract from the tree size at iteration
start, guard all events with one *terminating* controller, and when
that controller exhausts its budget, tear it down, re-derive the
contract, and resubmit the still-pending requests to the next
iteration.  :class:`AppSession` is that loop, written once, on top of
the session layer:

* each iteration's controller lives inside a
  :class:`~repro.service.session.ControllerSession` built from the
  app's :class:`~repro.service.appspec.AppSpec` — so the same app runs
  synchronously (flavour ``terminating``) or event-driven (flavour
  ``distributed`` with ``terminate_on_exhaustion``, under any schedule
  policy, delay model, and fault plan);
* the public surface mirrors the session's: non-blocking
  :meth:`submit` returning a :class:`~repro.service.envelopes.Ticket`,
  batched :meth:`submit_many`, synchronous :meth:`serve`, and a
  streaming :meth:`drain` that yields
  :class:`~repro.service.envelopes.OutcomeRecord` objects in
  settlement order **interleaved with**
  :class:`~repro.service.envelopes.IterationRecord` boundary events,
  so rollovers are observable instead of inferred;
* admission control happens once, at the app boundary
  (``spec.max_in_flight``); the inner engine session runs wide open,
  so backpressure and rollover never interact;
* a rolled request keeps its ticket: PENDING outcomes are consumed by
  the resubmission queue, and the caller only ever observes the final
  granted/rejected/cancelled verdict.

Subclasses implement three hooks: :meth:`_iteration_contract` (the
per-iteration (M, W, U) plus controller options such as interval mode
or the permit-flow observer), :meth:`_on_iteration_start` (broadcasts,
estimate refreshes, relabels — chained via ``super()``), and
:meth:`_after_outcome` (id bookkeeping, tallies).  The legacy
``*Protocol`` classes remain as deprecated shims; the per-seed
equivalence of the two paths is property-tested.
"""

from collections import Counter, deque
from typing import (
    Any,
    Callable,
    ClassVar,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.requests import Outcome, OutcomeStatus, Request
from repro.errors import ControllerError, ProtocolError
from repro.metrics.counters import MessageCounters, MoveCounters
from repro.metrics.invariants import InvariantReport, audit_app
from repro.protocol import AppView, ControllerView
from repro.service.appspec import AppSpec
from repro.service.envelopes import (
    IterationRecord,
    OutcomeRecord,
    RequestEnvelope,
    SessionVerdict,
    Ticket,
    build_records,
    verdict_of,
)
from repro.service.session import ControllerSession
from repro.tree.dynamic_tree import DynamicTree

#: One iteration's controller contract: (m, w, u, extra options).
IterationContract = Tuple[int, int, int, Dict[str, Any]]

#: What the app-layer drain stream yields.
AppRecord = Union[OutcomeRecord, IterationRecord]


class AppSession:
    """Base class for the Section 5 applications (see module docstring).

    Parameters
    ----------
    spec:
        The frozen :class:`AppSpec` (``spec.app`` must name this
        class's :attr:`name`; :func:`repro.apps.make_app` dispatches).
    tree:
        The tree to run on.  ``None`` builds a fresh single-root
        :class:`DynamicTree` owned by the app.
    """

    #: The registry name subclasses bind to.
    name: ClassVar[str] = ""

    def __init__(self, spec: AppSpec,
                 tree: Optional[DynamicTree] = None) -> None:
        if spec.app != self.name:
            raise ControllerError(
                f"spec names app {spec.app!r}, not {self.name!r}; "
                "construct apps through repro.apps.make_app")
        self.spec = spec
        self.tree = tree if tree is not None else DynamicTree()
        #: App-layer cost accounting (broadcasts, relabels, parent
        #: notifications), always in centralized *moves*.
        self.counters = MoveCounters()
        #: The engine's own counter object, shared across iterations.
        #: Synchronous iterations charge the app's MoveCounters
        #: directly (one ledger, exactly as the legacy classes kept
        #: it); event-driven iterations accumulate MessageCounters.
        self.engine_counters: Union[MoveCounters, MessageCounters]
        if spec.event_driven:
            self.engine_counters = MessageCounters()
        else:
            self.engine_counters = self.counters
        self.iterations_run = 0
        #: Permits granted by already-closed iterations (the rollover
        #: conservation ledger; the live iteration's tally is read off
        #: its controller).
        self.grants_banked = 0
        #: Fault-injection tallies banked from closed iterations (each
        #: iteration's session builds a fresh injector; see
        #: :attr:`fault_stats` for the full-run view).
        self._banked_fault_stats: Dict[str, int] = {}
        self.session: Optional[ControllerSession] = None
        self._next_envelope = 0
        self._clock = 0
        self._pending: Deque[Tuple[RequestEnvelope, Ticket]] = deque()
        self._ready: Deque[Tuple[AppRecord, Optional[Ticket]]] = deque()
        self._closed = False
        self.verdicts: Dict[str, int] = {v.value: 0 for v in SessionVerdict}
        self._sync = not spec.event_driven
        self._fast_handle: Callable[[Request], Any]
        self._start_iteration()

    # ------------------------------------------------------------------
    # Subclass hooks.
    # ------------------------------------------------------------------
    def _iteration_contract(self, n_i: int) -> IterationContract:
        """The (m, w, u, options) contract for an iteration starting at
        tree size ``n_i``.  Options may wire the shared counters'
        companions: interval mode, the permit-flow observer, ..."""
        raise NotImplementedError

    def _on_iteration_start(self, n_i: int) -> None:
        """Runs after the iteration's session exists: broadcast
        accounting, estimate refreshes, relabels.  Chain ``super()``."""

    def _after_outcome(self, outcome: Outcome) -> None:
        """Runs once per settled (non-PENDING) outcome, in settlement
        order: id bookkeeping, domain tallies.  Chain ``super()``."""

    # ------------------------------------------------------------------
    # Iteration lifecycle.
    # ------------------------------------------------------------------
    def _start_iteration(self) -> None:
        self.iterations_run += 1
        n_i = self.tree.size
        m, w, u, options = self._iteration_contract(n_i)
        options.setdefault("counters", self.engine_counters)
        config = self.spec.config_for(m, w, u, iteration=self.iterations_run,
                                      options=options)
        self.session = ControllerSession(config, tree=self.tree)
        # Bound-method cache for the synchronous serve hot path: the
        # session's serve() is this same handle plus record wrapping
        # the app redoes at its own layer anyway (the <= 5% apps-bench
        # overhead budget pays for exactly one wrapping).
        self._fast_handle = self.session.controller.handle
        self._on_iteration_start(n_i)
        self._clock += 1
        self._ready.append((IterationRecord(
            index=self.iterations_run, size=n_i, m=m, w=w, u=u,
            tick=float(self._clock)), None))

    def _roll_iteration(self) -> None:
        session = self.session
        assert session is not None
        self.grants_banked += self._live_granted()
        self._bank_fault_stats()
        session.close()
        self._start_iteration()

    def _bank_fault_stats(self) -> None:
        assert self.session is not None
        injector = getattr(self.session.controller, "faults", None)
        if injector is not None:
            banked = self._banked_fault_stats
            for key, value in injector.stats.items():
                banked[key] = banked.get(key, 0) + value

    def _live_granted(self) -> int:
        """The live iteration controller's grant tally."""
        assert self.session is not None
        return int(getattr(self.session.controller, "granted", 0))

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def granted_total(self) -> int:
        """Requests this app has granted, over all iterations."""
        return self.verdicts[SessionVerdict.GRANTED.value]

    @property
    def in_flight(self) -> int:
        """Requests admitted but not yet settled at the app boundary."""
        return len(self._pending)

    @property
    def fault_stats(self) -> Dict[str, int]:
        """Fault-injection tallies over the *whole* run: the banked
        totals of closed iterations plus the live injector's (each
        iteration wires a fresh :class:`FaultInjector`)."""
        totals = dict(self._banked_fault_stats)
        injector = (getattr(self.session.controller, "faults", None)
                    if self.session is not None else None)
        if injector is not None:
            for key, value in injector.stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def tally(self) -> Dict[str, int]:
        """Verdict counts over every settled app record."""
        return dict(self.verdicts)

    def introspect(self) -> ControllerView:
        """The live iteration's controller view (protocol delegation)."""
        assert self.session is not None
        return self.session.introspect()

    def app_view(self) -> AppView:
        """The app-level audit declaration (see
        :class:`repro.protocol.AppView`); subclasses extend it with
        their guarantee's state (estimate, ids, ...)."""
        assert self.session is not None
        return AppView(
            name=self.name, iterations=self.iterations_run,
            size=self.tree.size, grants_banked=self.grants_banked,
            granted_total=self.granted_total,
            controller=self.session.controller)

    def audit(self, report: Optional[InvariantReport] = None
              ) -> InvariantReport:
        """Run the invariant auditor over the app and its live engine."""
        return audit_app(self, report)

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Ticket:
        """Admit one request; non-blocking.

        The ticket settles when the app pumps its engine
        (:meth:`drain`, :meth:`settle_all`, or ``Ticket.result()``)
        with the request's *final* verdict: PENDING outcomes are
        consumed by the iteration rollover and never surface.  Beyond
        ``spec.max_in_flight`` queued requests the ticket settles
        immediately as ``BACKPRESSURE`` and the engine never sees the
        request.
        """
        if self._closed:
            raise ControllerError("app session is closed")
        envelope, ticket = self._make_ticket(request)
        if len(self._pending) >= self.spec.max_in_flight:
            self._settle(envelope, ticket, None, SessionVerdict.BACKPRESSURE)
            return ticket
        self._pending.append((envelope, ticket))
        return ticket

    def submit_many(self, requests: Iterable[Request]) -> List[Ticket]:
        """Admit a batch of requests (one ticket each)."""
        return [self.submit(request) for request in requests]

    def serve(self, request: Request) -> OutcomeRecord:
        """Serve one request to completion, synchronously.

        Mirrors the legacy ``submit(request) -> Outcome`` loop: the
        request is served by the live iteration's controller; a PENDING
        outcome rolls the iteration and retries (Observation 2.1's
        resubmission, serialized).  Queued :meth:`submit` tickets are
        flushed first so settlement order stays submission order.  The
        record is returned directly and not re-yielded by
        :meth:`drain`.
        """
        if self._closed:
            raise ControllerError("app session is closed")
        while self._pending:
            self._pump()
        envelope_id = self._next_envelope
        self._next_envelope = envelope_id + 1
        submit_tick = float(self._clock)
        self._clock += 1
        while True:
            if self._sync:
                # Hot path: one controller call, one record (below).
                outcome = self._fast_handle(request)
            else:
                assert self.session is not None
                record = self.session.serve(request)
                assert record.outcome is not None
                outcome = record.outcome
            if outcome.status is not OutcomeStatus.PENDING:
                break
            granted_now = self._live_granted()
            self._roll_iteration()
            if granted_now == 0:
                self._require_progress()
        self._after_outcome(outcome)
        self._clock += 1
        self.verdicts[outcome.status.value] += 1
        return OutcomeRecord((request, envelope_id, submit_tick, outcome,
                              float(self._clock), None))

    def serve_stream(self, requests: Iterable[Request]
                     ) -> List[OutcomeRecord]:
        """Serve a request stream to completion, in stream order.

        The batched ingestion path (the apps-bench <= 5% overhead
        budget is measured here): the stream is consumed one request at
        a time — so a :class:`~repro.workloads.scenarios.TreeMirror`
        resolver may bind each request only after the previous one was
        applied — with the iteration rolled at the first PENDING, bit
        for bit the sequential serve loop's semantics; what is batched
        is the bookkeeping: per-chunk outcome tallies and one C-loop
        record construction, like :meth:`ControllerSession.serve_stream`.
        On the event-driven engine — where requests race and late
        binding is meaningless — the stream is queued whole and
        settled through the normal pump (rollover on termination),
        returned in stream order.  Admission control does not apply on
        either engine: the stream is *served*, not submitted, so no
        request of it is ever backpressured (the
        :meth:`ControllerSession.serve_stream` rule).  Served records
        are not re-yielded by :meth:`drain`.
        """
        if self._closed:
            raise ControllerError("app session is closed")
        while self._pending:
            self._pump()
        if not self._sync:
            # Served, not submitted: enqueue past the admission window
            # (going through submit() would backpressure the tail).
            tickets = []
            for request in requests:
                envelope, ticket = self._make_ticket(request)
                self._pending.append((envelope, ticket))
                tickets.append(ticket)
            return [ticket.result() for ticket in tickets]
        # Only dispatch the per-outcome hook when a subclass actually
        # overrides it (the base hook is a no-op).
        after = (self._after_outcome
                 if type(self)._after_outcome is not AppSession._after_outcome
                 else None)
        outcomes: List[Outcome] = []
        append = outcomes.append
        fast = self._fast_handle
        pending = OutcomeStatus.PENDING  # hoisted: checked per request
        for request in requests:
            outcome = fast(request)
            while outcome.status is pending:
                granted_now = self._live_granted()
                self._roll_iteration()
                if granted_now == 0:
                    self._require_progress()
                fast = self._fast_handle
                outcome = fast(request)
            if after is not None:
                after(outcome)
            append(outcome)
        count = len(outcomes)
        envelope_id = self._next_envelope
        clock = self._clock
        records = build_records(outcomes, envelope_id, clock, None)
        self._next_envelope = envelope_id + count
        self._clock = clock + 2 * count
        for status, value in Counter(
                outcome.status for outcome in outcomes).items():
            self.verdicts[status.value] += value
        return records

    def _make_ticket(self, request: Request
                     ) -> Tuple[RequestEnvelope, Ticket]:
        envelope = RequestEnvelope(envelope_id=self._next_envelope,
                                   request=request,
                                   submit_tick=float(self._clock))
        self._next_envelope += 1
        self._clock += 1
        return envelope, Ticket(envelope, pump=self._pump)

    # ------------------------------------------------------------------
    # Settlement.
    # ------------------------------------------------------------------
    def _settle(self, envelope: RequestEnvelope, ticket: Ticket,
                outcome: Optional[Outcome],
                verdict: SessionVerdict) -> None:
        self._clock += 1
        record = OutcomeRecord((envelope.request, envelope.envelope_id,
                                envelope.submit_tick, outcome,
                                float(self._clock), None))
        self.verdicts[verdict.value] += 1
        ticket._settle(record)
        self._ready.append((record, ticket))

    def _pump(self) -> bool:
        """One round of progress: push the queued requests through the
        live iteration, roll on PENDING, requeue the survivors.

        Returns False when there is nothing to do.  Each round settles
        at least one request or raises (a fresh iteration that can
        grant nothing cannot make progress; see
        :meth:`_require_progress`), so pumping terminates.
        """
        if self._closed:
            raise ControllerError("app session is closed")
        if not self._pending:
            return False
        # Never outgrow the inner session's admission window (the app
        # enforces its own window; the engine session must not answer
        # backpressure): oversized queues drain in window-sized rounds.
        assert self.session is not None
        window = self.session.config.max_in_flight
        if len(self._pending) > window:
            batch = [self._pending.popleft() for _ in range(window)]
        else:
            batch = list(self._pending)
            self._pending.clear()
        by_id = {envelope.request.request_id: (envelope, ticket)
                 for envelope, ticket in batch}
        session = self.session
        assert session is not None
        session.submit_many([envelope.request for envelope, _ in batch])
        still_pending: List[Tuple[RequestEnvelope, Ticket]] = []
        settled = 0
        for record in session.drain():
            outcome = record.outcome
            assert outcome is not None  # inner window is wide open
            pair = by_id.pop(outcome.request.request_id, None)
            if pair is None:
                raise ProtocolError(
                    "engine settled a request the app never queued")
            if outcome.status is OutcomeStatus.PENDING:
                still_pending.append(pair)
                continue
            self._after_outcome(outcome)
            self._settle(pair[0], pair[1], outcome, verdict_of(outcome))
            settled += 1
        if still_pending:
            granted_now = self._live_granted()
            self._roll_iteration()
            # Resubmissions go to the *front*: they were admitted
            # before anything still sitting in the queue.
            self._pending.extendleft(reversed(still_pending))
            if settled == 0 and granted_now == 0:
                self._require_progress()
        return True

    def _require_progress(self) -> None:
        """A whole iteration settled nothing and granted nothing: the
        contract cannot cover even one request, so resubmitting would
        loop forever.  Surface it instead."""
        raise ControllerError(
            f"app {self.name!r}: iteration {self.iterations_run - 1} "
            "closed without settling or granting anything; the "
            "iteration contract cannot make progress")

    def drain(self) -> Iterator[AppRecord]:
        """Pump the engine, yielding outcome records in settlement
        order interleaved with :class:`IterationRecord` boundary
        events (in stream position: a boundary precedes every record
        settled by the iteration it opens; the ``index=1`` record is
        emitted at construction and leads the first drain).

        Delivery of outcome records is exactly-once across
        ``Ticket.result()`` and the drain stream, exactly like
        :meth:`ControllerSession.drain`; boundary events are yielded
        once, to whichever drain reaches them first.
        """
        while True:
            while self._ready:
                record, ticket = self._ready.popleft()
                if ticket is not None and ticket.claimed:
                    continue
                yield record
            if not self._pending:
                return
            self._pump()

    def settle_all(self) -> List[AppRecord]:
        """Drain to quiescence; the full record-plus-boundary stream."""
        return list(self.drain())

    def outcomes(self) -> List[OutcomeRecord]:
        """``settle_all()`` filtered to outcome records only."""
        return [record for record in self.settle_all()
                if isinstance(record, OutcomeRecord)]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Detach the live engine and become inert.  Idempotent; queued
        requests are abandoned (their tickets never settle), so callers
        normally drain first."""
        if self._closed:
            return
        self._closed = True
        if self.session is not None:
            self.session.close()

    def detach(self) -> None:
        """Alias of :meth:`close` (the legacy app vocabulary)."""
        self.close()

    def __enter__(self) -> "AppSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(app={self.name!r}, "
                f"flavor={self.spec.flavor!r}, "
                f"iterations={self.iterations_run}, "
                f"granted={self.granted_total}, "
                f"in_flight={self.in_flight})")
