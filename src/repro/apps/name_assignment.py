"""The name-assignment protocol — Theorem 5.2.

Maintains a unique short identity ``id(v)`` at every node: at any time
all ids are distinct integers in ``[1, 4n]`` (so each is encoded with
``log n + O(1)`` bits).

Per iteration i (``N_i`` = size at iteration start):

1. a DFS traversal assigns the *temporary* ids ``3*N_i + DFS(v)``;
2. a second DFS traversal assigns the final ids ``DFS(v)`` — the detour
   through the temporary range keeps ids unique at every intermediate
   instant, because the ids inherited from iteration i-1 live in
   ``[1, 3*N_i]`` (proved by induction in Section 5.2);
3. a terminating ``(N_i/2, N_i/4)``-controller runs in *interval mode*:
   the root's permit pool is the serial range ``[N_i+1, 3N_i/2]``,
   every package carries an explicit sub-interval, splits halve it, and
   a newly inserted node takes its granted permit's serial as its id.

The iteration ends when the controller terminates; since at most
``N_i/2`` permits were granted, ``N_{i+1} >= N_i/2``, which keeps all
ids within ``[1, 4n]`` throughout.
"""

from dataclasses import replace
from typing import Any, ClassVar, Dict, Optional, Tuple

from repro.apps.base import AppSession
from repro.errors import ControllerError, InvariantViolation
from repro.protocol import AppView
from repro.service.appspec import AppSpec
from repro.tree.dynamic_tree import DynamicTree
from repro.tree.node import TreeNode
from repro.core.requests import Outcome


class NameAssignmentApp(AppSession):
    """Unique ids in ``[1, 4n]`` behind the app-session API.

    Name assignment (Theorem
    5.2): per iteration, the two-stage DFS relabel detours through the
    temporary range, and an ``(N_i/2, N_i/4)``-terminating controller
    runs in *interval mode* — the engine (synchronous or distributed;
    both thread intervals through package splits) hands every granted
    addition the serial it takes as its id.
    """

    name: ClassVar[str] = "name_assignment"

    def __init__(self, spec: AppSpec,
                 tree: Optional[DynamicTree] = None) -> None:
        self.ids: Dict[TreeNode, int] = {}
        self._first_iteration = True
        super().__init__(spec, tree)

    # ------------------------------------------------------------------
    # Iteration hooks.
    # ------------------------------------------------------------------
    def _iteration_contract(self, n_i: int
                            ) -> Tuple[int, int, int, Dict[str, Any]]:
        m_i = max(n_i // 2, 1)
        w_i = max(n_i // 4, 1)
        u_i = max(2 * n_i, 2)
        return m_i, w_i, u_i, {"track_intervals": True,
                               "interval_base": n_i}

    def _on_iteration_start(self, n_i: int) -> None:
        super()._on_iteration_start(n_i)
        # Count N_i (upcast + broadcast).
        self.counters.reset_moves += 2 * max(n_i - 1, 0)
        if self._first_iteration:
            # The initial identities are assumed to be [1, n_0]
            # (Section 5.2); a DFS assignment realizes the assumption.
            self._first_iteration = False
            for index, node in enumerate(self.tree.nodes(), start=1):
                self.ids[node] = index
        else:
            self._two_stage_relabel(n_i)

    def _two_stage_relabel(self, n_i: int) -> None:
        """The two DFS traversals of Section 5.2 (same DFS order; one
        full traversal — 2(n-1) messages — each)."""
        self.counters.reset_moves += 4 * max(n_i - 1, 0)
        order = list(self.tree.nodes())
        # Stage 1: move everyone into the temporary range (3N_i, 4N_i].
        for index, node in enumerate(order, start=1):
            self.ids[node] = 3 * n_i + index
        # Stage 2: settle into [1, N_i].
        for index, node in enumerate(order, start=1):
            self.ids[node] = index

    def _after_outcome(self, outcome: Outcome) -> None:
        # (Direct subclass of AppSession, whose hook is a no-op: not
        # chained — this runs once per settled request.)
        if not outcome.granted:
            return
        if outcome.new_node is not None:
            if outcome.serial is None:
                raise ControllerError(
                    "interval-mode controller returned no serial")
            self.ids[outcome.new_node] = outcome.serial
        if outcome.request.kind.is_removal:
            self.ids.pop(outcome.request.node, None)

    # ------------------------------------------------------------------
    # Public queries (the Theorem 5.2 guarantee).
    # ------------------------------------------------------------------
    def id_of(self, node: TreeNode) -> int:
        return self.ids[node]

    def check_invariants(self) -> None:
        """Ids unique and within [1, 4n] — the Theorem 5.2 guarantee."""
        seen = set()
        n = self.tree.size
        for node in self.tree.nodes():
            node_id = self.ids.get(node)
            if node_id is None:
                raise InvariantViolation(f"{node} has no id")
            if node_id in seen:
                raise InvariantViolation(f"duplicate id {node_id}")
            seen.add(node_id)
            if not 1 <= node_id <= 4 * n:
                raise InvariantViolation(
                    f"id {node_id} outside [1, {4 * n}] (n={n})")

    def app_view(self) -> AppView:
        return replace(
            super().app_view(),
            ids=tuple(self.ids[node] for node in self.tree.nodes()
                      if node in self.ids))
