"""The wall-clock shim: the one sanctioned door to real time.

Everything in this reproduction runs on *simulated* time — equal seeds
give bit-identical runs, which the differential benches and the grid
audit depend on.  The two places that legitimately touch the wall
clock go through this module, so the static analysis suite
(``determinism/wall-clock``) can allowlist exactly one module instead
of auditing call sites:

* the threaded ingestion gateway, whose throttle and latency ledger
  measure real elapsed seconds (:func:`monotonic`), and
* the bench harness, which times real performance
  (:func:`perf_counter`).

Deterministic tests replace the clock by injection (``Gateway(...,
clock=counter)``) — nothing here is patched, only bypassed.
"""

import time
from typing import Callable

__all__ = ["Clock", "monotonic", "perf_counter"]

#: A zero-argument float clock, the shape every consumer accepts.
Clock = Callable[[], float]

#: Monotonic wall clock for rate/latency measurement (never steps back).
monotonic: Clock = time.monotonic

#: Highest-resolution wall clock, for benchmarking only.
perf_counter: Clock = time.perf_counter
