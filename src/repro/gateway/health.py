"""Health and heartbeat probes for the gateway.

A :class:`HealthReport` is one liveness snapshot assembled from signals
the stack already exposes — the circuit breaker's state, the leveling
queue's depth, the engine scheduler's backlog
(:meth:`repro.sim.scheduler.Scheduler.pending`), and the fault
injector's running tallies (:attr:`repro.distributed.faults.
FaultInjector.stats`) — plus the pump heartbeat (how long since a pump
cycle last completed).  The report is a frozen value: probes are reads,
never actions, so a health endpoint can poll from any thread without
touching engine state.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping


@dataclass(frozen=True)
class HealthReport:
    """One point-in-time health probe of a gateway (see module doc).

    ``healthy`` is the roll-up the heartbeat pattern prescribes: the
    gateway is open for business (not closed), its breaker is not OPEN
    (HALF_OPEN counts as healthy — it is accepting probes), and the
    leveling queue is not saturated.
    """

    healthy: bool
    closed: bool
    breaker: str
    queue_depth: int
    queue_capacity: int
    in_flight: int
    scheduler_backlog: int
    tokens: float
    heartbeat_age: float
    fault_stats: Mapping[str, int] = field(default_factory=dict)

    @property
    def queue_saturated(self) -> bool:
        return self.queue_depth >= self.queue_capacity

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable description of the probe."""
        return {
            "healthy": self.healthy,
            "closed": self.closed,
            "breaker": self.breaker,
            "queue_depth": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "in_flight": self.in_flight,
            "scheduler_backlog": self.scheduler_backlog,
            "tokens": round(self.tokens, 3),
            "heartbeat_age": round(self.heartbeat_age, 6),
            "fault_stats": dict(self.fault_stats),
        }
