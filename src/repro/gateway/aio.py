"""The asyncio front door (:class:`AsyncGateway`).

A thin adapter over the threaded :class:`~repro.gateway.gateway.
Gateway`: admission stays the gateway's own non-blocking ``submit``
(safe straight from the event loop), settlement waits ride
``asyncio.wrap_future`` over each ticket's future, and the pump runs on
the gateway's worker thread.  That split is deliberate — the engine
(controller, scheduler, fault injector) is synchronous Python, so the
event loop must never run it inline; the worker thread *is* the
thread-pool fallback the gateway ships with, and asyncio merely awaits
its settlements.

Usage::

    async with AsyncGateway(session, config) as front:
        tickets = [front.submit(request) for request in burst]
        settled = await asyncio.gather(*(t.aresult() for t in tickets))

``serve`` is the convenience for whole streams: it submits an iterable
of requests (optionally pacing submissions to let the throttle refill)
and returns the settled tickets in submission order.
"""

import asyncio
from typing import Iterable, List, Optional

from repro.errors import ConfigError
from repro.core.requests import Request
from repro.gateway.config import GatewayConfig
from repro.gateway.gateway import Gateway, GatewayTicket, IngestionBackend


class AsyncGateway:
    """Async context manager over a worker-pumped :class:`Gateway`.

    Accepts either a ready-made gateway or the pieces to build one.
    Entering the context starts the pump worker; leaving stops it and
    closes the gateway (open tickets abort with
    :class:`~repro.errors.GatewayError` rather than hanging their
    awaiters).
    """

    def __init__(self, session: Optional[IngestionBackend] = None,
                 config: Optional[GatewayConfig] = None,
                 gateway: Optional[Gateway] = None) -> None:
        if gateway is None:
            if session is None:
                raise ConfigError("AsyncGateway needs a session or a gateway")
            gateway = Gateway(session, config)
        self.gateway = gateway

    # ------------------------------------------------------------------
    async def __aenter__(self) -> "AsyncGateway":
        self.gateway.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await asyncio.to_thread(self.gateway.close)

    # ------------------------------------------------------------------
    def submit(self, request: Request,
               client: Optional[str] = None) -> GatewayTicket:
        """Admit one request; non-blocking, event-loop safe."""
        return self.gateway.submit(request, client=client)

    async def settle(self, ticket: GatewayTicket) -> GatewayTicket:
        """Await one ticket's settlement."""
        return await ticket.aresult()

    async def serve(self, requests: Iterable[Request],
                    client: Optional[str] = None,
                    pace: float = 0.0) -> List[GatewayTicket]:
        """Submit a stream and await every settlement.

        ``pace`` seconds of ``asyncio.sleep`` between submissions lets
        a throttled gateway's bucket refill (0 submits the whole stream
        at once — the burst case).  Returns tickets in submission
        order; refused tickets are already settled when returned.
        """
        tickets: List[GatewayTicket] = []
        for request in requests:
            tickets.append(self.submit(request, client=client))
            if pace > 0:
                await asyncio.sleep(pace)
        # Refused tickets settle at submission, so gathering the whole
        # list only ever waits on the accepted ones.
        await asyncio.gather(*(ticket.aresult() for ticket in tickets))
        return tickets

    async def join(self, timeout: Optional[float] = None) -> bool:
        """Await full drain of the leveling queue and engine batch."""
        return await asyncio.to_thread(self.gateway.join, timeout)
