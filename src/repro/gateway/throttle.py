"""Token-bucket throttling (the rate-limiting half of admission).

The bucket is a pure state machine over an *explicit* clock: callers
pass ``now`` into every operation, so the same code runs against
``time.monotonic()`` in the threaded gateway and against a counter in
the deterministic property tests.  Refill is continuous (``rate``
tokens per clock unit, capped at ``burst``), the classic
throttling/rate-limiting pattern: short bursts ride on the stored
tokens, sustained overload is shed at exactly ``rate``.
"""

from typing import Optional


class TokenBucket:
    """A token bucket over an explicit clock.

    ``rate <= 0`` builds an unlimited bucket: :meth:`try_take` always
    succeeds and :meth:`available` reports ``burst``.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last")

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = max(float(rate), 0.0)
        self.burst = float(burst)
        self._tokens = self.burst
        self._last: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._last is None:
            self._last = now
            return
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst,
                               self._tokens + elapsed * self.rate)
            self._last = now

    def available(self, now: float) -> float:
        """Tokens on hand after refilling to ``now``."""
        if self.rate == 0:
            return self.burst
        self._refill(now)
        return self._tokens

    def try_take(self, now: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if the bucket holds them; else refuse.

        Refusal does not partially drain the bucket — a shed request
        costs the caller nothing and the bucket nothing.
        """
        if self.rate == 0:
            return True
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def __repr__(self) -> str:
        return (f"TokenBucket(rate={self.rate}, burst={self.burst}, "
                f"tokens={self._tokens:.2f})")
