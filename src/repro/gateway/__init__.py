"""repro.gateway — the async ingestion gateway (the concurrent front
door over one session).

Layer map (queue -> throttle -> breaker -> session; full lifecycle in
``docs/architecture.md`` §9):

* :class:`~repro.gateway.gateway.Gateway` — thread-safe admission, a
  bounded leveling queue, and the single batched pump that feeds the
  session; runs inline (``pump``/``run_until_idle``) or on a worker
  thread (``start``/``stop``).
* :class:`~repro.gateway.aio.AsyncGateway` — the asyncio adapter over
  the worker-pumped gateway.
* :class:`~repro.gateway.config.GatewayConfig` — frozen, validated
  policy (queue bound, batch size, token bucket, breaker, heartbeat).
* :class:`~repro.gateway.throttle.TokenBucket`,
  :class:`~repro.gateway.breaker.CircuitBreaker` /
  :class:`~repro.gateway.breaker.BreakerState`,
  :class:`~repro.gateway.health.HealthReport` — the admission-layer
  state machines and the health probe value.
* :class:`~repro.gateway.gateway.GatewayStats`,
  :class:`~repro.gateway.gateway.GatewayTicket` — the conservation
  ledger and the exactly-once client handle.
"""

from repro.gateway.aio import AsyncGateway
from repro.gateway.breaker import BreakerState, CircuitBreaker
from repro.gateway.config import GatewayConfig
from repro.gateway.gateway import (
    Gateway,
    GatewayStats,
    GatewayTicket,
    IngestionBackend,
)
from repro.gateway.health import HealthReport
from repro.gateway.throttle import TokenBucket

__all__ = [
    "AsyncGateway",
    "BreakerState",
    "CircuitBreaker",
    "Gateway",
    "GatewayConfig",
    "GatewayStats",
    "GatewayTicket",
    "HealthReport",
    "IngestionBackend",
    "TokenBucket",
]
