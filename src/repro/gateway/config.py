"""Gateway configuration: frozen, validated, serializable.

A :class:`GatewayConfig` describes the whole front door in one frozen
value — the leveling queue bound, the pump batch size, the token-bucket
throttle, the circuit-breaker policy, and the health heartbeat — with
the same eager-validation discipline as
:class:`repro.service.config.SessionConfig` (every mistake raises
:class:`repro.errors.ConfigError` before any gateway state exists).

The three admission layers are deliberately distinct, and each failure
mode has its own verdict:

* **throttle** (token bucket): the request *rate* exceeded policy —
  verdict ``SHED``;
* **breaker** (circuit breaker): the backend is unhealthy (stall
  storms, fault-plan churn) — verdict ``SHED``;
* **leveling queue** (bounded): the queue is momentarily full —
  verdict ``BACKPRESSURE``, the same vocabulary the session layer
  already speaks.
"""

import math
from dataclasses import dataclass, fields, replace
from typing import Any, Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class GatewayConfig:
    """Everything a :class:`~repro.gateway.gateway.Gateway` needs.

    Parameters
    ----------
    queue_capacity:
        The leveling-queue bound: how many accepted requests may wait
        for the pump before ``submit`` answers ``BACKPRESSURE``.
    batch_size:
        How many queued requests one pump cycle hands to the session's
        ``submit_many`` (load leveling: many client streams, one
        batched engine feed).
    rate / burst:
        The token-bucket throttle: sustained admissions per clock unit
        and the bucket capacity (the tolerated burst).  ``rate=0``
        disables throttling (the bucket always has a token).
    breaker_latency:
        The per-request failure threshold, in *session clock* units
        (simulated time on the event-driven engine): a settled record
        whose ``latency`` exceeds this counts as a breaker failure, as
        does a ``PENDING`` verdict.  ``math.inf`` disables the breaker.
    breaker_failures:
        Consecutive failures that trip the breaker CLOSED -> OPEN.
    breaker_cooldown:
        Pump cycles the breaker stays OPEN before probing (HALF_OPEN).
    breaker_probes:
        Probe requests admitted in HALF_OPEN; all must succeed to close
        the breaker, one failure re-opens it.
    heartbeat_every:
        Pump cycles between health heartbeats (the probe layer flags a
        pump that stopped beating).
    record_latencies:
        Keep per-request wall-clock latencies for the bench percentiles
        (a list that grows with the run; switch off for soak runs).
    """

    queue_capacity: int = 1024
    batch_size: int = 64
    rate: float = 0.0
    burst: int = 64
    breaker_latency: float = math.inf
    breaker_failures: int = 8
    breaker_cooldown: int = 4
    breaker_probes: int = 2
    heartbeat_every: int = 1
    record_latencies: bool = True

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.rate < 0:
            raise ConfigError(f"rate must be >= 0, got {self.rate}")
        if self.burst < 1:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")
        if self.breaker_latency <= 0:
            raise ConfigError(
                f"breaker_latency must be > 0, got {self.breaker_latency}")
        if self.breaker_failures < 1:
            raise ConfigError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}")
        if self.breaker_cooldown < 1:
            raise ConfigError(
                f"breaker_cooldown must be >= 1, got {self.breaker_cooldown}")
        if self.breaker_probes < 1:
            raise ConfigError(
                f"breaker_probes must be >= 1, got {self.breaker_probes}")
        if self.heartbeat_every < 1:
            raise ConfigError(
                f"heartbeat_every must be >= 1, got {self.heartbeat_every}")

    @property
    def throttled(self) -> bool:
        """True when the token bucket actually polices admissions."""
        return self.rate > 0

    @property
    def breaker_enabled(self) -> bool:
        """True when the latency threshold can ever count a failure."""
        return math.isfinite(self.breaker_latency)

    def with_breaker(self, latency: float, failures: int = 4,
                     cooldown: int = 2, probes: int = 2) -> "GatewayConfig":
        """A copy with the circuit breaker armed."""
        return replace(self, breaker_latency=latency,
                       breaker_failures=failures,
                       breaker_cooldown=cooldown, breaker_probes=probes)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable description of the full configuration."""
        out: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = repr(value) if value == math.inf else value
        return out
