"""The ingestion gateway: a concurrent front door over one session.

``Gateway`` multiplexes many concurrent client streams into batched
feeds of a single :class:`~repro.service.session.ControllerSession` (or
:class:`~repro.apps.base.AppSession`).  The engine stays strictly
single-caller — only the pump ever touches it — while admission is
thread-safe and non-blocking.  Three layers, in order:

1. **token-bucket throttle** (:mod:`repro.gateway.throttle`) — over
   rate: the ticket settles immediately with ``SHED``;
2. **circuit breaker** (:mod:`repro.gateway.breaker`) — backend
   unhealthy: ``SHED`` (with HALF_OPEN probe admissions);
3. **bounded leveling queue** — full: ``BACKPRESSURE``, the session
   layer's own saturation vocabulary.

Accepted tickets wait in the leveling queue; each **pump cycle** pops
up to ``batch_size`` of them, hands the whole batch to the session's
``submit_many``, settles the corresponding gateway tickets as the
engine resolves them, and feeds the breaker with latency verdicts.  The
pump runs wherever the embedder wants it: call :meth:`Gateway.pump` /
:meth:`run_until_idle` inline (deterministic tests, benches), or
:meth:`start` a worker thread (live serving; the asyncio front door in
:mod:`repro.gateway.aio` rides on the same worker).

Every accepted envelope settles **exactly once**: a
:class:`GatewayTicket` resolves with a verdict-and-record exactly one
time, a gateway shutdown aborts still-open tickets with
:class:`~repro.errors.GatewayError` instead of leaving them to block
forever, and :func:`repro.metrics.invariants.audit_gateway`
machine-checks the conservation ledger
(``submitted = accepted + shed + backpressured`` and
``accepted = settled + aborted + open``).
"""

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
)

from repro.clock import monotonic
from repro.core.requests import Request
from repro.errors import ConfigError, GatewayError, ReproError
from repro.gateway.breaker import ADMIT, PROBE, BreakerState, CircuitBreaker
from repro.gateway.config import GatewayConfig
from repro.gateway.health import HealthReport
from repro.gateway.throttle import TokenBucket
from repro.metrics.invariants import InvariantReport
from repro.service.envelopes import (
    IterationRecord,
    OutcomeRecord,
    SessionVerdict,
    Ticket,
)


class IngestionBackend(Protocol):
    """What the gateway needs from a session (structurally typed):
    batch submission, a drain stream, verdict tallies, and the
    protocol-based audit hook.  Both ``ControllerSession`` and
    ``AppSession`` satisfy it."""

    def submit_many(self, requests: Iterable[Request]) -> List[Ticket]:
        ...

    def drain(self) -> Iterator[object]:
        ...

    def tally(self) -> Dict[str, int]:
        ...

    def audit(self, report: Optional[InvariantReport] = None
              ) -> InvariantReport:
        ...


def _empty_verdicts() -> Dict[str, int]:
    return {verdict.value: 0 for verdict in SessionVerdict}


@dataclass
class GatewayStats:
    """The gateway's running ledger (one instance per gateway).

    Admission: ``submitted = accepted + shed_throttle + shed_breaker +
    backpressured``.  Settlement: ``accepted = settled + aborted +
    open`` (``open`` is the live queue plus the in-engine batch, read
    off the gateway).  ``verdicts`` tallies every settled ticket by its
    :class:`~repro.service.envelopes.SessionVerdict` value, including
    the gateway-level ``shed``/``backpressure`` refusals.
    ``double_settles`` counts attempts to settle an already-settled
    ticket — always 0 unless exactly-once broke.
    """

    submitted: int = 0
    accepted: int = 0
    shed_throttle: int = 0
    shed_breaker: int = 0
    backpressured: int = 0
    settled: int = 0
    aborted: int = 0
    double_settles: int = 0
    batches: int = 0
    cycles: int = 0
    heartbeats: int = 0
    iterations: int = 0
    probes: int = 0
    max_queue_depth: int = 0
    max_batch: int = 0
    breaker_trips: int = 0
    breaker_recoveries: int = 0
    breaker_state: str = BreakerState.CLOSED.value
    verdicts: Dict[str, int] = field(default_factory=_empty_verdicts)

    @property
    def shed(self) -> int:
        """Total gateway-level sheds (throttle + breaker)."""
        return self.shed_throttle + self.shed_breaker

    @property
    def granted(self) -> int:
        return self.verdicts[SessionVerdict.GRANTED.value]

    @property
    def rejected(self) -> int:
        return self.verdicts[SessionVerdict.REJECTED.value]

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable description of the ledger."""
        return {
            "submitted": self.submitted, "accepted": self.accepted,
            "shed_throttle": self.shed_throttle,
            "shed_breaker": self.shed_breaker,
            "backpressured": self.backpressured,
            "settled": self.settled, "aborted": self.aborted,
            "double_settles": self.double_settles,
            "batches": self.batches, "cycles": self.cycles,
            "heartbeats": self.heartbeats, "iterations": self.iterations,
            "probes": self.probes,
            "max_queue_depth": self.max_queue_depth,
            "max_batch": self.max_batch,
            "breaker_trips": self.breaker_trips,
            "breaker_recoveries": self.breaker_recoveries,
            "breaker_state": self.breaker_state,
            "verdicts": dict(self.verdicts),
        }


class GatewayTicket:
    """One client request's handle through the gateway.

    Settles exactly once — either with a verdict (and, for requests
    that reached the engine, the session's
    :class:`~repro.service.envelopes.OutcomeRecord`) or exceptionally
    when the gateway aborts.  :meth:`result` blocks (thread clients),
    :meth:`aresult` awaits (asyncio clients); both are idempotent
    reads after settlement.
    """

    __slots__ = ("seq", "request", "client", "probe", "submit_wall",
                 "settle_wall", "verdict", "record", "_future")

    def __init__(self, seq: int, request: Request,
                 client: Optional[str], submit_wall: float) -> None:
        self.seq = seq
        self.request = request
        self.client = client
        #: True when the breaker admitted this request as a HALF_OPEN
        #: probe (its settlement decides recovery vs re-trip).
        self.probe = False
        self.submit_wall = submit_wall
        self.settle_wall: Optional[float] = None
        self.verdict: Optional[SessionVerdict] = None
        self.record: Optional[OutcomeRecord] = None
        self._future: "Future[GatewayTicket]" = Future()

    @property
    def done(self) -> bool:
        return self._future.done()

    @property
    def latency_wall(self) -> Optional[float]:
        """Wall-clock submit-to-settle, in gateway clock units."""
        if self.settle_wall is None:
            return None
        return self.settle_wall - self.submit_wall

    def _settle(self, verdict: SessionVerdict,
                record: Optional[OutcomeRecord], wall: float) -> bool:
        """Resolve the ticket; False when it was already resolved."""
        if self._future.done():
            return False
        self.verdict = verdict
        self.record = record
        self.settle_wall = wall
        self._future.set_result(self)
        return True

    def _abort(self, error: BaseException) -> bool:
        if self._future.done():
            return False
        self._future.set_exception(error)
        return True

    def result(self, timeout: Optional[float] = None) -> "GatewayTicket":
        """Block until settled (or ``timeout`` seconds); returns self.

        Raises :class:`~repro.errors.GatewayError` if the gateway
        aborted this request (shutdown, engine failure)."""
        self._future.result(timeout)
        return self

    async def aresult(self) -> "GatewayTicket":
        """Awaitable :meth:`result` for asyncio clients."""
        import asyncio

        await asyncio.wrap_future(self._future)
        return self

    def __repr__(self) -> str:
        state = self.verdict.value if self.verdict is not None else (
            "aborted" if self.done else "in-flight")
        return f"GatewayTicket(seq={self.seq}, {state})"


#: Verdict values that count as engine failures for the breaker: an
#: exhausted terminating engine surfacing PENDING is a backend-health
#: signal, exactly like a latency blow-up.
_FAILURE_VERDICTS = (SessionVerdict.PENDING,)


class Gateway:
    """The concurrent front door over one session (see module doc).

    Parameters
    ----------
    session:
        The backend — a :class:`~repro.service.session.ControllerSession`
        or :class:`~repro.apps.base.AppSession`.  The gateway becomes
        its only caller; its admission window must be at least the
        gateway's ``batch_size`` (the gateway owns admission, the
        session must never answer ``BACKPRESSURE`` underneath it).
    config:
        The :class:`~repro.gateway.config.GatewayConfig`; defaults are
        a wide-open, unthrottled, breaker-disarmed gateway.
    clock:
        The wall clock (:data:`repro.clock.monotonic` by default).
        Deterministic
        tests inject a counter; the throttle and the latency ledger
        use whatever scale this returns.
    """

    def __init__(self, session: IngestionBackend,
                 config: Optional[GatewayConfig] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.session = session
        self.config = config if config is not None else GatewayConfig()
        self._clock = clock if clock is not None else monotonic
        window = self._session_window(session)
        if window is not None and window < self.config.batch_size:
            raise ConfigError(
                f"the session's admission window ({window}) is smaller "
                f"than the gateway batch size ({self.config.batch_size}); "
                "the gateway owns admission — build the session with a "
                "wide-open max_in_flight")
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._queue: Deque[GatewayTicket] = deque()
        self._engine_batch: List[GatewayTicket] = []
        self._bucket = TokenBucket(self.config.rate, self.config.burst)
        self._breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            cooldown=self.config.breaker_cooldown,
            probe_quota=self.config.breaker_probes)
        self._stats = GatewayStats()
        #: Wall-clock and session-clock latencies of engine-settled
        #: tickets, for the bench percentiles (see
        #: ``config.record_latencies``).
        self.latencies_wall: List[float] = []
        self.latencies_session: List[float] = []
        self._seq = 0
        self._last_beat = self._clock()
        self._closed = False
        self._failure: Optional[BaseException] = None
        self._worker: Optional[threading.Thread] = None
        self._work = threading.Event()
        self._stop_flag = threading.Event()

    @staticmethod
    def _session_window(session: IngestionBackend) -> Optional[int]:
        for owner in ("config", "spec"):
            holder = getattr(session, owner, None)
            window = getattr(holder, "max_in_flight", None)
            if window is not None:
                return int(window)
        return None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def stats(self) -> GatewayStats:
        """The live ledger (breaker mirrors refreshed on read)."""
        with self._lock:
            self._stats.breaker_trips = self._breaker.trips
            self._stats.breaker_recoveries = self._breaker.recoveries
            self._stats.breaker_state = self._breaker.state.value
            return self._stats

    @property
    def breaker_state(self) -> BreakerState:
        with self._lock:
            return self._breaker.state

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def open_requests(self) -> int:
        """Accepted but not yet settled: queued plus in-engine."""
        with self._lock:
            return len(self._queue) + len(self._engine_batch)

    def tally(self) -> Dict[str, int]:
        """Verdict counts over every settled gateway ticket."""
        with self._lock:
            return dict(self._stats.verdicts)

    def health(self) -> HealthReport:
        """One health/heartbeat probe (reads only; any thread)."""
        with self._lock:
            scheduler = getattr(self.session, "scheduler", None)
            controller = getattr(self.session, "controller", None)
            if scheduler is None or controller is None:
                # AppSession: the live iteration's inner session.
                inner = getattr(self.session, "session", None)
                scheduler = scheduler or getattr(inner, "scheduler", None)
                controller = controller or getattr(inner, "controller",
                                                   None)
            backlog = int(scheduler.pending()) if scheduler is not None \
                else 0
            injector = getattr(controller, "faults", None)
            fault_stats: Dict[str, int] = (
                dict(injector.stats) if injector is not None
                else dict(getattr(self.session, "fault_stats", {})))
            depth = len(self._queue)
            saturated = depth >= self.config.queue_capacity
            state = self._breaker.state
            return HealthReport(
                healthy=(not self._closed
                         and state is not BreakerState.OPEN
                         and not saturated),
                closed=self._closed,
                breaker=state.value,
                queue_depth=depth,
                queue_capacity=self.config.queue_capacity,
                in_flight=depth + len(self._engine_batch),
                scheduler_backlog=backlog,
                tokens=self._bucket.available(self._clock()),
                heartbeat_age=self._clock() - self._last_beat,
                fault_stats=fault_stats,
            )

    def audit(self, report: Optional[InvariantReport] = None
              ) -> InvariantReport:
        """Gateway conservation plus the backend's own audit (see
        :func:`repro.metrics.invariants.audit_gateway`)."""
        from repro.metrics.invariants import audit_gateway

        return audit_gateway(self, report)

    # ------------------------------------------------------------------
    # Admission (thread-safe, non-blocking).
    # ------------------------------------------------------------------
    def submit(self, request: Request,
               client: Optional[str] = None) -> GatewayTicket:
        """Admit one request; never blocks.

        Throttle, breaker, then queue: a refusal settles the ticket
        immediately (``SHED`` / ``BACKPRESSURE``), an acceptance
        enqueues it for the pump.  Safe from any thread.
        """
        with self._lock:
            if self._closed:
                raise GatewayError(
                    "gateway is closed" if self._failure is None
                    else f"gateway aborted: {self._failure}")
            now = self._clock()
            ticket = GatewayTicket(self._seq, request, client, now)
            self._seq += 1
            self._stats.submitted += 1
            decision = self._breaker.admit()
            if decision not in (ADMIT, PROBE):
                self._stats.shed_breaker += 1
                self._refuse(ticket, SessionVerdict.SHED, now)
                return ticket
            if not self._bucket.try_take(now):
                self._stats.shed_throttle += 1
                self._refuse(ticket, SessionVerdict.SHED, now)
                return ticket
            if len(self._queue) >= self.config.queue_capacity:
                self._stats.backpressured += 1
                self._refuse(ticket, SessionVerdict.BACKPRESSURE, now)
                return ticket
            if decision == PROBE:
                ticket.probe = True
                self._stats.probes += 1
            self._stats.accepted += 1
            self._queue.append(ticket)
            depth = len(self._queue)
            if depth > self._stats.max_queue_depth:
                self._stats.max_queue_depth = depth
            self._work.set()
            return ticket

    def submit_many(self, requests: Iterable[Request],
                    client: Optional[str] = None) -> List[GatewayTicket]:
        """Admit a batch (one ticket each; same admission per request)."""
        return [self.submit(request, client=client) for request in requests]

    def _refuse(self, ticket: GatewayTicket, verdict: SessionVerdict,
                now: float) -> None:
        self._stats.verdicts[verdict.value] += 1
        if not ticket._settle(verdict, None, now):
            self._stats.double_settles += 1

    # ------------------------------------------------------------------
    # The pump (load leveling: one batched engine feed).
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """One pump cycle; returns how many tickets it settled.

        Pops up to ``batch_size`` tickets from the leveling queue,
        feeds the batch to the session, settles the gateway tickets in
        engine-settlement order, and consumes any app iteration
        boundaries.  Engine access is single-threaded by construction:
        only the pump owner (worker thread or inline caller) runs this.
        """
        with self._lock:
            if self._closed:
                return 0
            self._stats.cycles += 1
            self._breaker.on_cycle()
            if self._stats.cycles % self.config.heartbeat_every == 0:
                self._stats.heartbeats += 1
                self._last_beat = self._clock()
            batch: List[GatewayTicket] = []
            while self._queue and len(batch) < self.config.batch_size:
                batch.append(self._queue.popleft())
            if not batch:
                return 0
            self._stats.batches += 1
            if len(batch) > self._stats.max_batch:
                self._stats.max_batch = len(batch)
            self._engine_batch = batch
        try:
            # Engine calls happen outside the admission lock, so client
            # threads keep submitting while the batch settles.
            inner = self.session.submit_many(
                [ticket.request for ticket in batch])
            for gateway_ticket, session_ticket in zip(batch, inner):
                record = session_ticket.result()
                self._settle_engine(gateway_ticket, record)
            for event in self.session.drain():
                if isinstance(event, IterationRecord):
                    with self._lock:
                        self._stats.iterations += 1
        except ReproError as error:
            self._abort(error)
            raise
        finally:
            with self._lock:
                self._engine_batch = []
                self._idle.notify_all()
        return len(batch)

    def _settle_engine(self, ticket: GatewayTicket,
                       record: OutcomeRecord) -> None:
        with self._lock:
            now = self._clock()
            verdict = record.verdict
            self._stats.settled += 1
            self._stats.verdicts[verdict.value] += 1
            if not ticket._settle(verdict, record, now):
                self._stats.double_settles += 1
            if self.config.breaker_enabled:
                ok = (record.latency <= self.config.breaker_latency
                      and verdict not in _FAILURE_VERDICTS)
                self._breaker.record(ok, probe=ticket.probe)
            if self.config.record_latencies:
                self.latencies_wall.append(now - ticket.submit_wall)
                self.latencies_session.append(float(record.latency))

    def run_until_idle(self) -> int:
        """Pump until the queue is empty; total tickets settled.

        The inline (manual) serving mode for deterministic tests and
        benches; the worker thread runs the same loop."""
        total = 0
        while True:
            settled = self.pump()
            if settled == 0:
                return total
            total += settled

    # ------------------------------------------------------------------
    # Worker thread (live serving; the asyncio front rides on this).
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        worker = self._worker
        return worker is not None and worker.is_alive()

    def start(self) -> "Gateway":
        """Start the background pump; idempotent while running."""
        with self._lock:
            if self._closed:
                raise GatewayError("gateway is closed")
            if self.running:
                return self
            self._stop_flag.clear()
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-gateway-pump",
                daemon=True)
            self._worker.start()
            return self

    def _worker_loop(self) -> None:
        while not self._stop_flag.is_set():
            try:
                if self.pump() == 0:
                    self._work.clear()
                    # Idle heartbeat cadence: wake periodically even
                    # without submissions so the health probe's
                    # heartbeat age stays bounded.
                    self._work.wait(timeout=0.005)
            except ReproError:
                return  # _abort already settled every open ticket

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the worker (queued requests stay queued; ``close``
        aborts them, a later ``start``/``pump`` would serve them)."""
        worker = self._worker
        self._stop_flag.set()
        self._work.set()
        if worker is not None:
            worker.join(timeout)
            self._worker = None

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted ticket has settled (the queue and
        the engine are empty); False on timeout."""
        with self._idle:
            return self._idle.wait_for(
                lambda: (not self._queue and not self._engine_batch)
                or self._closed,
                timeout)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def _abort(self, error: BaseException) -> None:
        """Engine failure: settle every open ticket exceptionally so no
        client blocks forever, and refuse further admissions."""
        with self._lock:
            self._failure = error
            self._closed = True
            open_tickets = list(self._engine_batch) + list(self._queue)
            self._queue.clear()
            self._engine_batch = []
            for ticket in open_tickets:
                if ticket._abort(GatewayError(
                        f"request aborted by gateway failure: {error}")):
                    self._stats.aborted += 1
            self._idle.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop the worker and abort still-open tickets.  Idempotent.
        The session is left attached (the gateway does not own it)."""
        if self._closed:
            self.stop(timeout=1.0)
            return
        self.stop()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            leftovers = list(self._engine_batch) + list(self._queue)
            self._queue.clear()
            self._engine_batch = []
            for ticket in leftovers:
                if ticket._abort(GatewayError(
                        "gateway closed before the request settled")):
                    self._stats.aborted += 1
            self._idle.notify_all()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Gateway(queue={len(self._queue)}/"
                f"{self.config.queue_capacity}, "
                f"breaker={self._breaker.state.value}, "
                f"settled={self._stats.settled}, "
                f"running={self.running})")
