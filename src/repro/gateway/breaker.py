"""Per-session circuit breaker (the health half of admission).

The classic three-state machine, driven entirely by deterministic
inputs so tests can replay it tick for tick:

* **CLOSED** — requests flow; every settled record feeds
  :meth:`CircuitBreaker.record` (a failure is a stall-storm-shaped
  settlement: latency above the configured threshold, or a ``PENDING``
  verdict).  ``breaker_failures`` *consecutive* failures trip the
  breaker.
* **OPEN** — requests are shed at admission (verdict ``SHED``), the
  backend gets room to recover.  The breaker's clock is the pump
  cycle: after ``breaker_cooldown`` cycles it moves to HALF_OPEN.
* **HALF_OPEN** — up to ``breaker_probes`` probe requests are admitted
  (everything else is still shed).  All probes succeeding closes the
  breaker (a *recovery*); any probe failing re-opens it (a new trip,
  fresh cooldown).

The machine never touches wall clocks or threads; the gateway calls
:meth:`on_cycle` once per pump cycle, :meth:`admit` per submission, and
:meth:`record` per settlement, all under the gateway's admission lock.
"""

from enum import Enum


class BreakerState(Enum):
    """Where the circuit breaker stands."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Admission decisions (:meth:`CircuitBreaker.admit`).
ADMIT = "admit"
PROBE = "probe"
SHED = "shed"


class CircuitBreaker:
    """The CLOSED/OPEN/HALF_OPEN machine (see module docstring).

    ``failures=0``-style disabling is the caller's job (an unarmed
    gateway simply never reports a failure, so the breaker never
    trips); the machine itself is always live.
    """

    __slots__ = ("failure_threshold", "cooldown", "probe_quota",
                 "state", "trips", "recoveries",
                 "_consecutive_failures", "_cycles_open",
                 "_probes_issued", "_probes_succeeded")

    def __init__(self, failure_threshold: int, cooldown: int,
                 probe_quota: int) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.probe_quota = probe_quota
        self.state = BreakerState.CLOSED
        #: CLOSED -> OPEN transitions, including HALF_OPEN re-trips.
        self.trips = 0
        #: HALF_OPEN -> CLOSED transitions (all probes succeeded).
        self.recoveries = 0
        self._consecutive_failures = 0
        self._cycles_open = 0
        self._probes_issued = 0
        self._probes_succeeded = 0

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self.trips += 1
        self._cycles_open = 0
        self._consecutive_failures = 0

    def _close(self) -> None:
        self.state = BreakerState.CLOSED
        self.recoveries += 1
        self._consecutive_failures = 0

    # ------------------------------------------------------------------
    def admit(self) -> str:
        """One admission decision: ``ADMIT``, ``PROBE``, or ``SHED``.

        A ``PROBE`` answer consumes one unit of the half-open quota;
        the caller must tag the request so its settlement comes back
        through :meth:`record` with ``probe=True``.
        """
        if self.state is BreakerState.CLOSED:
            return ADMIT
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_issued < self.probe_quota:
                self._probes_issued += 1
                return PROBE
            return SHED
        return SHED

    def on_cycle(self) -> None:
        """One pump cycle elapsed (the breaker's only clock)."""
        if self.state is BreakerState.OPEN:
            self._cycles_open += 1
            if self._cycles_open >= self.cooldown:
                self.state = BreakerState.HALF_OPEN
                self._probes_issued = 0
                self._probes_succeeded = 0

    def record(self, ok: bool, probe: bool = False) -> None:
        """One settlement landed; feed the failure detector.

        Probe settlements drive the HALF_OPEN resolution; regular
        settlements (including stragglers admitted before a trip) only
        matter in CLOSED, where they move the consecutive-failure
        counter.
        """
        if probe and self.state is BreakerState.HALF_OPEN:
            if ok:
                self._probes_succeeded += 1
                if self._probes_succeeded >= self.probe_quota:
                    self._close()
            else:
                self._trip()
            return
        if self.state is not BreakerState.CLOSED:
            return
        if ok:
            self._consecutive_failures = 0
        else:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state.value}, "
                f"trips={self.trips}, recoveries={self.recoveries})")
