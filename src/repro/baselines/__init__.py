"""Baseline comparators.

* :class:`TrivialController` — the strawman of Section 1: every request
  walks to the root and back, Omega(n) messages per request;
* :class:`AAPSController` — a reconstruction of the Afek-Awerbuch-
  Plotkin-Saks bin-hierarchy controller [4], which supports only the
  grow-only dynamic model (leaf insertions);
* :class:`FloodingSizeEstimator` — naive size estimation recounting the
  whole tree on every topological change.
"""

from repro.baselines.trivial import TrivialController
from repro.baselines.aaps import AAPSController
from repro.baselines.flooding import FloodingSizeEstimator

__all__ = ["TrivialController", "AAPSController", "FloodingSizeEstimator"]
