"""Naive size estimation by full recount (baseline for Theorem 5.1).

The obvious way to keep every node's size estimate current is to
re-count after each topological change: broadcast down, upcast the
subtree counts, broadcast the total back — Theta(n) messages per
change.  The paper's estimator amortizes to O(log^2 n) messages per
change; bench E5 reports both so the gap is visible.
"""

from typing import Optional

from repro.metrics.counters import MessageCounters
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode


class FloodingSizeEstimator(TreeListener):
    """Exact size at every node, recounted per change (3(n-1) messages)."""

    def __init__(self, tree: DynamicTree,
                 counters: Optional[MessageCounters] = None):
        self.tree = tree
        self.counters = counters if counters is not None else MessageCounters()
        self.estimate = tree.size
        self.changes_seen = 0
        tree.add_listener(self)

    def estimate_at(self, node: TreeNode) -> int:
        """The estimate held at ``node`` — exact, by construction."""
        return self.estimate

    def _recount(self) -> None:
        self.changes_seen += 1
        # Upcast the counts, then broadcast the total and a trigger wave.
        self.counters.broadcast_messages += 3 * max(self.tree.size - 1, 0)
        self.estimate = self.tree.size

    def on_add_leaf(self, node: TreeNode) -> None:
        self._recount()

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        self._recount()

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        self._recount()

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children) -> None:
        self._recount()

    def detach(self) -> None:
        self.tree.remove_listener(self)
