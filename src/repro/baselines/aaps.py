"""Reconstruction of the AAPS bin-hierarchy controller [4].

Afek, Awerbuch, Plotkin and Saks built the original (M,W)-Controller
for trees that may only *grow by leaf insertions*.  No public
implementation exists; this reconstruction follows the structural
description given in Section 1 of Korman-Kutten:

* every node has a *bin* per level; a node at depth ``d`` owns a
  level-``i`` bin iff ``2^i`` divides ``d`` (the root owns all levels);
* the level-``i`` bin's capacity is ``2^i * phi`` permits;
* the *supervisor* of a level-``i`` bin at depth ``d`` is the
  level-``i+1`` bin at the nearest ancestor whose depth is divisible by
  ``2^(i+1)`` (possibly the node itself); the top level's supervisor is
  the root's storage;
* a request takes a permit from its node's level-0 bin; an empty bin
  replenishes itself from its supervisor, recursively.

Because bin locations and sizes are functions of each node's *exact
depth*, the scheme breaks under internal insertions/deletions — the
very limitation Korman-Kutten lift.  This class therefore raises
:class:`TopologyError` for any request other than leaf insertion or a
plain event, which is the honest behaviour of the baseline under the
extended model (bench E4 uses it on grow-only workloads only).

Move complexity is charged per hop of permit-set movement, like the
centralized cost model, so the two controllers' numbers are directly
comparable.
"""

import math
from typing import Dict, Optional

from repro.errors import ControllerError, TopologyError
from repro.metrics.counters import MoveCounters
from repro.tree.dynamic_tree import DynamicTree
from repro.tree.node import TreeNode
from repro.core.requests import (
    Outcome,
    OutcomeStatus,
    Request,
    RequestKind,
)


class AAPSController:
    """Bin-hierarchy (M,W)-Controller for grow-only trees (known U)."""

    def __init__(self, tree: DynamicTree, m: int, w: int, u: int,
                 counters: Optional[MoveCounters] = None):
        if w < 1:
            raise ControllerError("AAPS reconstruction needs W >= 1")
        self.tree = tree
        self.m = m
        self.w = w
        self.u = u
        self.phi = max(w // (2 * u), 1)
        self.levels = (math.ceil(math.log2(u)) if u > 1 else 0) + 1
        self.storage = m
        self.granted = 0
        self.rejected = 0
        self.rejecting = False
        self.counters = counters if counters is not None else MoveCounters()
        # (node, level) -> permits currently in that bin.
        self._bins: Dict[object, int] = {}

    # ------------------------------------------------------------------
    def capacity(self, level: int) -> int:
        return (1 << level) * self.phi

    def handle(self, request: Request) -> Outcome:
        if request.kind not in (RequestKind.PLAIN, RequestKind.ADD_LEAF):
            raise TopologyError(
                "the AAPS controller supports only leaf insertions and "
                "plain events (grow-only dynamic model)"
            )
        node = request.node
        if node not in self.tree:
            return Outcome(OutcomeStatus.CANCELLED, request)
        if self.rejecting:
            self.rejected += 1
            return Outcome(OutcomeStatus.REJECTED, request)
        bin_key = (node, 0)
        if self._bins.get(bin_key, 0) == 0:
            self._replenish(node, 0)
        if self._bins.get(bin_key, 0) == 0 and self.unused_permits() > self.w:
            # The supervisor chain is dry but more than W permits sit in
            # off-chain bins: AAPS re-iterates — clear the hierarchy,
            # return the L unused permits to the root, and retry (the
            # halving-iteration step of their Section 6, which our
            # Observation 3.4 wrapper mirrors).
            self._sweep()
            self._replenish(node, 0)
        if self._bins.get(bin_key, 0) == 0:
            # Fewer than W permits remain anywhere: reject.
            self._broadcast_reject()
            self.rejected += 1
            return Outcome(OutcomeStatus.REJECTED, request)
        self._bins[bin_key] -= 1
        self.granted += 1
        if self.granted > self.m:
            raise ControllerError("AAPS safety violated")
        new_node = None
        if request.kind is RequestKind.ADD_LEAF:
            new_node = self.tree.add_leaf(node)
        return Outcome(OutcomeStatus.GRANTED, request, new_node=new_node)

    def unused_permits(self) -> int:
        return self.storage + sum(self._bins.values())

    # ------------------------------------------------------------------
    def _replenish(self, node: TreeNode, level: int) -> None:
        """Refill the level-``level`` bin at ``node`` from its supervisor."""
        bin_key = (node, level)
        want = self.capacity(level) - self._bins.get(bin_key, 0)
        if want <= 0:
            return
        if level + 1 >= self.levels:
            # Supervisor is the root's storage.
            take = min(want, self.storage)
            self.storage -= take
            self._bins[bin_key] = self._bins.get(bin_key, 0) + take
            self.counters.package_moves += self.tree.depth(node)
            return
        sup_node = self._supervisor_host(node, level + 1)
        sup_key = (sup_node, level + 1)
        if self._bins.get(sup_key, 0) < want:
            self._replenish(sup_node, level + 1)
        take = min(want, self._bins.get(sup_key, 0))
        if take > 0:
            self._bins[sup_key] -= take
            self._bins[bin_key] = self._bins.get(bin_key, 0) + take
            self.counters.package_moves += self._distance(node, sup_node)

    def _supervisor_host(self, node: TreeNode, level: int) -> TreeNode:
        """Nearest ancestor (inclusive) whose depth is a multiple of 2^level."""
        stride = 1 << level
        current = node
        depth = self.tree.depth(node)
        while depth % stride != 0:
            current = current.parent
            depth -= 1
        return current

    def _distance(self, node: TreeNode, ancestor: TreeNode) -> int:
        hops = 0
        current = node
        while current is not ancestor:
            current = current.parent
            hops += 1
        return hops

    def _sweep(self) -> None:
        """Collect every binned permit back into the root's storage.

        One upcast gathers the bins (n messages charged as resets).
        """
        self.storage += sum(self._bins.values())
        self._bins.clear()
        self.iterations = getattr(self, "iterations", 0) + 1
        self.counters.reset_moves += self.tree.size

    def _broadcast_reject(self) -> None:
        if not self.rejecting:
            self.rejecting = True
            self.counters.reject_moves += self.tree.size
