"""The trivial controller (Section 1).

"If the only case a permit is moved is directly from the root to the
requesting node, the message complexity can reach Omega(nM), i.e.,
Omega(n) per request."  This baseline implements exactly that: every
request walks to the root (depth messages), receives one permit or a
reject, and walks back (depth messages).  It is a perfectly correct
(M, 0)-Controller — its only sin is cost, which bench E10 quantifies.
"""

from typing import Iterable, List, Optional

from repro.metrics.counters import MoveCounters
from repro.protocol import ControllerView
from repro.tree.dynamic_tree import DynamicTree
from repro.core.requests import (
    Outcome,
    OutcomeStatus,
    Request,
    RequestKind,
    perform_event,
)


class TrivialController:
    """Per-request root round-trip controller; exact (M, 0) semantics."""

    def __init__(self, tree: DynamicTree, m: int,
                 counters: Optional[MoveCounters] = None):
        self.tree = tree
        self.m = m
        self.storage = m
        self.granted = 0
        self.rejected = 0
        self.counters = counters if counters is not None else MoveCounters()

    def handle_batch(self, requests: Iterable[Request]) -> List[Outcome]:
        return [self.handle(request) for request in requests]

    def unused_permits(self) -> int:
        return self.storage

    def detach(self) -> None:
        """No tree listeners to unregister; kept for protocol parity."""

    def introspect(self) -> ControllerView:
        """The :class:`repro.protocol.ControllerProtocol` audit view.

        No packages ever park, so conservation is storage-only:
        ``granted + storage == M``.
        """
        return ControllerView(
            flavor="trivial", m=self.m, w=0,
            granted=self.granted, rejected=self.rejected,
            storage=self.storage, tree=self.tree,
        )

    def handle(self, request: Request) -> Outcome:
        node = request.node
        if node not in self.tree or not self._still_meaningful(request):
            return Outcome(OutcomeStatus.CANCELLED, request)
        # Round trip to the root, permit or reject riding back.
        self.counters.package_moves += 2 * self.tree.depth(node)
        if self.storage == 0:
            self.rejected += 1
            return Outcome(OutcomeStatus.REJECTED, request)
        self.storage -= 1
        self.granted += 1
        new_node = perform_event(self.tree, request)
        return Outcome(OutcomeStatus.GRANTED, request, new_node=new_node)

    def _still_meaningful(self, request: Request) -> bool:
        node = request.node
        kind = request.kind
        if kind is RequestKind.REMOVE_LEAF:
            return not node.is_root and not node.children
        if kind is RequestKind.REMOVE_INTERNAL:
            return not node.is_root and bool(node.children)
        if kind is RequestKind.ADD_INTERNAL:
            return (request.child is not None and request.child.alive
                    and request.child.parent is node)
        return True
