"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library failures without
swallowing unrelated bugs.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class TopologyError(ReproError, ValueError):
    """An illegal topology mutation or query was attempted.

    Examples: removing the root, removing a non-existent node, attaching a
    leaf to a deleted parent, removing a degree-one node via
    ``remove_internal``, asking for an ancestor more hops up than the node
    is deep, or reusing a port that is already bound.  Derives from
    :class:`ValueError` so pre-1.6 callers that caught ``ValueError`` from
    the query paths keep working.
    """


class ConfigError(ReproError, ValueError):
    """A controller/session was *configured* wrong.

    Raised before any engine state exists: an unknown controller flavour,
    a missing node bound ``u`` for a known-U flavour, an unknown schedule
    policy or delay model, a non-positive admission window.  The message
    always names the valid choices.  Derives from :class:`ValueError` so
    pre-1.3 callers that caught ``ValueError`` keep working.
    """


class ControllerError(ReproError):
    """The controller was driven outside of its contract.

    Examples: submitting a request after the controller terminated, or
    constructing a controller with invalid parameters (``M < 0``,
    ``W < 0``, ``U`` smaller than the current node count).
    """


class InvariantViolation(ReproError):
    """An internal invariant of the algorithm was found broken.

    These errors indicate a bug in the implementation (or a deliberately
    corrupted state in a test), never a user mistake.  Property tests rely
    on the auditors raising this eagerly.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was misused.

    Examples: scheduling an event in the past, or running a simulation
    whose event handlers raise/loop beyond the configured safety budget.
    """


class ProtocolError(ReproError):
    """A distributed protocol message or agent reached an impossible state."""


class FleetError(ReproError):
    """The fleet router was driven outside of its contract.

    Examples: submitting a request whose node is not owned by any
    shard tree, or routing by an origin whose placement disagrees with
    the targeted node's owning shard (a client must build its requests
    on ``tree_of(origin)``).
    """


class GatewayError(ReproError):
    """The ingestion gateway was driven outside of its contract, or a
    request was abandoned by a gateway shutdown.

    Examples: submitting to a closed gateway, starting an already
    started worker, or waiting on a ticket whose gateway aborted before
    the request could settle (the ticket's ``result()`` re-raises the
    abort reason instead of blocking forever).
    """
