"""The analysis engine: run the suite, classify, report.

:func:`run_analysis` drives the registered rules over a parsed module
set and returns an :class:`AnalysisReport`.  Every raw finding is
classified exactly once:

* ``suppressed`` — the flagged line carries ``lint: allow[rule-id]``;
* ``baselined`` — it matches an entry in the (audited) baseline file;
* ``open`` — everything else: these fail the run.

Both escape hatches are themselves audited.  An ``allow`` that
suppresses nothing becomes a ``lint/unused-suppression`` finding, and
a baseline entry nothing matches becomes ``lint/stale-baseline`` — so
neither can silently outlive the violation it excused.  Engine-level
diagnostics (the two above plus ``lint/parse-error``) are not
suppressible and never baselined.
"""

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import ConfigError

from repro.analysis.findings import (
    STATUS_BASELINED,
    STATUS_OPEN,
    STATUS_SUPPRESSED,
    Finding,
)
from repro.analysis.registry import RULE_REGISTRY, Rule, ProjectRule, make_rules
from repro.analysis.source import ModuleSource, load_tree

# Populate the registry with the shipped families.
import repro.analysis.rules  # noqa: F401  (imported for registration)

#: Engine-level diagnostics (reserved ids outside the five families).
PARSE_ERROR = "lint/parse-error"
UNUSED_SUPPRESSION = "lint/unused-suppression"
STALE_BASELINE = "lint/stale-baseline"
META_RULES: Tuple[str, ...] = (PARSE_ERROR, UNUSED_SUPPRESSION,
                               STALE_BASELINE)

REPORT_VERSION = 1


@dataclass
class AnalysisReport:
    """The classified outcome of one analysis run."""

    modules_checked: int = 0
    rules_run: Tuple[str, ...] = ()
    open_findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.open_findings

    def counts(self) -> Dict[str, int]:
        return {
            "open": len(self.open_findings),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "total": (len(self.open_findings) + len(self.suppressed)
                      + len(self.baselined)),
        }

    def to_json(self) -> Dict[str, object]:
        def rows(findings: Sequence[Finding], status: str
                 ) -> List[Dict[str, Union[str, int]]]:
            ordered = sorted(findings,
                             key=lambda f: (f.path, f.line, f.rule))
            return [f.to_json(status) for f in ordered]

        return {
            "version": REPORT_VERSION,
            "tool": "repro.lint",
            "clean": self.clean,
            "modules_checked": self.modules_checked,
            "rules": {rule_id: RULE_REGISTRY[rule_id].description
                      for rule_id in self.rules_run
                      if rule_id in RULE_REGISTRY},
            "counts": self.counts(),
            "findings": (rows(self.open_findings, STATUS_OPEN)
                         + rows(self.suppressed, STATUS_SUPPRESSED)
                         + rows(self.baselined, STATUS_BASELINED)),
        }

    def render_text(self) -> str:
        lines = [f.render() for f in sorted(
            self.open_findings, key=lambda f: (f.path, f.line, f.rule))]
        counts = self.counts()
        lines.append(
            f"repro.lint: {counts['open']} open, "
            f"{counts['suppressed']} suppressed, "
            f"{counts['baselined']} baselined "
            f"({self.modules_checked} modules, "
            f"{len(self.rules_run)} rules)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Baseline: the audited list of grandfathered findings.
# ----------------------------------------------------------------------
BASELINE_VERSION = 1


def load_baseline(path: Path) -> List[Tuple[str, str, str]]:
    """Read baseline entries as ``(rule, path, message)`` keys."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"baseline {path} is not valid JSON: {exc}") from exc
    entries = data.get("entries") if isinstance(data, dict) else None
    if entries is None or not isinstance(entries, list):
        raise ConfigError(
            f"baseline {path} must be an object with an 'entries' list")
    keys: List[Tuple[str, str, str]] = []
    for entry in entries:
        if (not isinstance(entry, dict)
                or not all(isinstance(entry.get(k), str)
                           for k in ("rule", "path", "message"))):
            raise ConfigError(
                f"baseline {path}: each entry needs string fields "
                "rule/path/message")
        keys.append((entry["rule"], entry["path"], entry["message"]))
    return keys


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write the current findings as the new baseline (sorted, stable)."""
    entries = sorted(
        {f.key() for f in findings})
    payload = {
        "version": BASELINE_VERSION,
        "comment": ("Audited grandfathered findings. Entries that stop "
                    "matching become lint/stale-baseline failures; do not "
                    "add entries by hand without review."),
        "entries": [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# The run itself.
# ----------------------------------------------------------------------
def analyze_modules(modules: Sequence[ModuleSource],
                    rules: Optional[Sequence[Rule]] = None,
                    baseline: Sequence[Tuple[str, str, str]] = (),
                    parse_errors: Sequence[Tuple[str, str]] = (),
                    ) -> AnalysisReport:
    """Run ``rules`` (default: the full registry) over parsed modules."""
    suite: Sequence[Rule] = rules if rules is not None else make_rules()
    raw: List[Finding] = []
    for rule in suite:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(modules))
        else:
            for module in modules:
                raw.extend(rule.check(module))
    for err_path, message in parse_errors:
        raw.append(Finding(rule=PARSE_ERROR, path=err_path, line=1, col=0,
                           message=message))

    report = AnalysisReport(
        modules_checked=len(modules),
        rules_run=tuple(rule.rule_id for rule in suite))
    by_path: Dict[str, ModuleSource] = {m.path: m for m in modules}
    budget: Dict[Tuple[str, str, str], int] = {}
    for key in baseline:
        budget[key] = budget.get(key, 0) + 1
    used_allows: Dict[str, Set[Tuple[int, str]]] = {
        m.path: set() for m in modules}

    for finding in raw:
        module = by_path.get(finding.path)
        if (module is not None and finding.rule not in META_RULES
                and module.allowed(finding.line, finding.rule)):
            report.suppressed.append(finding)
            used_allows[finding.path].add((finding.line, finding.rule))
            continue
        key = finding.key()
        if finding.rule not in META_RULES and budget.get(key, 0) > 0:
            budget[key] -= 1
            report.baselined.append(finding)
            continue
        report.open_findings.append(finding)

    # Audit the escape hatches.
    for module in modules:
        for line, rule_list in sorted(module.allows.items()):
            for rule_id in sorted(rule_list):
                if (line, rule_id) in used_allows[module.path]:
                    continue
                known = rule_id in RULE_REGISTRY
                detail = ("suppresses nothing on this line" if known
                          else "names an unknown rule id")
                report.open_findings.append(Finding(
                    rule=UNUSED_SUPPRESSION, path=module.path, line=line,
                    col=0,
                    message=f"lint: allow[{rule_id}] {detail}; remove it"))
    for key, remaining in sorted(budget.items()):
        if remaining > 0:
            rule_id, file_path, message = key
            report.open_findings.append(Finding(
                rule=STALE_BASELINE, path=file_path, line=1, col=0,
                message=(f"baseline entry for {rule_id} no longer matches "
                         f"any finding ({message!r} x{remaining}); remove "
                         "it from the baseline")))
    return report


def run_analysis(root: Path,
                 rules: Optional[Sequence[str]] = None,
                 baseline_path: Optional[Path] = None) -> AnalysisReport:
    """Lint the tree under ``root`` (see :func:`~repro.analysis.source.
    discover` for accepted layouts) against the registered suite."""
    modules, parse_errors = load_tree(root)
    baseline: Sequence[Tuple[str, str, str]] = ()
    if baseline_path is not None and baseline_path.exists():
        baseline = load_baseline(baseline_path)
    suite = make_rules(rules or ())
    return analyze_modules(modules, rules=suite, baseline=baseline,
                           parse_errors=parse_errors)
