"""Small shared AST helpers for the rule modules."""

import ast
from typing import Iterator, List, Optional, Tuple


def dotted(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` attribute chains as a dotted string (else None)."""
    parts: List[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def imported_targets(tree: ast.Module) -> Iterator[Tuple[str, int, int]]:
    """Yield ``(module, line, col)`` for every import in the tree.

    Walks the whole AST, so imports deferred into function bodies count
    the same as top-level ones — a deferred import is still a
    dependency edge (and deferring is the classic way to smuggle one
    past an import-time cycle).  Relative imports are resolved only one
    step (``from . import x`` inside ``repro.pkg`` -> ``repro.pkg``);
    the codebase uses absolute imports throughout.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno, node.col_offset
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.level == 0:
                yield node.module, node.lineno, node.col_offset

