"""The rule registry: one catalogue for every lint rule.

Mirrors the controller/app registry idiom (:mod:`repro.registry`,
``APP_REGISTRY``): rule classes register themselves under a stable
``family/name`` id, and everything downstream — the engine, the CLI's
``--rule`` filter, the report's rule table — goes through the registry
instead of importing rule modules directly.

A rule is a class with three class attributes (``rule_id``,
``family``, ``description``) and a ``check(module)`` generator.
*Project* rules additionally see the whole module set at once via
``check_project(modules)`` — that is where cross-module properties
(the import cycle scan) live.
"""

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, Type

from repro.errors import ConfigError

from repro.analysis.findings import Finding
from repro.analysis.source import ModuleSource

#: The five rule families the suite ships (fixed vocabulary; the
#: registry rejects rules claiming any other family).
FAMILIES: Tuple[str, ...] = (
    "layering", "determinism", "concurrency", "api", "hotpath")


class Rule:
    """Base class for per-module rules.

    Subclasses set the class attributes and implement :meth:`check`;
    registering is explicit via the :func:`register` decorator so that
    importing a rule module never silently doubles the suite.
    """

    rule_id: str = ""
    family: str = ""
    description: str = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, line: int, col: int,
                message: str) -> Finding:
        return Finding(rule=self.rule_id, path=module.path, line=line,
                       col=col, message=message)


class ProjectRule(Rule):
    """A rule over the whole module set (cross-module properties)."""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[ModuleSource]
                      ) -> Iterator[Finding]:
        raise NotImplementedError


RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (id must be fresh)."""
    if not cls.rule_id or "/" not in cls.rule_id:
        raise ConfigError(
            f"rule {cls.__name__} needs a 'family/name' rule_id, "
            f"got {cls.rule_id!r}")
    if cls.family not in FAMILIES:
        raise ConfigError(
            f"rule {cls.rule_id!r} claims unknown family {cls.family!r}; "
            f"families: {', '.join(FAMILIES)}")
    if not cls.rule_id.startswith(cls.family + "/"):
        raise ConfigError(
            f"rule id {cls.rule_id!r} must start with its family "
            f"{cls.family!r}")
    if cls.rule_id in RULE_REGISTRY:
        raise ConfigError(f"rule id {cls.rule_id!r} registered twice")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def rule_ids() -> Tuple[str, ...]:
    """Registered rule ids, in registration order."""
    return tuple(RULE_REGISTRY)


def make_rules(only: Iterable[str] = ()) -> List[Rule]:
    """Instantiate the suite (optionally restricted to ``only`` ids).

    Raises :class:`~repro.errors.ConfigError` for an unknown id,
    naming the registry — same contract as ``make_controller``.
    """
    wanted = list(only)
    if not wanted:
        return [cls() for cls in RULE_REGISTRY.values()]
    rules: List[Rule] = []
    for rule_id in wanted:
        if rule_id not in RULE_REGISTRY:
            raise ConfigError(
                f"unknown rule id {rule_id!r}; registered: "
                f"{', '.join(RULE_REGISTRY)}")
        rules.append(RULE_REGISTRY[rule_id]())
    return rules
