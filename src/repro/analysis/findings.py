"""The finding record every rule emits.

A :class:`Finding` is one diagnostic at one source location.  Its
*identity* for baseline matching is ``(rule, path, message)`` — line
numbers drift with every edit, so a grandfathered finding keeps
matching its baseline entry until the offending code itself changes
(at which point the stale-baseline audit forces a re-review).
"""

from dataclasses import dataclass
from typing import Dict, Tuple, Union

#: Classification attached by the engine after suppression/baseline
#: matching: ``open`` findings fail the run, the other two are recorded
#: in the report but do not.
STATUS_OPEN = "open"
STATUS_SUPPRESSED = "suppressed"
STATUS_BASELINED = "baselined"


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``rule`` fired at ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: location-free so line drift is harmless."""
        return (self.rule, self.path, self.message)

    def to_json(self, status: str = STATUS_OPEN) -> Dict[str, Union[str, int]]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "status": status,
        }

    def render(self) -> str:
        """The classic one-line compiler format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"
