"""``repro.analysis``: the project-specific static analysis suite.

AST-based rules that machine-check the conventions the reproduction's
correctness rests on — the import layering, simulated-time determinism,
event-loop hygiene, registry-only construction, frozen-config
immutability, and fast-path allocation discipline.  The CLI lives in
:mod:`repro.lint` (``python -m repro.lint``); this package is the
framework: sources, rules, registry, engine, report.

The suite never imports the code it checks — everything is static, so
it runs on broken trees and on test fixtures alike.
"""

from repro.analysis.engine import (
    AnalysisReport,
    META_RULES,
    PARSE_ERROR,
    STALE_BASELINE,
    UNUSED_SUPPRESSION,
    analyze_modules,
    load_baseline,
    run_analysis,
    save_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    FAMILIES,
    ProjectRule,
    RULE_REGISTRY,
    Rule,
    make_rules,
    register,
    rule_ids,
)
from repro.analysis.source import ModuleSource, load_tree

__all__ = [
    "AnalysisReport",
    "FAMILIES",
    "Finding",
    "META_RULES",
    "ModuleSource",
    "PARSE_ERROR",
    "ProjectRule",
    "RULE_REGISTRY",
    "Rule",
    "STALE_BASELINE",
    "UNUSED_SUPPRESSION",
    "analyze_modules",
    "load_baseline",
    "load_tree",
    "make_rules",
    "register",
    "rule_ids",
    "run_analysis",
    "save_baseline",
]
