"""Concurrency rules: event-loop hygiene and closure capture.

Two failure modes this project is specifically exposed to:

* The asyncio facade (:mod:`repro.gateway.aio`) wraps a *synchronous*
  engine.  A blocking call on the event loop — ``time.sleep``, or a
  timeout-less ``Future.result()`` — stalls every client of the
  gateway at once, and unlike a crash it passes every functional test.
  Blocking work belongs on the worker thread (``asyncio.to_thread``)
  or behind an awaitable (``asyncio.wrap_future``).

* Callbacks handed to the schedulers are invoked *later*; a closure
  built in a loop captures the loop **variable**, not the value it had
  that iteration, so every callback fires with the final value.  The
  fix is binding at definition time (``lambda node=node: ...``) or a
  factory function.  The rule flags any function defined inside a loop
  that reads the loop variable late-bound.
"""

import ast
from typing import Iterator, List, Sequence, Set, Union

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import ModuleSource

_Func = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


@register
class AsyncBlockingRule(Rule):
    rule_id = "concurrency/async-blocking"
    family = "concurrency"
    description = ("no time.sleep or timeout-less .result() inside async "
                   "def; block on the worker thread, await on the loop")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                func = inner.func
                if not isinstance(func, ast.Attribute):
                    continue
                if (func.attr == "sleep"
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "time"):
                    yield self.finding(
                        module, inner.lineno, inner.col_offset,
                        "time.sleep inside async def blocks the event loop; "
                        "use await asyncio.sleep(...)")
                elif (func.attr == "result" and not inner.args
                        and not inner.keywords):
                    yield self.finding(
                        module, inner.lineno, inner.col_offset,
                        "timeout-less .result() inside async def can block "
                        "the event loop forever; await the future "
                        "(asyncio.wrap_future) or pass a timeout")


def _loop_target_names(node: Union[ast.For, ast.AsyncFor]) -> Set[str]:
    return {n.id for n in ast.walk(node.target) if isinstance(n, ast.Name)}


def _bound_names(func: _Func) -> Set[str]:
    """Names a nested function binds itself (params + local stores)."""
    args = func.args
    bound = {a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)}
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    body: Sequence[ast.AST]
    if isinstance(func, ast.Lambda):
        body = (func.body,)
    else:
        body = func.body
    for stmt in body:
        for n in ast.walk(stmt):
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
                bound.add(n.id)
    return bound


def _free_reads(func: _Func) -> Set[str]:
    body: Sequence[ast.AST]
    if isinstance(func, ast.Lambda):
        body = (func.body,)
    else:
        body = func.body
    reads: Set[str] = set()
    for stmt in body:
        for n in ast.walk(stmt):
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load):
                reads.add(n.id)
    return reads - _bound_names(func)


@register
class LoopClosureRule(Rule):
    rule_id = "concurrency/loop-closure"
    family = "concurrency"
    description = ("no late-binding capture of a loop variable in a "
                   "function defined inside the loop; bind it as a default "
                   "argument")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        yield from self._scan(module, module.tree.body, [])

    def _scan(self, module: ModuleSource, body: Sequence[ast.stmt],
              loop_vars: List[Set[str]]) -> Iterator[Finding]:
        for stmt in body:
            yield from self._scan_node(module, stmt, loop_vars)

    def _scan_node(self, module: ModuleSource, node: ast.AST,
                   loop_vars: List[Set[str]]) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            inner = loop_vars + [_loop_target_names(node)]
            yield from self._scan_expr(module, node.iter, loop_vars)
            for stmt in node.body + node.orelse:
                yield from self._scan_node(module, stmt, inner)
            return
        if isinstance(node, ast.While):
            yield from self._scan_expr(module, node.test, loop_vars)
            for stmt in node.body + node.orelse:
                yield from self._scan_node(module, stmt, loop_vars)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._flag_if_captures(module, node, loop_vars)
            # A new scope: loop variables of *this* function's loops are
            # tracked afresh inside it.
            yield from self._scan(module, node.body, [])
            return
        if isinstance(node, ast.Lambda):
            yield from self._flag_if_captures(module, node, loop_vars)
            return
        for child in ast.iter_child_nodes(node):
            yield from self._scan_node(module, child, loop_vars)

    def _scan_expr(self, module: ModuleSource, expr: ast.expr,
                   loop_vars: List[Set[str]]) -> Iterator[Finding]:
        yield from self._scan_node(module, expr, loop_vars)

    def _flag_if_captures(self, module: ModuleSource, func: _Func,
                          loop_vars: List[Set[str]]) -> Iterator[Finding]:
        if not loop_vars:
            return
        captured = _free_reads(func)
        for scope in loop_vars:
            late = sorted(captured & scope)
            if late:
                names = ", ".join(late)
                yield self.finding(
                    module, func.lineno, func.col_offset,
                    f"closure defined in a loop captures loop variable(s) "
                    f"{names} late-bound; every deferred call sees the "
                    f"final value — bind with a default ({late[0]}="
                    f"{late[0]})")
