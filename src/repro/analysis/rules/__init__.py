"""The shipped rule families.

Importing this package populates :data:`repro.analysis.registry.
RULE_REGISTRY` with every built-in rule; the engine imports it once.
Adding a family means adding a module here and importing it below (see
"writing a new rule" in ``docs/architecture.md`` §12).
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    api,
    concurrency,
    determinism,
    hotpath,
    layering,
)

__all__ = ["api", "concurrency", "determinism", "hotpath", "layering"]
