"""Hot-path hygiene rules for the fast-path modules.

The fast-path engine (PR 8) holds its speedup by keeping the per-event
work allocation-free: ``__slots__`` classes (no per-instance dict), no
closures or ``functools.partial`` objects built per call.  Those are
conventions a profiler only re-discovers after they regress, so the
fast-path modules are enforced statically:

* ``hotpath/slots`` — every class defined in a fast-path module
  declares ``__slots__`` (enums/exceptions are exempt: they are not
  allocated per event);
* ``hotpath/closure-alloc`` — no ``lambda``, nested ``def`` or
  ``functools.partial`` inside functions of a fast-path module; bind
  state in slots (the ``resume_node`` idiom) or module-level helpers.
"""

import ast
from typing import FrozenSet, Iterator

from repro.analysis.astutil import dotted
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import ModuleSource

#: The modules the fast-path contract covers.  Extend this set when a
#: new module joins the per-event hot loop (and expect the rules to
#: fire on day one).
FAST_PATH_MODULES: FrozenSet[str] = frozenset({
    "repro.sim.fastsched",
    "repro.distributed.agent",
    "repro.distributed.whiteboard",
})

#: Base-class names exempt from the slots requirement: not per-event
#: allocations (enums are singletons, exceptions are the failure path).
_SLOTS_EXEMPT_BASES: FrozenSet[str] = frozenset({
    "Enum", "IntEnum", "Flag", "IntFlag", "Protocol"})


def _base_names(cls: ast.ClassDef) -> Iterator[str]:
    for base in cls.bases:
        name = dotted(base)
        if name is not None:
            yield name.rsplit(".", 1)[-1]


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if (isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"):
                return True
    return False


def _exempt(cls: ast.ClassDef) -> bool:
    for name in _base_names(cls):
        if name in _SLOTS_EXEMPT_BASES:
            return True
        if name.endswith(("Error", "Exception", "Warning")):
            return True
    return False


@register
class SlotsRule(Rule):
    rule_id = "hotpath/slots"
    family = "hotpath"
    description = ("classes in fast-path modules declare __slots__ "
                   "(enum/exception classes exempt)")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.module not in FAST_PATH_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _exempt(node) or _declares_slots(node):
                continue
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"class {node.name} in a fast-path module has no "
                "__slots__; per-instance dicts cost allocation and cache "
                "misses on every event")


@register
class ClosureAllocRule(Rule):
    rule_id = "hotpath/closure-alloc"
    family = "hotpath"
    description = ("no lambda / nested def / functools.partial inside "
                   "fast-path functions; closures allocate per call")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.module not in FAST_PATH_MODULES:
            return
        yield from self._scan(module, module.tree, in_function=False)

    def _scan(self, module: ModuleSource, node: ast.AST,
              in_function: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if in_function:
                    yield self.finding(
                        module, child.lineno, child.col_offset,
                        f"nested def {child.name} inside a fast-path "
                        "function allocates a callable per call; hoist to "
                        "module level or bind state in slots")
                yield from self._scan(module, child, in_function=True)
                continue
            if in_function:
                if isinstance(child, ast.Lambda):
                    yield self.finding(
                        module, child.lineno, child.col_offset,
                        "lambda inside a fast-path function allocates a "
                        "callable per call; hoist to module level or bind "
                        "state in slots")
                elif isinstance(child, ast.Call):
                    name = dotted(child.func)
                    if name in ("partial", "functools.partial"):
                        yield self.finding(
                            module, child.lineno, child.col_offset,
                            "functools.partial inside a fast-path function "
                            "allocates a callable per call; hoist to module "
                            "level or bind state in slots")
            yield from self._scan(module, child, in_function)
