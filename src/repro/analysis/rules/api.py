"""API-discipline rules: registries, frozen configs, the error taxonomy.

* ``api/registry-construction`` — controller and app classes are
  implementation; everything above the layer that defines them builds
  through :func:`repro.registry.make_controller` / ``make_app``
  (``APP_REGISTRY``), so flavour validation, ``u``-requirement checks
  and construction conventions live in exactly one place.
* ``api/frozen-setattr`` — ``object.__setattr__`` is the sanctioned
  way frozen dataclasses normalise fields, but only during
  construction (``__init__``/``__post_init__``/``__setstate__``);
  anywhere else it is mutation of a config other code already trusts
  to be immutable.
* ``api/error-taxonomy`` — public surfaces raise the
  :mod:`repro.errors` taxonomy, never bare builtins, so callers can
  catch library failures without swallowing unrelated bugs.
"""

import ast
from typing import Dict, FrozenSet, Iterator, List, Union

from repro.analysis.astutil import dotted
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import ModuleSource

#: Controller classes and the units allowed to construct them directly
#: (the layers that define and compose them).  Everything else goes
#: through make_controller.  The self-run test cross-checks this list
#: against repro.registry.CONTROLLER_REGISTRY so it cannot rot.
CONTROLLER_CLASSES: FrozenSet[str] = frozenset({
    "CentralizedController", "IteratedController", "AdaptiveController",
    "TerminatingController", "DistributedController",
    "DistributedIteratedController", "DistributedAdaptiveController",
    "TrivialController",
})
CONTROLLER_UNITS: FrozenSet[str] = frozenset({
    "core", "distributed", "baselines", "registry"})

#: App classes (Section 5) and their defining unit: construction goes
#: through make_app / APP_REGISTRY outside it.
APP_CLASSES: FrozenSet[str] = frozenset({
    "SizeEstimationApp", "NameAssignmentApp", "SubtreeEstimatorApp",
    "HeavyChildApp", "AncestryLabelsApp", "RoutingLabelsApp",
    "MajorityCommitApp",
})
APP_UNITS: FrozenSet[str] = frozenset({"apps"})

#: Construction-time methods where object.__setattr__ on a frozen
#: instance is legitimate.
_FROZEN_INIT_METHODS: FrozenSet[str] = frozenset({
    "__init__", "__post_init__", "__setstate__"})

#: Builtins that must not be raised: each has a taxonomy replacement
#: (ConfigError derives from ValueError, so old callers keep working).
BANNED_RAISES: Dict[str, str] = {
    "Exception": "ReproError",
    "BaseException": "ReproError",
    "ValueError": "ConfigError (derives from ValueError)",
    "TypeError": "ConfigError",
    "RuntimeError": "ControllerError / SimulationError / ProtocolError",
    "KeyError": "ConfigError",
    "IndexError": "ConfigError",
    "LookupError": "ConfigError",
    "AssertionError": "InvariantViolation",
    "ArithmeticError": "InvariantViolation",
    "ZeroDivisionError": "InvariantViolation",
    "AttributeError": "ProtocolError",
    "StopIteration": "ProtocolError",
    "OSError": "GatewayError",
    "IOError": "GatewayError",
}


@register
class RegistryConstructionRule(Rule):
    rule_id = "api/registry-construction"
    family = "api"
    description = ("controllers/apps are constructed via make_controller / "
                   "make_app outside the layers that define them")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._callee_name(node)
            if name in CONTROLLER_CLASSES:
                allowed, factory = CONTROLLER_UNITS, "make_controller"
            elif name in APP_CLASSES:
                allowed, factory = APP_UNITS, "make_app"
            else:
                continue
            if module.unit in allowed:
                continue
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"direct construction of {name} outside its defining "
                f"layer; build through {factory} so flavour validation "
                "and construction conventions stay in one place")

    @staticmethod
    def _callee_name(call: ast.Call) -> str:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        return ""


@register
class FrozenSetattrRule(Rule):
    rule_id = "api/frozen-setattr"
    family = "api"
    description = ("object.__setattr__ on frozen configs only inside "
                   "__init__/__post_init__/__setstate__")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        yield from self._scan(module, module.tree.body, enclosing="")

    def _scan(self, module: ModuleSource, body: List[ast.stmt],
              enclosing: str) -> Iterator[Finding]:
        for stmt in body:
            yield from self._scan_node(module, stmt, enclosing)

    def _scan_node(self, module: ModuleSource, node: ast.AST,
                   enclosing: str) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                yield from self._scan_node(module, child, node.name)
            return
        if isinstance(node, ast.Call) and dotted(node.func) == \
                "object.__setattr__":
            if enclosing not in _FROZEN_INIT_METHODS:
                where = enclosing or "module scope"
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"object.__setattr__ in {where}; frozen instances may "
                    "only be written during construction "
                    "(__init__/__post_init__/__setstate__)")
        for child in ast.iter_child_nodes(node):
            yield from self._scan_node(module, child, enclosing)


@register
class ErrorTaxonomyRule(Rule):
    rule_id = "api/error-taxonomy"
    family = "api"
    description = ("raise only the repro.errors taxonomy (plus "
                   "NotImplementedError); never bare builtin exceptions")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc: Union[ast.expr, None] = node.exc
            name = ""
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            replacement = BANNED_RAISES.get(name)
            if replacement is None:
                continue
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"raising builtin {name}; use the repro.errors taxonomy "
                f"({replacement})")
