"""Layering rules: the declared import DAG for ``repro.*``.

The architecture is a strict layering (``docs/architecture.md`` §12):
``tree``/``sim`` at the bottom over the shared ``errors`` taxonomy,
the core kernel and workloads above them, the distributed engine above
the kernel, then registry -> service -> apps/gateway/fleet, with
``bench`` as the top-of-stack harness.  :data:`LAYER_DEPS` *is* that
diagram — editing it is an architectural decision, reviewed like one.

Three rules enforce it:

* ``layering/declared-dag`` — every ``repro.*`` import must be an edge
  the DAG declares (per-module enforcement, deferred imports count);
* ``layering/cycle`` — the declared DAG and the *observed*
  module-level import graph must both be acyclic;
* ``layering/protocol-import-light`` — the bottom modules other layers
  lean on (``protocol``, ``errors``, ``clock``) may import only a tiny
  stdlib allowlist, so importing them never drags the stack in.
"""

import ast
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set

from repro.analysis.astutil import imported_targets
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, Rule, register
from repro.analysis.source import ModuleSource

#: Allowed ``repro`` dependencies per layer unit (a unit is a direct
#: child of the ``repro`` package; ``repro`` itself is the root
#: aggregator).  ``errors`` is layer zero: every unit may import it, so
#: it is left implicit.  A unit missing from this table is undeclared
#: and every one of its imports is flagged — new subsystems must claim
#: a place in the DAG to land.
LAYER_DEPS: Dict[str, FrozenSet[str]] = {
    "errors": frozenset(),
    "clock": frozenset(),
    "protocol": frozenset(),
    "tree": frozenset(),
    "sim": frozenset(),
    "metrics": frozenset({"protocol"}),
    "core": frozenset({"metrics", "protocol", "tree"}),
    "workloads": frozenset({"core", "tree"}),
    "baselines": frozenset({"core", "metrics", "protocol", "tree"}),
    "distributed": frozenset({"core", "metrics", "protocol", "sim", "tree"}),
    "registry": frozenset({"baselines", "core", "distributed", "protocol",
                           "tree"}),
    "service": frozenset({"core", "distributed", "metrics", "protocol",
                          "registry", "sim", "tree", "workloads"}),
    "apps": frozenset({"core", "metrics", "protocol", "service", "tree"}),
    "gateway": frozenset({"clock", "core", "metrics", "service"}),
    "fleet": frozenset({"core", "metrics", "protocol", "service", "tree"}),
    "bench": frozenset({"apps", "clock", "core", "distributed", "fleet",
                        "gateway", "metrics", "registry", "service", "sim",
                        "workloads"}),
    "analysis": frozenset(),
    "lint": frozenset({"analysis"}),
    # The root package re-exports the public surface; it sits above
    # everything by construction.
    "repro": frozenset({"apps", "core", "errors", "fleet", "gateway",
                        "protocol", "registry", "service", "tree"}),
}

#: Bottom modules other layers lean on: stdlib-allowlist only, nothing
#: from ``repro`` beyond what the DAG grants (which is nothing).
IMPORT_LIGHT: Dict[str, FrozenSet[str]] = {
    "protocol": frozenset({"dataclasses", "typing"}),
    "errors": frozenset(),
    "clock": frozenset({"time", "typing"}),
}


def _target_unit(target: str) -> str:
    """The layer unit a ``repro...`` import lands in (or ''). """
    parts = target.split(".")
    if parts[0] != "repro":
        return ""
    return parts[1] if len(parts) > 1 else "repro"


@register
class DeclaredDagRule(Rule):
    rule_id = "layering/declared-dag"
    family = "layering"
    description = ("every repro.* import must be an edge the layer DAG "
                   "(LAYER_DEPS) declares; errors is layer zero and always "
                   "allowed")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        unit = module.unit
        declared = LAYER_DEPS.get(unit)
        for target, line, col in imported_targets(module.tree):
            tgt_unit = _target_unit(target)
            if not tgt_unit:
                continue
            if declared is None:
                yield self.finding(
                    module, line, col,
                    f"unit {unit!r} is not declared in the layer DAG; "
                    "add it to LAYER_DEPS before importing repro modules")
                continue
            if tgt_unit in ("errors", unit):
                continue
            if tgt_unit == "repro" and unit != "repro":
                yield self.finding(
                    module, line, col,
                    f"{module.module} imports the root repro package; the "
                    "aggregator sits above every layer — import the layer "
                    "module directly")
                continue
            if tgt_unit not in declared:
                yield self.finding(
                    module, line, col,
                    f"{module.module} (unit {unit!r}) imports {target}; the "
                    f"layer DAG does not declare {unit!r} -> {tgt_unit!r}")


@register
class CycleRule(ProjectRule):
    rule_id = "layering/cycle"
    family = "layering"
    description = ("the declared layer DAG and the observed module-level "
                   "import graph must both be acyclic")

    def check_project(self, modules: Sequence[ModuleSource]
                      ) -> Iterator[Finding]:
        # The declared DAG first: a cycle smuggled into LAYER_DEPS would
        # quietly legalise mutual imports.
        cycle = _find_cycle({unit: sorted(deps)
                             for unit, deps in LAYER_DEPS.items()})
        if cycle:
            anchor = modules[0] if modules else None
            path = " -> ".join(cycle)
            if anchor is not None:
                yield self.finding(
                    anchor, 1, 0,
                    f"LAYER_DEPS itself contains a cycle: {path}")
        # Then the observed module graph (deferred imports included).
        graph: Dict[str, List[str]] = {}
        locations: Dict[str, ModuleSource] = {}
        names = {m.module for m in modules}
        for mod in modules:
            locations[mod.module] = mod
            graph[mod.module] = sorted(
                edge for edge in _observed_edges(mod, names)
                if edge != mod.module)
        cycle = _find_cycle(graph)
        if cycle:
            first = min(cycle[:-1])
            anchor = locations[first]
            yield self.finding(
                anchor, 1, 0,
                "import cycle: " + " -> ".join(cycle))


def _observed_edges(mod: ModuleSource, names: Set[str]) -> Set[str]:
    """Module-level dependency edges, resolved to known modules.

    ``from repro.pkg import name`` is an edge to the *submodule*
    ``repro.pkg.name`` when one exists — importing a sibling through
    its package is not a dependency on the package ``__init__``.  Any
    other target normalises up to the deepest known module.  Imports
    under ``if TYPE_CHECKING:`` never execute, so they are not runtime
    edges and a typing-only back-reference is not a cycle.
    """
    edges: Set[str] = set()

    def normalise(target: str) -> None:
        candidate = target
        while candidate and candidate not in names:
            candidate = candidate.rpartition(".")[0]
        if candidate:
            edges.add(candidate)

    def scan(node: ast.AST) -> None:
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for child in node.orelse:
                scan(child)
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    normalise(alias.name)
        elif (isinstance(node, ast.ImportFrom) and node.level == 0
              and node.module is not None
              and node.module.startswith("repro")):
            for alias in node.names:
                full = f"{node.module}.{alias.name}"
                if full in names:
                    edges.add(full)
                else:
                    normalise(node.module)
        for child in ast.iter_child_nodes(node):
            scan(child)

    scan(mod.tree)
    return edges


def _is_type_checking_test(test: ast.expr) -> bool:
    """True for ``TYPE_CHECKING`` / ``typing.TYPE_CHECKING`` guards."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return (isinstance(test, ast.Attribute)
            and test.attr == "TYPE_CHECKING")


def _find_cycle(graph: Dict[str, List[str]]) -> List[str]:
    """First cycle found by DFS, as ``[a, b, ..., a]`` (else empty)."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {node: WHITE for node in graph}
    stack: List[str] = []

    def visit(node: str) -> List[str]:
        color[node] = GREY
        stack.append(node)
        for succ in graph.get(node, ()):
            if succ not in color:
                continue
            if color[succ] == GREY:
                start = stack.index(succ)
                return stack[start:] + [succ]
            if color[succ] == WHITE:
                found = visit(succ)
                if found:
                    return found
        stack.pop()
        color[node] = BLACK
        return []

    for node in sorted(graph):
        if color[node] == WHITE:
            found = visit(node)
            if found:
                return found
    return []


@register
class ImportLightRule(Rule):
    rule_id = "layering/protocol-import-light"
    family = "layering"
    description = ("repro.protocol / repro.errors / repro.clock may import "
                   "only their declared stdlib allowlist")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        allowlist = IMPORT_LIGHT.get(module.unit)
        if allowlist is None or module.module.count(".") != 1:
            return
        for target, line, col in imported_targets(module.tree):
            top = target.split(".")[0]
            if top == "repro":
                # The DAG rule's concern: these units declare no deps,
                # so any repro import beyond errors already fires there.
                continue
            if top in allowlist:
                continue
            yield self.finding(
                module, line, col,
                f"{module.module} is import-light; {target} is outside its "
                f"allowlist ({', '.join(sorted(allowlist)) or 'nothing'})")
