"""Determinism rules: no wall clocks, no unseeded randomness, no
order-dependent iteration over sets.

The whole reproduction runs on *simulated* time: equal seeds must give
bit-identical runs, and the differential benches and the 125-cell grid
rely on it.  Wall-clock reads and the process-global ``random`` module
are the two classic ways real time leaks in; iterating a ``set`` is the
quiet third — Python set order varies with insertion history (and, for
strings, with ``PYTHONHASHSEED``), so feeding it into scheduling or
plan construction reorders runs that should be identical.

Wall clocks are not banned from the project, only centralised: the
threaded gateway really does need one.  It takes it from the
:mod:`repro.clock` shim, and the bench harness (which times real
wall-clock performance, that is its job) is allowlisted wholesale.
"""

import ast
from typing import FrozenSet, Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.source import ModuleSource

#: Units where wall-clock reads are the point: the bench harness times
#: real elapsed time, and the clock shim is the one sanctioned door.
WALL_CLOCK_ALLOWED_UNITS: FrozenSet[str] = frozenset({"bench", "clock"})

#: ``time`` module attributes that read (or wait on) the wall clock.
#: ``time.sleep`` lives here too — sleeping is a wall-clock dependency
#: even before the concurrency rule's async concerns.
_TIME_ATTRS: FrozenSet[str] = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
})

#: ``datetime.date``/``datetime.datetime`` constructors that read the
#: current moment.
_DATETIME_ATTRS: FrozenSet[str] = frozenset({"now", "utcnow", "today"})

#: The only ``random`` module attributes deterministic code may touch:
#: a ``random.Random(seed)`` instance is replayable, the module-level
#: functions (and ``SystemRandom``) are not.
_RANDOM_ALLOWED: FrozenSet[str] = frozenset({"Random"})

#: Units whose iteration order feeds scheduling or plan construction —
#: the scope of the set-iteration heuristic.
SCHEDULING_UNITS: FrozenSet[str] = frozenset({
    "sim", "core", "distributed", "fleet", "service", "apps", "gateway"})


def _attr_on(node: ast.expr, base: str) -> str:
    """``attr`` when node is ``<base>.<attr>``, else ''."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == base):
        return node.attr
    return ""


@register
class WallClockRule(Rule):
    rule_id = "determinism/wall-clock"
    family = "determinism"
    description = ("no time.time/monotonic/perf_counter/sleep or "
                   "datetime.now outside repro.bench and the repro.clock "
                   "shim — simulated time only")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.unit in WALL_CLOCK_ALLOWED_UNITS:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                attr = _attr_on(node, "time")
                if attr in _TIME_ATTRS:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"wall-clock access time.{attr}; use simulated time "
                        "(the scheduler clock) or the repro.clock shim")
                    continue
                if (node.attr in _DATETIME_ATTRS
                        and isinstance(node.value, (ast.Name, ast.Attribute))):
                    base = node.value
                    base_name = (base.id if isinstance(base, ast.Name)
                                 else base.attr)
                    if base_name in ("datetime", "date"):
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            f"wall-clock access {base_name}.{node.attr}; "
                            "simulated runs must not read the calendar")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_ATTRS:
                            yield self.finding(
                                module, node.lineno, node.col_offset,
                                f"importing {alias.name} from time; wall "
                                "clocks live behind repro.clock")
                elif node.module == "datetime":
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "importing datetime; simulated runs must not read "
                        "the calendar")


@register
class UnseededRandomRule(Rule):
    rule_id = "determinism/unseeded-random"
    family = "determinism"
    description = ("only seeded random.Random instances; the module-level "
                   "random functions share unseeded process-global state")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                attr = _attr_on(node, "random")
                if attr and attr not in _RANDOM_ALLOWED:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"random.{attr} uses the process-global RNG; build "
                        "a seeded random.Random and thread it through")
            elif (isinstance(node, ast.ImportFrom) and node.level == 0
                  and node.module == "random"):
                for alias in node.names:
                    if alias.name not in _RANDOM_ALLOWED:
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            f"importing {alias.name} from random; only "
                            "seeded random.Random instances are "
                            "deterministic")


def _is_bare_set(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class SetIterationRule(Rule):
    rule_id = "determinism/set-iteration"
    family = "determinism"
    description = ("no iteration directly over a set expression in the "
                   "scheduling/plan layers; wrap it in sorted() to pin the "
                   "order")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.unit not in SCHEDULING_UNITS:
            return
        for node in ast.walk(module.tree):
            targets: Tuple[ast.expr, ...] = ()
            if isinstance(node, (ast.For, ast.AsyncFor)):
                targets = (node.iter,)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                targets = tuple(gen.iter for gen in node.generators)
            for it in targets:
                if _is_bare_set(it):
                    yield self.finding(
                        module, it.lineno, it.col_offset,
                        "iterating directly over a set; set order is "
                        "insertion- and hash-seed-dependent — wrap in "
                        "sorted() before it feeds scheduling or plans")
