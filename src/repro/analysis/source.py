"""Parsed module sources and the suppression comments they carry.

A :class:`ModuleSource` bundles everything a rule needs to inspect one
module statically: the dotted module name, the raw text, the parsed
AST, and the per-line ``lint: allow[rule-id]`` suppressions (written
as a ``#`` comment on the flagged line).  Rules
never import the code they check — analysis is AST-only, so the linter
runs on trees that would fail to import (and on test fixtures that are
deliberately broken).

Suppressions are read from real COMMENT tokens (via :mod:`tokenize`),
not by scanning text, so the syntax may safely appear inside docstrings
and string literals without registering as a suppression.
"""

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import ConfigError

#: The per-line escape hatch: an allow-comment naming rule ids (see the
#: module docstring for the exact syntax) keeps those rules quiet on
#: its line.  Every allow is audited — one that suppresses nothing is
#: itself reported (see the engine).
_ALLOW_RE = re.compile(r"lint:\s*allow\[([^\]]*)\]")


def parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids allowed on that line."""
    allows: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",")}
            ids.discard("")
            if ids:
                allows.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenizeError:
        # An untokenizable file also fails ast.parse; the engine reports
        # that as a parse-error finding, so nothing to do here.
        pass
    return allows


def module_name_for(path: Path) -> str:
    """Derive the dotted module name from a path containing ``repro``.

    ``src/repro/sim/delays.py`` -> ``repro.sim.delays``; package
    ``__init__`` files name the package itself.  Raises
    :class:`~repro.errors.ConfigError` when no ``repro`` component is
    found — the linter only understands this project's layout.
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    try:
        start = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        raise ConfigError(
            f"cannot derive a repro module name from {path}; "
            "pass files under a repro/ package directory") from None
    dotted = parts[start:]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


@dataclass
class ModuleSource:
    """One module, parsed and ready for rules.

    ``module`` is the dotted name (``repro.sim.delays``); ``unit`` is
    the top-level layer unit under ``repro`` (``sim``), or ``repro``
    itself for the root package modules — the granularity the layer DAG
    is declared at.
    """

    module: str
    path: str
    text: str
    tree: ast.Module
    allows: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def unit(self) -> str:
        parts = self.module.split(".")
        if parts[0] != "repro":
            return parts[0]
        if len(parts) == 1:
            return "repro"
        return parts[1]

    @property
    def is_package_init(self) -> bool:
        return self.path.endswith("__init__.py")

    def allowed(self, line: int, rule: str) -> bool:
        return rule in self.allows.get(line, ())

    @classmethod
    def from_source(cls, module: str, text: str,
                    path: Optional[str] = None) -> "ModuleSource":
        """Build from an in-memory snippet (the test-fixture path)."""
        where = path if path is not None else f"<{module}>"
        try:
            tree = ast.parse(text, filename=where)
        except SyntaxError as exc:
            raise ConfigError(
                f"cannot parse {where}: {exc}") from exc
        return cls(module=module, path=where, text=text, tree=tree,
                   allows=parse_suppressions(text))

    @classmethod
    def from_path(cls, path: Path, root: Optional[Path] = None) -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        rel = path.relative_to(root) if root is not None else path
        return cls.from_source(module_name_for(path), text,
                               path=rel.as_posix())


def discover(root: Path) -> Iterator[Tuple[Path, Path]]:
    """Yield ``(file, base)`` pairs for every ``.py`` under a repro tree.

    ``root`` may be the ``repro`` package directory itself, a directory
    containing one (``src/``), or a single ``.py`` file.  ``base`` is
    the directory module paths are reported relative to.
    """
    root = root.resolve()
    if root.is_file():
        yield root, root.parent
        return
    pkg = root if root.name == "repro" else root / "repro"
    if not pkg.is_dir():
        raise ConfigError(
            f"{root} is neither a repro package nor a directory "
            "containing one")
    base = pkg.parent
    for path in sorted(pkg.rglob("*.py")):
        yield path, base


def load_tree(root: Path) -> Tuple[List[ModuleSource], List[Tuple[str, str]]]:
    """Discover and parse every module under ``root`` (see :func:`discover`).

    Returns ``(modules, parse_errors)`` where each parse error is a
    ``(relative path, message)`` pair — the engine turns those into
    ``lint/parse-error`` findings instead of aborting the whole run.
    """
    modules: List[ModuleSource] = []
    errors: List[Tuple[str, str]] = []
    for path, base in discover(root):
        try:
            modules.append(ModuleSource.from_path(path, root=base))
        except ConfigError as exc:
            errors.append((path.relative_to(base).as_posix(), str(exc)))
    return modules, errors
