"""Permit packages and per-node package storage (Section 3.1).

Two package kinds exist:

* **mobile** packages of level ``i`` holding exactly ``2^i * phi``
  permits — the unit of bulk permit transport;
* **static** permits — the per-node pool requests are granted from.
  All static packages at one node are merged into a single counter,
  which is exactly the representation the memory argument of
  Section 4.4.2 uses ("consider all static packages at v as one
  combined static package").

Reject packages carry no state beyond their presence (they represent
infinitely many rejects), so a node stores just a boolean.

For the name-assignment application (Section 5.2) every package can
optionally carry an explicit interval of permit serial numbers; see
``repro.apps.name_assignment`` — the core controller itself never looks
at intervals, mirroring the paper's separation.
"""

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_package_ids = itertools.count()


@dataclass
class MobilePackage:
    """A mobile permit package.

    ``size`` always equals ``2^level * phi`` for the owning controller's
    ``phi``; the controller enforces this (property tests check it).
    ``interval`` is an optional ``(lo, hi)`` range of permit serial
    numbers, maintained only when the controller runs in interval mode
    for the name-assignment protocol.
    """

    level: int
    size: int
    package_id: int = field(default_factory=lambda: next(_package_ids))
    interval: Optional[Tuple[int, int]] = None

    def split_interval(self) -> Tuple[Optional[Tuple[int, int]],
                                      Optional[Tuple[int, int]]]:
        """Halve this package's interval (left half, right half)."""
        if self.interval is None:
            return None, None
        lo, hi = self.interval
        mid = lo + (hi - lo) // 2
        return (lo, mid), (mid + 1, hi)


@dataclass
class NodeStore:
    """Everything the controller keeps at one node.

    ``static_permits`` is the merged static pool; ``static_intervals``
    mirrors it with serial-number ranges when interval mode is on.
    """

    mobile: List[MobilePackage] = field(default_factory=list)
    static_permits: int = 0
    has_reject: bool = False
    static_intervals: List[Tuple[int, int]] = field(default_factory=list)
    # Cached depth of the hosting node, keyed by the tree's splice
    # generation (``DynamicTree.anc_generation``) — the request engine's
    # indexed filler scan refreshes it lazily when the generation moves.
    host_depth: int = -1
    host_depth_gen: int = -1
    # Level index over ``mobile``, owned by ``repro.core.kernel``: the
    # filler windows admit exactly one level per hop distance, so the
    # kernel's windowed lookup is one dict probe.  ``None`` (or a stale
    # package total) means "rebuild lazily": length-changing direct
    # mutations of ``mobile`` are detected automatically, but a
    # length-preserving in-place swap must set this back to ``None``
    # (the supported mutation surface is the kernel functions).
    _level_slots: Optional[Dict[int, List[MobilePackage]]] = field(
        default=None, compare=False, repr=False)

    @property
    def is_empty(self) -> bool:
        return (not self.mobile and self.static_permits == 0
                and not self.has_reject)

    def total_permits(self) -> int:
        """All permits parked at this node (mobile + static)."""
        return sum(p.size for p in self.mobile) + self.static_permits

    def take_static_serial(self) -> Optional[int]:
        """Pop one serial number from the static interval pool."""
        if not self.static_intervals:
            return None
        lo, hi = self.static_intervals[0]
        if lo == hi:
            self.static_intervals.pop(0)
        else:
            self.static_intervals[0] = (lo + 1, hi)
        return lo

    def merge_from(self, other: "NodeStore") -> None:
        """Absorb another node's store (graceful deletion hand-over)."""
        self.mobile.extend(other.mobile)
        self.static_permits += other.static_permits
        self.static_intervals.extend(other.static_intervals)
        self.has_reject = self.has_reject or other.has_reject
        self._level_slots = None
        other.mobile = []
        other._level_slots = None
        other.static_permits = 0
        other.static_intervals = []


class StoreMap:
    """Lazy node -> :class:`NodeStore` map.

    Nodes with no controller state cost nothing, matching the memory
    claim; iteration only visits nodes that ever held state.

    ``slot_owner`` enables the request engine's fast path: every store
    this map creates is additionally pinned into the node's
    ``_store_owner`` / ``_store`` slots, so per-hop lookups in hot
    climbs become two slot loads instead of a dict probe (which pays a
    Python-level ``TreeNode.__hash__`` call).  Slots are identity-
    checked against the owner; at most one controller per tree claims
    slots at a time (see ``CentralizedController``), so a pinned slot
    is always authoritative for its owner.
    """

    def __init__(self, slot_owner=None):
        self._stores: Dict[object, NodeStore] = {}
        self._slot_owner = slot_owner

    def get(self, node) -> NodeStore:
        owner = self._slot_owner
        if owner is not None and node._store_owner is owner:
            return node._store
        store = self._stores.get(node)
        if store is None:
            store = NodeStore()
            self._stores[node] = store
        if owner is not None:
            node._store_owner = owner
            node._store = store
        return store

    def peek(self, node) -> Optional[NodeStore]:
        """The store if it exists, without creating one."""
        owner = self._slot_owner
        if owner is not None and node._store_owner is owner:
            return node._store
        return self._stores.get(node)

    def discard(self, node) -> Optional[NodeStore]:
        """Remove and return a node's store (used on deletion)."""
        if self._slot_owner is not None and \
                node._store_owner is self._slot_owner:
            node._store_owner = None
            node._store = None
        return self._stores.pop(node, None)

    def items(self):
        return self._stores.items()

    def release_slots(self) -> None:
        """Unpin every slot this map owns (called on controller detach)."""
        if self._slot_owner is None:
            return
        for node in self._stores:
            if node._store_owner is self._slot_owner:
                node._store_owner = None
                node._store = None
        self._slot_owner = None

    def clear(self) -> None:
        self.release_slots()
        self._stores.clear()

    def total_parked_permits(self) -> int:
        """Permits currently sitting in packages anywhere in the tree."""
        return sum(store.total_permits() for store in self._stores.values())
