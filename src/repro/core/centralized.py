"""The centralized (M,W)-Controller with known U (Section 3.1).

This is the reference semantics of the paper's contribution.  Permits
start at the root; requests trigger ``GrantOrReject``:

1. a node holding a reject package rejects locally;
2. a node holding static permits grants one locally;
3. otherwise the algorithm climbs toward the root looking for the
   closest *filler node* — an ancestor holding a mobile package whose
   level matches its distance window — falling back to creating a fresh
   package at the root (or broadcasting a reject wave when the root's
   storage cannot cover it);
4. the found/created package is distributed down the path to the
   requester by the recursive ``Proc``: a level-``k`` package moves to
   ``u_{k-1}`` (the ancestor ``3 * 2^(k-2) * psi`` hops above ``u``),
   splits in two, leaves one half parked there for future requests, and
   recurses with the other half; the final level-0 package becomes the
   requester's static pool.

The prose of the paper states ``Proc`` as "move P (level k) to u_k", but
``u_k`` is only defined for ``k <= j(u) - 1`` and the domain construction
(Section 3.2, Case 2) requires the *post* state "one level-k package at
u_k for every k < j(u)"; the shift-by-one implemented here is the unique
reading satisfying both, and the machine-checked domain invariants in
``tests/core/test_domains.py`` confirm it.

Move complexity is charged per hop of package movement, per the
centralized cost model of Section 2.2.
"""

from typing import Optional

from repro.errors import ControllerError
from repro.metrics.counters import MoveCounters
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode
from repro.tree.paths import ancestor_at
from repro.core.domains import DomainTracker
from repro.core.packages import MobilePackage, StoreMap
from repro.core.params import ControllerParams
from repro.core.requests import Outcome, OutcomeStatus, Request, RequestKind


class CentralizedController(TreeListener):
    """Known-U centralized (M,W)-Controller.

    Parameters
    ----------
    tree:
        The dynamic spanning tree the controller manages.
    m, w, u:
        The controller parameters (see :class:`ControllerParams`).
        ``u`` must upper-bound the number of nodes ever to exist.
    counters:
        Optional shared :class:`MoveCounters` (the iterated/adaptive
        wrappers pass one across their inner controllers).
    track_domains:
        Enable the analysis-only :class:`DomainTracker` so property tests
        can check the Section 3.2 invariants.
    reject_on_exhaustion:
        When the root cannot cover a needed package, the paper's basic
        controller broadcasts a reject wave.  Wrappers set this to False
        to intercept exhaustion (Observation 3.4's halving iterations and
        Observation 2.1's terminating variant); the request then returns
        with ``OutcomeStatus.PENDING`` and :attr:`exhausted` flips.
    track_intervals:
        Maintain explicit permit serial-number intervals on every package
        (used by the name-assignment protocol of Section 5.2).  Serials
        for this controller are ``interval_base + 1 .. interval_base + m``.
    apply_topology:
        When True (default) the controller itself performs granted
        topological changes on the tree, playing the "requesting entity"
        of the model.  The distributed engine reuses this class purely as
        a package data structure with ``apply_topology=False``.
    """

    def __init__(self, tree: DynamicTree, m: int, w: int, u: int,
                 counters: Optional[MoveCounters] = None,
                 track_domains: bool = False,
                 reject_on_exhaustion: bool = True,
                 track_intervals: bool = False,
                 interval_base: int = 0,
                 apply_topology: bool = True,
                 permit_flow_observer=None):
        # ``permit_flow_observer(node, permits)`` is invoked whenever a
        # package carrying ``permits`` permits passes *down* through
        # ``node`` — the monitoring hook the subtree estimator of
        # Lemma 5.3 taps ("each node monitors the packages ... which
        # pass through it down the tree").
        self.permit_flow_observer = permit_flow_observer
        self.tree = tree
        self.params = ControllerParams(m=m, w=w, u=u)
        self.counters = counters if counters is not None else MoveCounters()
        self.stores = StoreMap()
        self.storage = m
        self.granted = 0
        self.rejected = 0
        self.rejecting = False
        self.exhausted = False
        self.reject_on_exhaustion = reject_on_exhaustion
        self.track_intervals = track_intervals
        self._interval_next = interval_base + 1
        self._interval_end = interval_base + m
        self._apply_topology = apply_topology
        self.domains: Optional[DomainTracker] = (
            DomainTracker(tree, self.params) if track_domains else None
        )
        self._attached = True
        tree.add_listener(self)

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Outcome:
        """Run ``GrantOrReject`` for one request, synchronously."""
        if not self._attached:
            raise ControllerError("controller has been detached")
        node = request.node
        if node not in self.tree or not self._still_meaningful(request):
            return Outcome(OutcomeStatus.CANCELLED, request)

        store = self.stores.get(node)
        # Item 1: a reject package answers immediately.
        if store.has_reject or self.rejecting:
            self.rejected += 1
            return Outcome(OutcomeStatus.REJECTED, request)

        # Item 3: replenish the static pool if needed.
        if store.static_permits == 0:
            replenished = self._fetch_permits(node)
            if not replenished:
                if self.reject_on_exhaustion:
                    self.rejected += 1
                    return Outcome(OutcomeStatus.REJECTED, request)
                return Outcome(OutcomeStatus.PENDING, request)
            store = self.stores.get(node)

        # Item 2: grant one static permit and perform the event.
        store.static_permits -= 1
        serial = store.take_static_serial() if self.track_intervals else None
        self.granted += 1
        if self.granted > self.params.m:
            raise ControllerError(
                f"safety violated: granted {self.granted} > M={self.params.m}"
            )
        new_node = self._execute_event(request)
        return Outcome(OutcomeStatus.GRANTED, request,
                       new_node=new_node, serial=serial)

    def unused_permits(self) -> int:
        """Permits not yet granted: root storage plus parked packages.

        This is the quantity ``L`` the halving iterations of
        Observation 3.4 re-budget with.
        """
        return self.storage + self.stores.total_parked_permits()

    def detach(self) -> None:
        """Unregister from the tree; the controller becomes inert."""
        if self._attached:
            self.tree.remove_listener(self)
            if self.domains is not None:
                self.domains.detach()
            self._attached = False

    # ------------------------------------------------------------------
    # GrantOrReject internals.
    # ------------------------------------------------------------------
    def _fetch_permits(self, node: TreeNode) -> bool:
        """Items 3-4: find/create a package and distribute it to ``node``.

        Returns False when the root's storage cannot cover the required
        package (exhaustion); in reject mode this also broadcasts the
        reject wave.
        """
        package, dist = self._find_filler(node)
        if package is None:
            dist_to_root = self.tree.depth(node)
            level = self.params.creation_level(dist_to_root)
            need = self.params.mobile_size(level)
            if self.storage < need:
                if self.reject_on_exhaustion:
                    self._broadcast_reject_wave()
                self.exhausted = True
                return False
            package = MobilePackage(level=level, size=need,
                                    interval=self._take_interval(need))
            self.storage -= need
            dist = dist_to_root
            if self.permit_flow_observer is not None:
                # Freshly created permits "enter" the root as well.
                self.permit_flow_observer(self.tree.root, need)
        self._distribute(package, dist, node)
        return True

    def _find_filler(self, node: TreeNode):
        """Closest ancestor that is a filler node w.r.t. ``node``.

        Returns ``(package, distance)``, removing the package from its
        host's store — or ``(None, None)`` if no filler exists up to and
        including the root.
        """
        dist = 0
        current: Optional[TreeNode] = node
        while current is not None:
            store = self.stores.peek(current)
            if store is not None and store.mobile:
                chosen = None
                for package in store.mobile:
                    if self.params.in_filler_window(package.level, dist):
                        if chosen is None or package.level < chosen.level:
                            chosen = package
                if chosen is not None:
                    store.mobile.remove(chosen)
                    return chosen, dist
            current = current.parent
            dist += 1
        return None, None

    def _distribute(self, package: MobilePackage, dist: int,
                    node: TreeNode) -> None:
        """Procedure ``Proc``: split the package down the path to ``node``.

        ``dist`` is the package's current distance above ``node``.
        """
        while package.level > 0:
            new_level = package.level - 1
            target_dist = self.params.uk_distance(new_level)
            target = ancestor_at(node, target_dist)
            self.counters.package_moves += dist - target_dist
            self._observe_flow(node, dist - 1, target_dist, package.size)
            if self.domains is not None:
                self.domains.cancel(package)
            left_interval, right_interval = package.split_interval()
            half = package.size // 2
            parked = MobilePackage(level=new_level, size=half,
                                   interval=left_interval)
            self.stores.get(target).mobile.append(parked)
            if self.domains is not None:
                self.domains.assign_domain(parked, target, toward=node)
            package.level = new_level
            package.size = half
            package.interval = right_interval
            dist = target_dist
        # Level 0: the package reaches the requester and becomes static.
        self.counters.package_moves += dist
        self._observe_flow(node, dist - 1, 0, package.size)
        if self.domains is not None:
            self.domains.cancel(package)
        store = self.stores.get(node)
        store.static_permits += package.size
        if package.interval is not None:
            store.static_intervals.append(package.interval)

    def _observe_flow(self, node: TreeNode, from_dist: int, to_dist: int,
                      permits: int) -> None:
        """Report a downward package move to the flow observer.

        The package entered every node at distances ``from_dist`` down
        to ``to_dist`` (inclusive) above ``node``.
        """
        if self.permit_flow_observer is None or from_dist < to_dist:
            return
        current = ancestor_at(node, to_dist)
        for _ in range(from_dist - to_dist + 1):
            self.permit_flow_observer(current, permits)
            parent = current.parent
            if parent is None:
                break
            current = parent

    def _take_interval(self, size: int):
        """Carve the next ``size`` serial numbers out of the root storage."""
        if not self.track_intervals:
            return None
        lo = self._interval_next
        hi = lo + size - 1
        if hi > self._interval_end:
            raise ControllerError("interval storage exhausted")
        self._interval_next = hi + 1
        return (lo, hi)

    def _broadcast_reject_wave(self) -> None:
        """Place a reject package at every node (item 3b).

        Centrally the broadcast is instantaneous; the cost is one move
        per node, exactly as splitting/moving reject packages would pay.
        """
        if self.rejecting:
            return
        self.rejecting = True
        self.counters.reject_moves += self.tree.size
        for node in self.tree.nodes():
            self.stores.get(node).has_reject = True

    # ------------------------------------------------------------------
    # Event execution (the controller plays the granted entity).
    # ------------------------------------------------------------------
    def _still_meaningful(self, request: Request) -> bool:
        """Check the request's event is still executable (Section 4.2)."""
        kind = request.kind
        node = request.node
        if kind is RequestKind.REMOVE_LEAF:
            return not node.is_root and not node.children
        if kind is RequestKind.REMOVE_INTERNAL:
            return not node.is_root and bool(node.children)
        if kind is RequestKind.ADD_INTERNAL:
            return (request.child is not None and request.child.alive
                    and request.child.parent is node)
        return True

    def _execute_event(self, request: Request) -> Optional[TreeNode]:
        if not self._apply_topology or not request.kind.is_topological:
            return None
        if request.kind is RequestKind.ADD_LEAF:
            return self.tree.add_leaf(request.node)
        if request.kind is RequestKind.ADD_INTERNAL:
            return self.tree.add_internal(request.node, request.child)
        if request.kind is RequestKind.REMOVE_LEAF:
            self.tree.remove_leaf(request.node)
            return None
        if request.kind is RequestKind.REMOVE_INTERNAL:
            self.tree.remove_internal(request.node)
            return None
        raise ControllerError(f"unknown request kind {request.kind}")

    # ------------------------------------------------------------------
    # Tree listener: graceful hand-over on deletions; reject propagation
    # to newborn nodes (the parent "informs" the child, item 2b).
    # ------------------------------------------------------------------
    def on_add_leaf(self, node: TreeNode) -> None:
        if self.rejecting:
            self.stores.get(node).has_reject = True

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        if self.rejecting:
            self.stores.get(node).has_reject = True

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        self._relocate_store(node, parent)

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children) -> None:
        self._relocate_store(node, parent)

    def _relocate_store(self, node: TreeNode, parent: TreeNode) -> None:
        store = self.stores.discard(node)
        if store is None or store.is_empty:
            return
        # One move carries the whole set of packages one hop (Section 2.2
        # allows moving a set of objects in one move).
        self.counters.relocation_moves += 1
        if self.domains is not None:
            for package in store.mobile:
                self.domains.set_host(package, parent)
        self.stores.get(parent).merge_from(store)
