"""The centralized (M,W)-Controller with known U (Section 3.1).

This is the reference semantics of the paper's contribution.  Permits
start at the root; requests trigger ``GrantOrReject``:

1. a node holding a reject package rejects locally;
2. a node holding static permits grants one locally;
3. otherwise the algorithm climbs toward the root looking for the
   closest *filler node* — an ancestor holding a mobile package whose
   level matches its distance window — falling back to creating a fresh
   package at the root (or broadcasting a reject wave when the root's
   storage cannot cover it);
4. the found/created package is distributed down the path to the
   requester by the recursive ``Proc``: a level-``k`` package moves to
   ``u_{k-1}`` (the ancestor ``3 * 2^(k-2) * psi`` hops above ``u``),
   splits in two, leaves one half parked there for future requests, and
   recurses with the other half; the final level-0 package becomes the
   requester's static pool.

The permit/package *mechanics* — the ledger, the level-indexed filler
lookup, the ``Proc`` split schedule, the reject wave — live in the
shared :mod:`repro.core.kernel`; this class is the synchronous
executor: it resolves each kernel plan step against the ancestry
structure immediately and charges one package move per hop travelled.
The distributed engine executes the *same* plans hop-by-hop, which is
what makes centralized/distributed equivalence hold by construction
(and lets ``tests/test_kernel_equivalence.py`` compare kernel traces
transition-for-transition).

The prose of the paper states ``Proc`` as "move P (level k) to u_k", but
``u_k`` is only defined for ``k <= j(u) - 1`` and the domain construction
(Section 3.2, Case 2) requires the *post* state "one level-k package at
u_k for every k < j(u)"; the shift-by-one implemented here is the unique
reading satisfying both, and the machine-checked domain invariants in
``tests/core/test_domains.py`` confirm it.

Move complexity is charged per hop of package movement, per the
centralized cost model of Section 2.2.
"""

from typing import Dict, Iterable, List, Optional

from repro.errors import ControllerError
from repro.metrics.counters import MoveCounters
from repro.protocol import ControllerView
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode
from repro.tree import paths
from repro.core import kernel
from repro.core.domains import DomainTracker
from repro.core.kernel import KernelTrace, PermitLedger
from repro.core.packages import MobilePackage, NodeStore, StoreMap
from repro.core.params import ControllerParams
from repro.core.requests import Outcome, OutcomeStatus, Request, RequestKind


class CentralizedController(TreeListener):
    """Known-U centralized (M,W)-Controller.

    Parameters
    ----------
    tree:
        The dynamic spanning tree the controller manages.
    m, w, u:
        The controller parameters (see :class:`ControllerParams`).
        ``u`` must upper-bound the number of nodes ever to exist.
    counters:
        Optional shared :class:`MoveCounters` (the iterated/adaptive
        wrappers pass one across their inner controllers).
    track_domains:
        Enable the analysis-only :class:`DomainTracker` so property tests
        can check the Section 3.2 invariants.
    reject_on_exhaustion:
        When the root cannot cover a needed package, the paper's basic
        controller broadcasts a reject wave.  Wrappers set this to False
        to intercept exhaustion (Observation 3.4's halving iterations and
        Observation 2.1's terminating variant); the request then returns
        with ``OutcomeStatus.PENDING`` and :attr:`exhausted` flips.
    track_intervals:
        Maintain explicit permit serial-number intervals on every package
        (used by the name-assignment protocol of Section 5.2).  Serials
        for this controller are ``interval_base + 1 .. interval_base + m``.
    apply_topology:
        When True (default) the controller itself performs granted
        topological changes on the tree, playing the "requesting entity"
        of the model.  The distributed engine reuses this class purely as
        a package data structure with ``apply_topology=False``.
    """

    def __init__(self, tree: DynamicTree, m: int, w: int, u: int,
                 counters: Optional[MoveCounters] = None,
                 track_domains: bool = False,
                 reject_on_exhaustion: bool = True,
                 track_intervals: bool = False,
                 interval_base: int = 0,
                 apply_topology: bool = True,
                 permit_flow_observer=None,
                 kernel_trace: Optional[KernelTrace] = None):
        # ``permit_flow_observer(node, permits)`` is invoked whenever a
        # package carrying ``permits`` permits passes *down* through
        # ``node`` — the monitoring hook the subtree estimator of
        # Lemma 5.3 taps ("each node monitors the packages ... which
        # pass through it down the tree").
        self.permit_flow_observer = permit_flow_observer
        self.tree = tree
        self.params = ControllerParams(m=m, w=w, u=u)
        self.counters = counters if counters is not None else MoveCounters()
        # Request-engine fast path: claim the tree's per-node store
        # slots if nobody holds them (single claimant per tree; extra
        # concurrent controllers transparently use dict lookups).
        self._fast = bool(tree.skip_ancestry) and tree.store_slot_owner is None
        if self._fast:
            tree.store_slot_owner = self
        self.stores = StoreMap(slot_owner=self if self._fast else None)
        self._trace = kernel_trace
        self._ledger = PermitLedger(
            params=self.params, storage=m,
            track_intervals=track_intervals, interval_base=interval_base,
            trace=kernel_trace,
        )
        self.rejecting = False
        self.exhausted = False
        self.reject_on_exhaustion = reject_on_exhaustion
        self.track_intervals = track_intervals
        self._apply_topology = apply_topology
        self.domains: Optional[DomainTracker] = (
            DomainTracker(tree, self.params) if track_domains else None
        )
        # Index of nodes currently parking >= 1 mobile package.  Mobile
        # packages are sparse (a fetch parks at most one per level), so
        # scanning hosts beats climbing the whole root path on deep
        # trees; ``_find_filler`` picks whichever bound is smaller.
        self._mobile_hosts: Dict[TreeNode, NodeStore] = {}
        # Adaptive ancestry policy: skip-pointer tables pay off only
        # while splices are rare (a splice invalidates the caches of a
        # whole subtree).  Every 64 requests we look at how far the
        # tree's splice generation moved and enable/disable the
        # table-based paths accordingly; correctness is unaffected
        # either way (both paths are exact), only constants change.
        # Starts conservative (walks) until the first window proves the
        # churn is low.
        self._tables_on = False
        self._req_count = 0
        self._win_gen = tree.anc_generation
        self._attached = True
        tree.add_listener(self)

    # ------------------------------------------------------------------
    # Ledger delegation (the public tallies live on the kernel ledger;
    # setters are kept so diagnostic code and doctored-state tests can
    # manipulate them as before).
    # ------------------------------------------------------------------
    @property
    def storage(self) -> int:
        return self._ledger.storage

    @storage.setter
    def storage(self, value: int) -> None:
        self._ledger.storage = value

    @property
    def granted(self) -> int:
        return self._ledger.granted

    @granted.setter
    def granted(self, value: int) -> None:
        self._ledger.granted = value

    @property
    def rejected(self) -> int:
        return self._ledger.rejected

    @rejected.setter
    def rejected(self, value: int) -> None:
        self._ledger.rejected = value

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Outcome:
        """Run ``GrantOrReject`` for one request, synchronously."""
        if not self._attached:
            raise ControllerError("controller has been detached")
        if self._fast:
            self._req_count += 1
            if not self._req_count & 63:
                gen = self.tree.anc_generation
                self._tables_on = gen - self._win_gen <= 2
                self._win_gen = gen
        node = request.node
        if node not in self.tree or not self._still_meaningful(request):
            return Outcome(OutcomeStatus.CANCELLED, request)

        store = self.stores.get(node)
        # Item 1: a reject package answers immediately.
        if store.has_reject or self.rejecting:
            self._ledger.count_reject()
            return Outcome(OutcomeStatus.REJECTED, request)

        # Item 3: replenish the static pool if needed.
        if store.static_permits == 0:
            replenished = self._fetch_permits(node)
            if not replenished:
                if self.reject_on_exhaustion:
                    self._ledger.count_reject()
                    return Outcome(OutcomeStatus.REJECTED, request)
                return Outcome(OutcomeStatus.PENDING, request)
            store = self.stores.get(node)

        # Item 2: grant one static permit and perform the event.
        store.static_permits -= 1
        serial = store.take_static_serial() if self.track_intervals else None
        self._ledger.grant(node)
        new_node = self._execute_event(request)
        return Outcome(OutcomeStatus.GRANTED, request,
                       new_node=new_node, serial=serial)

    def handle_batch(self, requests: Iterable[Request]) -> List[Outcome]:
        """Run ``GrantOrReject`` for a batch of requests.

        Requests are served in order with *exactly* the per-request
        outcomes and move-counter accounting of calling :meth:`handle`
        on each (the equivalence is property-tested); the batch form
        amortizes the skip-pointer ancestry repairs and the mobile-host
        index across the whole batch, which is where the throughput
        comes from on deep trees.
        """
        return [self.handle(request) for request in requests]

    def unused_permits(self) -> int:
        """Permits not yet granted: root storage plus parked packages.

        This is the quantity ``L`` the halving iterations of
        Observation 3.4 re-budget with.
        """
        return self._ledger.unused(self.stores.total_parked_permits())

    def introspect(self) -> ControllerView:
        """The :class:`repro.protocol.ControllerProtocol` audit view."""
        return ControllerView(
            flavor="centralized", m=self.params.m, w=self.params.w,
            granted=self.granted, rejected=self.rejected,
            params=self.params, storage=self.storage, stores=self.stores,
            tree=self.tree,
        )

    def detach(self) -> None:
        """Unregister from the tree; the controller becomes inert."""
        if self._attached:
            self.tree.remove_listener(self)
            if self.domains is not None:
                self.domains.detach()
            if self._fast:
                self.stores.release_slots()
                self.tree.store_slot_owner = None
                self._fast = False
            self._attached = False

    # ------------------------------------------------------------------
    # GrantOrReject internals.
    # ------------------------------------------------------------------
    def _fetch_permits(self, node: TreeNode) -> bool:
        """Items 3-4: find/create a package and distribute it to ``node``.

        Returns False when the root's storage cannot cover the required
        package (exhaustion); in reject mode this also broadcasts the
        reject wave.
        """
        package, dist = self._find_filler(node)
        if package is None:
            dist_to_root = self._depth(node)
            level = self.params.creation_level(dist_to_root)
            if not self._ledger.covers(self.params.mobile_size(level)):
                if self.reject_on_exhaustion:
                    self._broadcast_reject_wave()
                self.exhausted = True
                return False
            package = self._ledger.create_package(level, dist_to_root)
            dist = dist_to_root
            if self.permit_flow_observer is not None:
                # Freshly created permits "enter" the root as well.
                self.permit_flow_observer(self.tree.root, package.size)
        self._distribute(package, dist, node)
        return True

    def _find_filler(self, node: TreeNode):
        """Closest ancestor that is a filler node w.r.t. ``node``.

        Returns ``(package, distance)``, removing the package from its
        host's store — or ``(None, None)`` if no filler exists up to and
        including the root.

        Three equivalent strategies (identical result, all free in the
        centralized cost model — only package moves are charged):

        * the empty-index short cut — no parked package anywhere means
          no filler, without touching the tree;
        * with warm skip-pointer ancestry, an **indexed scan** of
          ``_mobile_hosts``: O(hosts) candidate distances from
          generation-cached host depths plus O(log depth) skip-jump
          verification of the winners — independent of the tree depth;
        * otherwise the climb — O(depth), but over per-node store
          slots (two slot loads per hop) when this controller holds
          the fast path, dict probes when it does not.
        """
        if not self._mobile_hosts:
            return None, None
        if self._fast and self._tables_on:
            return self._find_filler_indexed(node, -1)
        return self._find_filler_climb(node)

    def _find_filler_climb(self, node: TreeNode):
        """The ancestor climb: first in-window package wins.

        With the fast path claimed, each hop is two slot loads; without
        it, a dict probe per hop.  The per-store window check is the
        kernel's level-windowed lookup (one dict probe), equivalent to
        scanning every parked package.
        """
        params = self.params
        trace = self._trace
        fast = self._fast
        owner = self
        stores = self.stores
        dist = 0
        current: Optional[TreeNode] = node
        while current is not None:
            if fast:
                store = (current._store
                         if current._store_owner is owner else None)
            else:
                store = stores.peek(current)
            if store is not None and store.mobile:
                chosen = kernel.take_filler(store, dist, params,
                                            node=current, trace=trace)
                if chosen is not None:
                    if not store.mobile:
                        self._mobile_hosts.pop(current, None)
                    return chosen, dist
            current = current.parent
            dist += 1
        return None, None

    def _find_filler_indexed(self, node: TreeNode, min_dist: int):
        """Closest filler strictly beyond ``min_dist`` hops, via index.

        Scans the parked-package hosts: candidate distances come from
        generation-cached host depths (one O(log depth) refresh per
        splice generation), and only window-passing candidates pay the
        O(log depth) skip-jump ancestry verification.  Equivalent to
        continuing the climb past ``min_dist``.
        """
        tree = self.tree
        gen = tree.anc_generation
        node_depth = tree.depth(node)
        params = self.params
        excluded = None
        while True:
            # Optimistic pass: pick the closest window-matching host by
            # depth difference alone; ancestry of the single winner is
            # verified after the loop (it fails only for off-path hosts
            # at a coincidental depth, which are then excluded and the
            # scan retried).
            best = None
            best_dist = None
            best_host = None
            for host, store in self._mobile_hosts.items():
                if store.host_depth_gen != gen:
                    store.host_depth = tree.depth(host)
                    store.host_depth_gen = gen
                dist = node_depth - store.host_depth
                if dist <= min_dist or \
                        (best_dist is not None and dist >= best_dist) or \
                        (excluded is not None and host in excluded):
                    continue
                chosen = kernel.peek_filler(store, dist, params)
                if chosen is not None:
                    best, best_dist, best_host = chosen, dist, host
            if best is None:
                return None, None
            if tree.ancestor_at(node, best_dist) is best_host:
                break
            if excluded is None:
                excluded = set()
            excluded.add(best_host)
        store = self._mobile_hosts[best_host]
        kernel.take_package(store, best, node=best_host, dist=best_dist,
                            trace=self._trace)
        if not store.mobile:
            del self._mobile_hosts[best_host]
        return best, best_dist

    def _distribute(self, package: MobilePackage, dist: int,
                    node: TreeNode) -> None:
        """Procedure ``Proc``: split the package down the path to ``node``.

        ``dist`` is the package's current distance above ``node``.  The
        split schedule comes from the kernel's distribution plan; this
        executor applies each step synchronously, resolving the step's
        distance to a node via the ancestry structure and charging one
        package move per hop travelled.
        """
        plan = kernel.plan_distribution(self.params, package.level,
                                        package.size, dist)
        for step in plan.steps:
            target = self._ancestor_at(node, step.dist)
            self.counters.package_moves += dist - step.dist
            self._observe_flow(node, dist - 1, step.dist, package.size)
            if self.domains is not None:
                self.domains.cancel(package)
            left_interval, right_interval = package.split_interval()
            parked = MobilePackage(level=step.level, size=step.size,
                                   interval=left_interval)
            target_store = self.stores.get(target)
            kernel.park(target_store, parked, node=target,
                        trace=self._trace)
            self._mobile_hosts[target] = target_store
            if self.domains is not None:
                self.domains.assign_domain(parked, target, toward=node)
            package.level = step.level
            package.size = step.size
            package.interval = right_interval
            dist = step.dist
        # Level 0: the package reaches the requester and becomes static.
        self.counters.package_moves += dist
        self._observe_flow(node, dist - 1, 0, package.size)
        if self.domains is not None:
            self.domains.cancel(package)
        kernel.absorb(self.stores.get(node), package, node=node,
                      trace=self._trace)

    def _observe_flow(self, node: TreeNode, from_dist: int, to_dist: int,
                      permits: int) -> None:
        """Report a downward package move to the flow observer.

        The package entered every node at distances ``from_dist`` down
        to ``to_dist`` (inclusive) above ``node``.
        """
        if self.permit_flow_observer is None or from_dist < to_dist:
            return
        current = self._ancestor_at(node, to_dist)
        for _ in range(from_dist - to_dist + 1):
            self.permit_flow_observer(current, permits)
            parent = current.parent
            if parent is None:
                break
            current = parent

    def _depth(self, node: TreeNode) -> int:
        """Depth of ``node``, honouring the adaptive ancestry policy."""
        if self._tables_on:
            return self.tree.depth(node)
        return paths.depth(node)

    def _ancestor_at(self, node: TreeNode, hops: int) -> TreeNode:
        """Exact ancestor query, honouring the adaptive ancestry policy.

        Callers guarantee ``hops <= depth(node)``.
        """
        if self._tables_on:
            return self.tree.ancestor_at(node, hops)
        return paths.ancestor_at(node, hops)

    def _broadcast_reject_wave(self) -> None:
        """Place a reject package at every node (item 3b).

        Centrally the broadcast is instantaneous; the cost — one move
        per node, exactly as splitting/moving reject packages would pay
        — comes from the kernel's reject-wave accounting.
        """
        if self.rejecting:
            return
        self.rejecting = True
        self.counters.reject_moves += kernel.broadcast_reject(
            self.tree, self.stores.get, trace=self._trace)

    # ------------------------------------------------------------------
    # Event execution (the controller plays the granted entity).
    # ------------------------------------------------------------------
    def _still_meaningful(self, request: Request) -> bool:
        """Check the request's event is still executable (Section 4.2)."""
        kind = request.kind
        node = request.node
        if kind is RequestKind.REMOVE_LEAF:
            return not node.is_root and not node.children
        if kind is RequestKind.REMOVE_INTERNAL:
            return not node.is_root and bool(node.children)
        if kind is RequestKind.ADD_INTERNAL:
            return (request.child is not None and request.child.alive
                    and request.child.parent is node)
        return True

    def _execute_event(self, request: Request) -> Optional[TreeNode]:
        if not self._apply_topology or not request.kind.is_topological:
            return None
        if request.kind is RequestKind.ADD_LEAF:
            return self.tree.add_leaf(request.node)
        if request.kind is RequestKind.ADD_INTERNAL:
            return self.tree.add_internal(request.node, request.child)
        if request.kind is RequestKind.REMOVE_LEAF:
            self.tree.remove_leaf(request.node)
            return None
        if request.kind is RequestKind.REMOVE_INTERNAL:
            self.tree.remove_internal(request.node)
            return None
        raise ControllerError(f"unknown request kind {request.kind}")

    # ------------------------------------------------------------------
    # Tree listener: graceful hand-over on deletions; reject propagation
    # to newborn nodes (the parent "informs" the child, item 2b).
    # ------------------------------------------------------------------
    def on_add_leaf(self, node: TreeNode) -> None:
        if self.rejecting:
            self.stores.get(node).has_reject = True

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        if self.rejecting:
            self.stores.get(node).has_reject = True

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        self._relocate_store(node, parent)

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children) -> None:
        self._relocate_store(node, parent)

    def _relocate_store(self, node: TreeNode, parent: TreeNode) -> None:
        store = self.stores.discard(node)
        self._mobile_hosts.pop(node, None)
        if store is None or store.is_empty:
            return
        # One move carries the whole set of packages one hop (Section 2.2
        # allows moving a set of objects in one move).
        self.counters.relocation_moves += 1
        if self.domains is not None:
            for package in store.mobile:
                self.domains.set_host(package, parent)
        parent_store = self.stores.get(parent)
        parent_store.merge_from(store)
        if parent_store.mobile:
            self._mobile_hosts[parent] = parent_store
