"""Request and outcome types.

A request arrives at a node and asks permission for an *event* — either a
topological change of the spanning tree or a plain (non-topological)
event such as "sell one ticket" (Section 2.2 notes controllers count any
event type; Section 2.2 also notes a plain event can be treated exactly
like a leaf insertion, which is why the controller handles them through
one code path).

Where a request arrives (Section 2.1.2):

* delete node ``u``        -> the request arrives at ``u``;
* add a node below ``v``   -> the request arrives at ``v`` (parent-to-be);
* split edge ``(v, w)``    -> the request arrives at ``v`` (the parent);
* plain event at ``u``     -> the request arrives at ``u``.
"""

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import ControllerError
from repro.tree.node import TreeNode

_request_ids = itertools.count()


class RequestKind(Enum):
    """What the requesting entity wants to do once granted."""

    PLAIN = "plain"
    ADD_LEAF = "add_leaf"
    ADD_INTERNAL = "add_internal"
    REMOVE_LEAF = "remove_leaf"
    REMOVE_INTERNAL = "remove_internal"

    @property
    def is_topological(self) -> bool:
        return self is not RequestKind.PLAIN

    @property
    def is_removal(self) -> bool:
        return self in (RequestKind.REMOVE_LEAF, RequestKind.REMOVE_INTERNAL)


class OutcomeStatus(Enum):
    """Terminal states of a request."""

    GRANTED = "granted"
    REJECTED = "rejected"
    # The request's target vanished before it could be served (e.g. a
    # second deletion request for an already-deleted node).  Section 4.2
    # explicitly allows such requests to "lose their meaning".
    CANCELLED = "cancelled"
    # Terminating controllers queue requests instead of rejecting them
    # (Observation 2.1); PENDING is reported to the caller so application
    # layers can resubmit in their next iteration.
    PENDING = "pending"


@dataclass
class Request:
    """One request for a permit.

    ``node`` is where the request arrives.  For ``ADD_INTERNAL``, ``child``
    names the child of ``node`` whose edge is being split; for all other
    kinds ``child`` must be ``None``.
    """

    kind: RequestKind
    node: TreeNode
    child: Optional[TreeNode] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self):
        if self.kind is RequestKind.ADD_INTERNAL:
            if self.child is None:
                raise ControllerError("ADD_INTERNAL requires a child edge")
        elif self.child is not None:
            raise ControllerError(f"{self.kind} takes no child argument")


@dataclass
class Outcome:
    """Result delivered to the requesting entity."""

    status: OutcomeStatus
    request: Request
    # For granted ADD_LEAF / ADD_INTERNAL: the node the environment created.
    new_node: Optional[TreeNode] = None
    # When the controller runs in interval mode (name assignment,
    # Section 5.2): the serial number of the granted permit.
    serial: Optional[int] = None

    @property
    def granted(self) -> bool:
        return self.status is OutcomeStatus.GRANTED

    @property
    def rejected(self) -> bool:
        return self.status is OutcomeStatus.REJECTED


def perform_event(tree, request: Request) -> Optional[TreeNode]:
    """Execute a granted request's event on the tree.

    This is the "requesting entity performs the topological change"
    step of the model; controllers call it at grant time.  Returns the
    newly created node for additions, ``None`` otherwise.
    """
    if request.kind is RequestKind.PLAIN:
        return None
    if request.kind is RequestKind.ADD_LEAF:
        return tree.add_leaf(request.node)
    if request.kind is RequestKind.ADD_INTERNAL:
        return tree.add_internal(request.node, request.child)
    if request.kind is RequestKind.REMOVE_LEAF:
        tree.remove_leaf(request.node)
        return None
    if request.kind is RequestKind.REMOVE_INTERNAL:
        tree.remove_internal(request.node)
        return None
    raise ControllerError(f"unknown request kind {request.kind}")
