"""The paper's primary contribution: (M,W)-Controllers for dynamic trees.

Centralized form (Section 3), used both directly (its *move complexity*
is the quantity Lemma 3.3 bounds) and as the reference semantics that the
distributed implementation (Section 4) is reduced to.

Public entry points:

* :mod:`repro.core.kernel` — the shared GrantOrReject/Proc kernel
  (:class:`PermitLedger`, indexed filler lookup, distribution plans,
  the reject wave, :class:`KernelTrace`), executed synchronously here
  and hop-by-hop by :mod:`repro.distributed`;
* :class:`CentralizedController` — known-U controller (Section 3.1);
* :class:`IteratedController` — halving iterations, Observation 3.4,
  including the W = 0 recipe;
* :class:`AdaptiveController` — unknown-U controller, Theorem 3.5;
* :class:`TerminatingController` — the terminating variant of
  Observation 2.1, the form the Section 5 applications consume.
"""

from repro.core.params import ControllerParams
from repro.core.requests import Request, RequestKind, Outcome, OutcomeStatus
from repro.core.packages import MobilePackage, NodeStore
from repro.core.kernel import (
    DistributionPlan,
    KernelTrace,
    PermitLedger,
    SplitStep,
)
from repro.core.domains import DomainTracker
from repro.core.centralized import CentralizedController
from repro.core.iterated import IteratedController
from repro.core.adaptive import AdaptiveController
from repro.core.terminating import TerminatingController

__all__ = [
    "ControllerParams",
    "Request",
    "RequestKind",
    "Outcome",
    "OutcomeStatus",
    "MobilePackage",
    "NodeStore",
    "DistributionPlan",
    "KernelTrace",
    "PermitLedger",
    "SplitStep",
    "DomainTracker",
    "CentralizedController",
    "IteratedController",
    "AdaptiveController",
    "TerminatingController",
]
