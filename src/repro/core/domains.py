"""Package domains and the three domain invariants (Section 3.2).

Domains exist *for analysis only*: the algorithm never communicates to
maintain them ("the algorithm does not need to use any communication for
updating domains").  We therefore implement them as an optional tracker
that controllers feed; property tests enable it and machine-check the
paper's three invariants after every step of randomized scenarios:

1. the domain of each existing level-k mobile package contains exactly
   ``2^(k-1) * psi`` nodes (deleted nodes included — Case 5 keeps them);
2. domains of existing packages of the same level are pairwise disjoint;
3. the *currently existing* nodes of a domain form a path hanging down
   from some child of the node hosting the package.

Maintenance rules implemented (mirroring Cases 1-5 of Section 3.2):

* a package formed by a split during ``Proc`` receives as domain the
  ``2^(k-1) * psi`` nodes just below its landing spot on the path to the
  requesting node;
* splits and static conversions cancel the parent package's domain;
* an internal insertion above a domain node joins the domain and evicts
  the bottom-most *existing* domain node;
* deletions leave the domain unchanged (dead nodes keep membership).
"""

from typing import Dict, List, Optional, Set

from repro.errors import InvariantViolation
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode
from repro.core.packages import MobilePackage
from repro.core.params import ControllerParams


class DomainTracker(TreeListener):
    """Tracks domains of live mobile packages and checks the invariants.

    The tracker registers itself as a tree listener to apply the
    insertion rule (Case 4); the owning controller calls
    :meth:`assign_domain` / :meth:`cancel` / :meth:`set_host` at the
    package lifecycle points.
    """

    def __init__(self, tree: DynamicTree, params: ControllerParams):
        self._tree = tree
        self._params = params
        # package_id -> ordered domain path, top (nearest host) first.
        self._domains: Dict[int, List[TreeNode]] = {}
        # package_id -> (package, host node)
        self._packages: Dict[int, MobilePackage] = {}
        self._hosts: Dict[int, TreeNode] = {}
        tree.add_listener(self)

    # ------------------------------------------------------------------
    # Lifecycle notifications from the controller.
    # ------------------------------------------------------------------
    def assign_domain(self, package: MobilePackage, host: TreeNode,
                      toward: TreeNode) -> None:
        """Give ``package`` (just parked at ``host``) its initial domain.

        The domain is the first ``2^(k-1) * psi`` nodes of the path that
        descends from ``host`` toward the requesting node ``toward``
        (Case 2: vertices ``x`` with ``1 <= d(x, host) <= 2^(k-1) psi``).
        """
        size = self._params.domain_size(package.level)
        path: List[TreeNode] = []
        current = toward
        while current is not host:
            path.append(current)
            current = current.parent
            if current is None:
                raise InvariantViolation(
                    f"host {host} not an ancestor of {toward}"
                )
        # ``path`` is toward..child-of-host, bottom-up; the domain is the
        # topmost ``size`` nodes of it (closest to the host).
        if len(path) < size:
            raise InvariantViolation(
                f"path below host has {len(path)} nodes, domain needs {size}"
            )
        domain_bottom_up = path[-size:]
        self._domains[package.package_id] = list(reversed(domain_bottom_up))
        self._packages[package.package_id] = package
        self._hosts[package.package_id] = host

    def cancel(self, package: MobilePackage) -> None:
        """Drop the domain (package split, became static, or consumed)."""
        self._domains.pop(package.package_id, None)
        self._packages.pop(package.package_id, None)
        self._hosts.pop(package.package_id, None)

    def set_host(self, package: MobilePackage, host: TreeNode) -> None:
        """Record that ``package`` now sits at ``host`` (deletion move)."""
        if package.package_id in self._hosts:
            self._hosts[package.package_id] = host

    def tracked_packages(self) -> List[MobilePackage]:
        return list(self._packages.values())

    def domain_of(self, package: MobilePackage) -> Optional[List[TreeNode]]:
        return self._domains.get(package.package_id)

    # ------------------------------------------------------------------
    # Tree listener: Case 4 (insertion) — deletions need no action.
    # ------------------------------------------------------------------
    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        for package_id, domain in self._domains.items():
            try:
                index = domain.index(child)
            except ValueError:
                continue
            # ``node`` became the parent of a domain member: it joins just
            # above ``child``; the bottom-most existing member leaves.
            domain.insert(index, node)
            for position in range(len(domain) - 1, -1, -1):
                if domain[position].alive:
                    del domain[position]
                    break
            else:
                raise InvariantViolation(
                    f"domain of package {package_id} has no existing node"
                )

    # ------------------------------------------------------------------
    # Invariant checks (used by tests after every scenario step).
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`InvariantViolation` if any invariant is broken."""
        by_level: Dict[int, List[int]] = {}
        for package_id, package in self._packages.items():
            by_level.setdefault(package.level, []).append(package_id)

        for package_id, package in self._packages.items():
            domain = self._domains[package_id]
            expected = self._params.domain_size(package.level)
            if len(domain) != expected:
                raise InvariantViolation(
                    f"invariant 1: package {package_id} level "
                    f"{package.level} domain has {len(domain)} nodes, "
                    f"expected {expected}"
                )
            self._check_path_invariant(package_id, domain)

        for level, package_ids in by_level.items():
            seen: Set[TreeNode] = set()
            for package_id in package_ids:
                for node in self._domains[package_id]:
                    if node in seen:
                        raise InvariantViolation(
                            f"invariant 2: level {level} domains overlap "
                            f"at {node}"
                        )
                    seen.add(node)

    def _check_path_invariant(self, package_id: int,
                              domain: List[TreeNode]) -> None:
        """Invariant 3: alive domain nodes form a path below the host."""
        host = self._hosts[package_id]
        alive = [node for node in domain if node.alive]
        if not alive:
            # All domain members were deleted; the path condition is
            # vacuous (the paper's invariant speaks of existing nodes).
            return
        if alive[0].parent is not host:
            raise InvariantViolation(
                f"invariant 3: top of domain {alive[0]} does not hang "
                f"from host {host} (parent is {alive[0].parent})"
            )
        for upper, lower in zip(alive, alive[1:]):
            if lower.parent is not upper:
                raise InvariantViolation(
                    f"invariant 3: {lower} not a child of {upper} in the "
                    f"domain of package {package_id}"
                )

    def clear(self) -> None:
        """Forget everything (controller reset between iterations)."""
        self._domains.clear()
        self._packages.clear()
        self._hosts.clear()

    def detach(self) -> None:
        """Unregister from the tree (end of controller lifetime)."""
        self._tree.remove_listener(self)
