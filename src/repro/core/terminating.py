"""Terminating (M,W)-Controller — Observation 2.1.

A terminating controller never rejects.  Instead, once the budget cannot
cover further requests it *terminates*: a reject-signal broadcast is
replaced by queuing the would-be-rejected requests, and a broadcast +
upcast round confirms that every permitted event actually occurred before
the root outputs the termination signal.  Guarantees at termination time
``t``: between ``M - W`` and ``M`` permits were granted, no permit is
granted after ``t``, and all granted events have occurred.

This is the form all Section 5 applications consume: they run in
iterations, each iteration driven by one terminating controller; the
requests still pending at termination are resubmitted by the application
to the next iteration's controller.
"""

from typing import Iterable, List, Optional

from repro.errors import ControllerError
from repro.metrics.counters import MoveCounters
from repro.protocol import ControllerView
from repro.tree.dynamic_tree import DynamicTree
from repro.core.centralized import CentralizedController
from repro.core.requests import Outcome, OutcomeStatus, Request


class TerminatingController:
    """Terminating wrapper around a known-U centralized controller.

    Parameters mirror :class:`CentralizedController`; the wrapped inner
    controller is created with ``reject_on_exhaustion=False`` so that
    exhaustion surfaces as ``PENDING`` instead of a reject wave.
    """

    def __init__(self, tree: DynamicTree, m: int, w: int, u: int,
                 counters: Optional[MoveCounters] = None,
                 track_domains: bool = False,
                 track_intervals: bool = False,
                 interval_base: int = 0,
                 permit_flow_observer=None):
        self.tree = tree
        self.counters = counters if counters is not None else MoveCounters()
        self.inner = CentralizedController(
            tree, m=m, w=w, u=u, counters=self.counters,
            track_domains=track_domains,
            reject_on_exhaustion=False,
            track_intervals=track_intervals,
            interval_base=interval_base,
            permit_flow_observer=permit_flow_observer,
        )
        self.terminated = False
        self.pending: List[Request] = []

    @property
    def granted(self) -> int:
        return self.inner.granted

    def submit(self, request: Request) -> Outcome:
        """Serve a request, or queue it if the controller terminated."""
        if self.terminated:
            self.pending.append(request)
            return Outcome(OutcomeStatus.PENDING, request)
        outcome = self.inner.handle(request)
        if outcome.status is OutcomeStatus.REJECTED:
            raise ControllerError(
                "terminating controller's inner controller rejected; "
                "it must be configured with reject_on_exhaustion=False"
            )
        if outcome.status is OutcomeStatus.PENDING:
            self._terminate()
            self.pending.append(request)
        return outcome

    #: Protocol alias for :meth:`submit` — the same function object, so
    #: the applications' per-request hot path pays no wrapper hop.
    handle = submit

    def handle_batch(self, requests: Iterable[Request]) -> List[Outcome]:
        """Serve a batch in order.  Requests past the termination point
        come back ``PENDING`` and are queued on :attr:`pending`, exactly
        as sequential :meth:`submit` calls would leave them — the
        application resubmits them to its next iteration's controller."""
        return [self.submit(request) for request in requests]

    def unused_permits(self) -> int:
        return self.inner.unused_permits()

    def introspect(self) -> ControllerView:
        """The :class:`repro.protocol.ControllerProtocol` audit view.

        ``waste_gate="termination"``: Observation 2.1's liveness bound
        (``granted >= M - W``) applies at termination time rather than
        on rejection (this wrapper never rejects).
        """
        inner = self.inner
        return ControllerView(
            flavor="terminating", m=inner.params.m, w=inner.params.w,
            granted=self.granted, rejected=0, params=inner.params,
            storage=inner.storage, stores=inner.stores, tree=self.tree,
            terminated=self.terminated, waste_gate="termination",
        )

    def _terminate(self) -> None:
        """Broadcast the termination signal and upcast acknowledgements.

        Centrally both phases are instantaneous; their cost is one
        message per node each (the additive linear term allowed by
        Observation 2.1).
        """
        self.terminated = True
        self.counters.reset_moves += 2 * self.tree.size
        self.inner.detach()

    def detach(self) -> None:
        if not self.terminated:
            self.inner.detach()
        self.terminated = True
