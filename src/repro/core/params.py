"""Controller parameter arithmetic (Section 3.1).

The whole combinatorial structure of the controller is driven by two
derived quantities:

* ``phi`` — the static-package size, ``max(floor(W / 2U), 1)``;
* ``psi`` — the distance unit, ``4 * ceil(log2(U) + 2) * max(ceil(U/W), 1)``.

A mobile package of *level* ``i`` holds exactly ``2^i * phi`` permits.
An ancestor ``w`` of ``u`` holding a level-``j`` package is a *filler
node* for ``u`` iff

* ``j = 0`` and ``0 <= d(u, w) <= 2 * psi``, or
* ``j >= 1`` and ``2^j * psi < d(u, w) <= 2^(j+1) * psi``.

``psi`` is a multiple of 4, which keeps every distance used by the
algorithm (``u_k`` at ``3 * 2^(k-1) * psi`` hops above ``u``, domains of
``2^(k-1) * psi`` nodes) an exact integer even for ``k = 0``.
"""

import math
from dataclasses import dataclass, field

from repro.errors import ControllerError


@dataclass(frozen=True)
class ControllerParams:
    """Derived parameters of an (M, W)-Controller with known bound U.

    Parameters
    ----------
    m:
        Permit budget M (safety: never grant more than M).
    w:
        Waste allowance W (liveness: once anything is rejected, at least
        M - W permits must eventually be granted).  The inner controller
        requires ``w >= 1`` — the paper handles W = 0 by composing an
        (M, 1)-controller with a trivial (1, 0)-controller, which
        :class:`repro.core.iterated.IteratedController` implements.
    u:
        Upper bound on the number of nodes *ever to exist* (initial nodes
        plus all additions).  Section 3.3 removes the need to know U; the
        removal is implemented by :class:`repro.core.adaptive.AdaptiveController`.
    """

    m: int
    w: int
    u: int
    phi: int = field(init=False)
    psi: int = field(init=False)

    def __post_init__(self):
        if self.m < 0:
            raise ControllerError(f"M must be non-negative, got {self.m}")
        if self.w < 1:
            raise ControllerError(
                f"inner controller needs W >= 1 (got {self.w}); "
                "use IteratedController for W = 0"
            )
        if self.u < 1:
            raise ControllerError(f"U must be positive, got {self.u}")
        phi = max(self.w // (2 * self.u), 1)
        log_term = math.ceil(math.log2(self.u) + 2) if self.u > 1 else 2
        psi = 4 * log_term * max(math.ceil(self.u / self.w), 1)
        object.__setattr__(self, "phi", phi)
        object.__setattr__(self, "psi", psi)

    # ------------------------------------------------------------------
    # Package sizes and levels.
    # ------------------------------------------------------------------
    def mobile_size(self, level: int) -> int:
        """Permit count of a level-``level`` mobile package: 2^level * phi."""
        return (1 << level) * self.phi

    @property
    def max_level(self) -> int:
        """Levels run from 0 to ``ceil(log2 U) + 1`` (Section 3.1)."""
        return (math.ceil(math.log2(self.u)) if self.u > 1 else 0) + 1

    # ------------------------------------------------------------------
    # Filler windows.
    # ------------------------------------------------------------------
    def in_filler_window(self, level: int, dist: int) -> bool:
        """Is an ancestor at hop distance ``dist`` holding a level-``level``
        package a filler node?  (Definition before GrantOrReject.)"""
        if level == 0:
            return 0 <= dist <= 2 * self.psi
        low = (1 << level) * self.psi
        high = (1 << (level + 1)) * self.psi
        return low < dist <= high

    def creation_level(self, dist_to_root: int) -> int:
        """Smallest ``j >= 0`` with ``d(u, r) <= 2^(j+1) * psi`` (item 3b)."""
        j = 0
        while dist_to_root > (1 << (j + 1)) * self.psi:
            j += 1
        return j

    # ------------------------------------------------------------------
    # Distribution geometry (item 4 / Proc).
    # ------------------------------------------------------------------
    def uk_distance(self, k: int) -> int:
        """Distance of ``u_k`` above ``u``: ``3 * 2^(k-1) * psi``.

        Exact integer because ``psi`` is a multiple of 4 (for ``k = 0``
        this is ``3 * psi / 2``).
        """
        return (3 * self.psi * (1 << k)) // 2 if k > 0 else (3 * self.psi) // 2

    def domain_size(self, level: int) -> int:
        """Domain cardinality of a level-``level`` package: 2^(level-1)*psi."""
        if level == 0:
            return self.psi // 2
        return (1 << (level - 1)) * self.psi
