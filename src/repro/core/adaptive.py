"""Unknown-U (M,W)-Controller — Theorem 3.5.

When no bound on the number of nodes is known in advance, the controller
runs in *epochs* (the paper calls them iterations; we say epoch to avoid
clashing with the halving iterations of Observation 3.4 running inside):

* epoch i starts with ``N_i = |tree|`` nodes and assumes ``U_i = 2 N_i``;
* it runs a full known-U ``(M_i, W)``-controller (the halving wrapper);
* the epoch ends once ``Z_i`` — the number of topological changes during
  the epoch — reaches ``U_i / 4``; the data structure is cleared and the
  next epoch starts with ``M_{i+1} = M_i - Y_i`` (``Y_i`` = grants made
  during epoch i).

``U_i/4 <= Z_i`` at the cut guarantees ``U_i/4 <= n <= U_i`` throughout
the epoch, so the inner controller's assumption holds.  The second
variant of Theorem 3.5 ends an epoch only when the node count *doubles*
relative to the maximum seen before the epoch; both variants are
implemented (``variant="churn"`` / ``variant="maxsize"``).

If the inner controller issues a real reject, the overall budget is
spent: the liveness argument composes (each epoch conserves permits, and
the rejecting epoch's own liveness supplies the final ``>= M_k - W``
grants), so the composite is a genuine (M,W)-Controller.
"""

from typing import Iterable, List, Optional

from repro.errors import ControllerError
from repro.metrics.counters import MoveCounters
from repro.protocol import BudgetSplit, ControllerView
from repro.tree.dynamic_tree import DynamicTree
from repro.core.iterated import IteratedController
from repro.core.requests import Outcome, OutcomeStatus, Request


class AdaptiveController:
    """(M,W)-Controller requiring no a-priori bound U.

    ``variant="churn"`` implements Theorem 3.5 part 1 (epoch ends after
    ``U_i/4`` topological changes); ``variant="maxsize"`` implements part
    2 (epoch ends when the simultaneous node count doubles).
    """

    def __init__(self, tree: DynamicTree, m: int, w: int,
                 counters: Optional[MoveCounters] = None,
                 variant: str = "churn",
                 track_domains: bool = False):
        if variant not in ("churn", "maxsize"):
            raise ControllerError(f"unknown variant {variant!r}")
        self.tree = tree
        self.m = m
        self.w = w
        self.variant = variant
        self.counters = counters if counters is not None else MoveCounters()
        self._track_domains = track_domains
        self.epochs_run = 0
        self.rejected = 0
        self.rejecting = False
        self._granted_before_epoch = 0
        self._inner: Optional[IteratedController] = None
        self._epoch_u = 0
        self._epoch_changes_base = 0
        self._epoch_max_size = 0
        self._start_epoch(m)

    # ------------------------------------------------------------------
    @property
    def granted(self) -> int:
        inner = self._inner.granted if self._inner is not None else 0
        return self._granted_before_epoch + inner

    def handle(self, request: Request) -> Outcome:
        if self._inner is None:
            raise ControllerError("controller has been detached")
        outcome = self._inner.handle(request)
        if outcome.status is OutcomeStatus.REJECTED:
            self.rejected += 1
            self.rejecting = True
            return outcome
        self._epoch_max_size = max(self._epoch_max_size, self.tree.size)
        if not self.rejecting and self._epoch_over():
            self._rollover()
        return outcome

    def handle_batch(self, requests: Iterable[Request]) -> List[Outcome]:
        """Serve a batch in order; epoch rollovers happen mid-batch
        exactly where sequential :meth:`handle` calls would trigger
        them, so outcomes and counters are identical to the sequential
        run (property-tested)."""
        return [self.handle(request) for request in requests]

    # ------------------------------------------------------------------
    def _epoch_over(self) -> bool:
        if self.variant == "churn":
            changes = self.tree.topology_changes - self._epoch_changes_base
            return changes >= max(self._epoch_u // 4, 1)
        return self.tree.size >= 2 * max(self._epoch_start_max, 1)

    def _start_epoch(self, budget: int) -> None:
        self.epochs_run += 1
        n_i = self.tree.size
        self._epoch_u = 2 * n_i
        self._epoch_changes_base = self.tree.topology_changes
        self._epoch_start_max = self._epoch_max_size or n_i
        self._epoch_max_size = n_i
        self._inner = IteratedController(
            self.tree, m=budget, w=self.w, u=self._epoch_u,
            counters=self.counters, track_domains=self._track_domains,
            reject_on_exhaustion=True,
        )

    def _rollover(self) -> None:
        """End the epoch: count Y_i, clear the structure, re-budget."""
        inner = self._inner
        leftover = inner.unused_permits()
        self._granted_before_epoch += inner.granted
        inner.detach()
        # Clearing plus the N_{i+1}/Y_i counting broadcast+upcast.
        self.counters.reset_moves += 2 * self.tree.size
        self._start_epoch(leftover)

    def unused_permits(self) -> int:
        return self.m - self.granted

    def introspect(self) -> ControllerView:
        """The :class:`repro.protocol.ControllerProtocol` audit view."""
        budget: Optional[BudgetSplit] = None
        children = ()
        if self._inner is not None:
            budget = BudgetSplit(self._granted_before_epoch, self._inner.m)
            children = (("epoch", self._inner),)
        return ControllerView(
            flavor="adaptive", m=self.m, w=self.w,
            granted=self.granted, rejected=self.rejected,
            tree=self.tree, budget=budget, children=children,
        )

    def detach(self) -> None:
        if self._inner is not None:
            self._inner.detach()
            self._inner = None
