"""The shared controller kernel: pure (M,W)-Controller state transitions.

The paper's single construction (Section 3's ``GrantOrReject`` plus the
recursive ``Proc``) is executed twice in this repository — synchronously
by :class:`repro.core.centralized.CentralizedController` and hop-by-hop
by :class:`repro.distributed.controller.DistributedController`.  This
module is the one place the *mechanics* live; the executors supply only
the execution discipline (who walks, who locks, what a move costs).

Three groups of primitives:

**Permit accounting** — :class:`PermitLedger` owns the root storage,
the granted/rejected tallies (with the Definition 2.2 safety check),
and the optional serial-number intervals of the name-assignment
protocol.  Permits enter circulation only through
:meth:`PermitLedger.create_package` and leave it only through
:meth:`PermitLedger.grant`, so conservation is a ledger property.

**Indexed package-store operations** — parked mobile packages are
level-indexed per store.  The filler windows of Section 3.1 are
*disjoint in the level*: for any hop distance ``d`` exactly one level
can fill (level 0 for ``d <= 2 psi``, else the unique ``j >= 1`` with
``2^j psi < d <= 2^(j+1) psi``), so :func:`take_filler` is one window
computation plus one dict probe instead of a window test per parked
package (:func:`scan_filler` keeps the legacy linear scan for the
before/after benchmark; the two are property-tested equivalent).

**Plan objects** — the three macro-moves are planned here and executed
by the caller: :func:`plan_distribution` (``Proc``'s full split
schedule), :meth:`PermitLedger.create_package` (root creation at the
Section 3.1 creation level), and :func:`broadcast_reject` (the reject
wave with its one-move-per-node accounting).

Every transition can be recorded on a :class:`KernelTrace`; because
both executors route through this module, a centralized and a
serialized distributed run of the same stream produce the *identical*
trace — the Lemma 4.5 reduction as an executable check (see
``tests/test_kernel_equivalence.py``).
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ControllerError
from repro.core.packages import MobilePackage, NodeStore
from repro.core.params import ControllerParams

TraceEvent = Tuple[object, ...]


class KernelTrace:
    """An append-only log of kernel transitions.

    Events are plain tuples ``(op, *details)`` with node identities
    recorded as ``node_id`` integers, so traces from different trees
    (twin replays) compare equal when and only when the runs performed
    the same permit/package transitions in the same order.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, *event: object) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


def _node_id(node: Optional[object]) -> Optional[int]:
    return getattr(node, "node_id", None)


# ----------------------------------------------------------------------
# Permit accounting.
# ----------------------------------------------------------------------
@dataclass
class PermitLedger:
    """Root storage, grant/reject tallies, and serial-number intervals.

    One ledger per controller instance; wrappers that re-budget across
    stages create a fresh ledger per stage (permits are conserved by the
    ``L = M - granted`` hand-over, which the invariant checker audits
    through :class:`repro.protocol.BudgetSplit`).
    """

    params: ControllerParams
    storage: int
    granted: int = 0
    rejected: int = 0
    track_intervals: bool = False
    interval_base: int = 0
    trace: Optional[KernelTrace] = None
    _interval_next: int = field(init=False)
    _interval_end: int = field(init=False)

    def __post_init__(self) -> None:
        self._interval_next = self.interval_base + 1
        self._interval_end = self.interval_base + self.params.m

    def grant(self, node: Optional[object] = None) -> None:
        """Count one grant, enforcing the safety bound (never > M)."""
        self.granted += 1
        if self.granted > self.params.m:
            raise ControllerError(
                f"safety violated: granted {self.granted} > "
                f"M={self.params.m}"
            )
        if self.trace is not None:
            self.trace.emit("grant", _node_id(node))

    def count_reject(self) -> None:
        self.rejected += 1

    def covers(self, need: int) -> bool:
        """Can the root storage fund a package of ``need`` permits?"""
        return self.storage >= need

    def create_package(self, level: int,
                       dist: int) -> MobilePackage:
        """Item 3b: carve a fresh level-``level`` package out of storage.

        ``dist`` is the requester's distance to the root (trace detail
        only).  The caller must have checked :meth:`covers`.
        """
        need = self.params.mobile_size(level)
        if self.storage < need:
            raise ControllerError(
                f"storage {self.storage} cannot cover a level-{level} "
                f"package of {need} permits"
            )
        self.storage -= need
        package = MobilePackage(level=level, size=need,
                                interval=self.take_interval(need))
        if self.trace is not None:
            self.trace.emit("create", level, need, dist)
        return package

    def take_interval(self, size: int) -> Optional[Tuple[int, int]]:
        """The next ``size`` serial numbers (interval mode only)."""
        if not self.track_intervals:
            return None
        lo = self._interval_next
        hi = lo + size - 1
        if hi > self._interval_end:
            raise ControllerError("interval storage exhausted")
        self._interval_next = hi + 1
        return (lo, hi)

    def unused(self, parked: int) -> int:
        """Permits not yet granted: storage plus parked packages."""
        return self.storage + parked


# ----------------------------------------------------------------------
# Level-windowed (indexed) package-store operations.
# ----------------------------------------------------------------------
def filler_level(params: ControllerParams, dist: int) -> int:
    """The unique package level that can fill at hop distance ``dist``.

    The Section 3.1 windows partition the distances: level 0 covers
    ``0 <= d <= 2 psi`` and level ``j >= 1`` covers
    ``2^j psi < d <= 2^(j+1) psi``, so for every distance exactly one
    level passes ``ControllerParams.in_filler_window`` (property-tested
    against it in ``tests/core/test_kernel.py``).
    """
    psi = params.psi
    if dist <= 2 * psi:
        return 0
    return ((dist + psi - 1) // psi - 1).bit_length() - 1


def _level_slots(store: NodeStore) -> Dict[int, List[MobilePackage]]:
    """The store's level index, rebuilt lazily when out of sync.

    Kernel mutators (:func:`park`, :func:`take_filler`,
    :func:`take_package`) maintain the index incrementally.  Code that
    mutates ``store.mobile`` directly is detected through the length
    comparison below (appends/removals change it;
    :meth:`NodeStore.merge_from` clears the index outright), which
    triggers a rebuild.  A length-*preserving* in-place swap of
    ``mobile`` entries must clear ``store._level_slots`` itself — the
    supported mutation surface is the kernel functions.
    """
    slots = store._level_slots
    if slots is None or sum(map(len, slots.values())) != len(store.mobile):
        slots = {}
        for package in store.mobile:
            slots.setdefault(package.level, []).append(package)
        store._level_slots = slots
    return slots


def peek_filler(store: NodeStore, dist: int,
                params: ControllerParams) -> Optional[MobilePackage]:
    """The package :func:`take_filler` would take, without removal."""
    if not store.mobile:
        return None
    candidates = _level_slots(store).get(filler_level(params, dist))
    return candidates[0] if candidates else None


def take_filler(store: NodeStore, dist: int, params: ControllerParams,
                node: Optional[object] = None,
                trace: Optional[KernelTrace] = None
                ) -> Optional[MobilePackage]:
    """Remove and return a filler package for distance ``dist``, if any.

    Equivalent to scanning every parked package for a window match and
    taking the earliest-parked one of the lowest matching level (the
    historical semantics, kept verbatim in :func:`scan_filler`): the
    windows admit exactly one level per distance, and within a level
    the index is in parking order.
    """
    package = peek_filler(store, dist, params)
    if package is not None:
        take_package(store, package, node=node, dist=dist, trace=trace)
    return package


def take_package(store: NodeStore, package: MobilePackage,
                 node: Optional[object] = None,
                 dist: Optional[int] = None,
                 trace: Optional[KernelTrace] = None) -> None:
    """Remove a specific parked package (chosen by an indexed search)."""
    store.mobile.remove(package)
    slots = store._level_slots
    if slots is not None:
        try:
            slots[package.level].remove(package)
        except (KeyError, ValueError):
            # A stale index (external in-place mutation) may not carry
            # the package; the next lookup's length check rebuilds it.
            store._level_slots = None
    if trace is not None:
        trace.emit("take", _node_id(node), package.level, dist)


def scan_filler(store: NodeStore, dist: int,
                params: ControllerParams) -> Optional[MobilePackage]:
    """The legacy linear board scan (no removal): first-parked package
    of the lowest in-window level.

    Kept as the reference the indexed lookup is property-tested
    against, and as the ``--no-index`` mode of the ``kernel`` bench.
    """
    chosen: Optional[MobilePackage] = None
    for package in store.mobile:
        if params.in_filler_window(package.level, dist):
            if chosen is None or package.level < chosen.level:
                chosen = package
    return chosen


def park(store: NodeStore, package: MobilePackage,
         node: Optional[object] = None,
         trace: Optional[KernelTrace] = None) -> None:
    """Park a mobile package at a node's store (indexed)."""
    store.mobile.append(package)
    slots = store._level_slots
    if slots is not None:
        slots.setdefault(package.level, []).append(package)
    if trace is not None:
        trace.emit("park", _node_id(node), package.level, package.size)


def absorb(store: NodeStore, package: MobilePackage,
           node: Optional[object] = None,
           trace: Optional[KernelTrace] = None) -> None:
    """A level-0 package reaches the requester and becomes static pool."""
    store.static_permits += package.size
    if package.interval is not None:
        store.static_intervals.append(package.interval)
    if trace is not None:
        trace.emit("absorb", _node_id(node), package.size)


# ----------------------------------------------------------------------
# Plan objects for the macro-moves.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SplitStep:
    """One ``Proc`` split: at ``dist`` hops above the requester the
    package halves; one half (``level``, ``size``) parks there and the
    identical other half continues toward the requester."""

    dist: int
    level: int
    size: int


@dataclass(frozen=True)
class DistributionPlan:
    """The full ``Proc`` schedule for one package distribution.

    ``steps`` are in travel order (strictly decreasing ``dist``);
    ``final_size`` is the level-0 remainder that reaches the requester.
    ``moves`` is the total hop count the package travels
    (``start_dist``): the centralized cost model charges exactly this
    many package moves, the distributed executor pays one agent hop per
    unit as the agent walks the package down its locked path.
    """

    start_dist: int
    start_level: int
    start_size: int
    steps: Tuple[SplitStep, ...]
    final_size: int

    @property
    def moves(self) -> int:
        return self.start_dist


def plan_distribution(params: ControllerParams, level: int, size: int,
                      dist: int) -> DistributionPlan:
    """Plan ``Proc`` for a level-``level`` package ``dist`` hops above
    the requester.

    The shift-by-one reading documented in
    :mod:`repro.core.centralized` applies: a level-``k`` package splits
    at ``u_{k-1}`` (``uk_distance(k - 1)`` hops above the requester),
    leaving one half parked there, until the level-0 remainder reaches
    the requester.  All split distances are strictly below ``dist``
    (filler windows and the creation level guarantee it), so executors
    encounter the steps in order while travelling down.
    """
    steps: List[SplitStep] = []
    start_level, start_size = level, size
    while level > 0:
        level -= 1
        size //= 2
        steps.append(SplitStep(dist=params.uk_distance(level),
                               level=level, size=size))
    return DistributionPlan(start_dist=dist, start_level=start_level,
                            start_size=start_size, steps=tuple(steps),
                            final_size=size)


def broadcast_reject(tree: object,
                     store_of: Callable[[object], NodeStore],
                     trace: Optional[KernelTrace] = None) -> int:
    """Item 3b's reject wave: a reject package at every node.

    Returns the wave's cost — one move/message per node, exactly what
    splitting and flooding reject packages would pay.  The executor
    charges it to its own counter (moves centrally, messages
    distributed).
    """
    count = 0
    for node in tree.nodes():  # type: ignore[attr-defined]
        store_of(node).has_reject = True
        count += 1
    if trace is not None:
        trace.emit("reject_wave", count)
    return count
