"""Halving iterations — Observation 3.4 (and the W = 0 recipe).

A single known-U controller achieves move complexity
``O(U (M/W) log^2 U)``; when ``M/W`` is large the paper iterates:

* stage i runs an ``(M_i, M_i/2)``-controller with ``M_1 = M``;
* when stage i exhausts (the root cannot cover a package), the number
  ``L`` of unused permits (root storage plus all parked packages) is
  counted, the data structure is cleared, and stage i+1 starts with
  ``M_{i+1} = L``;
* after ``O(log(M/(W+1)))`` stages the unused budget is within a
  constant factor of W and a final ``(L, W)``-controller (with real
  rejects) finishes the job.

``W = 0`` needs exactly M grants: the paper first runs an ``(M, 1)``-
controller; if its exhaustion leaves one permit unused, a trivial
``(1, 0)``-controller (each request walks to the root) grants it, after
which requests are rejected.

Permits are conserved across stages (``L = M - granted so far``), so
whenever the final stage rejects, its own liveness gives
``granted_final >= L - W`` and therefore ``granted_total >= M - W`` —
the (M,W) liveness condition — regardless of how early the wrapper cut
over to the final stage.  This lets us cut over defensively whenever a
stage exhausts without granting anything (which can happen when the
remaining budget is smaller than the package a deep request needs).
"""

from typing import Iterable, List, Optional

from repro.errors import ControllerError
from repro.metrics.counters import MoveCounters
from repro.protocol import BudgetSplit, ControllerView
from repro.tree.dynamic_tree import DynamicTree
from repro.core.centralized import CentralizedController
from repro.core.requests import (
    Outcome,
    OutcomeStatus,
    Request,
    perform_event,
)


class IteratedController:
    """Full (M,W)-Controller for known U via halving stages.

    Exposes the same ``handle(request) -> Outcome`` interface as
    :class:`CentralizedController`.  With ``reject_on_exhaustion=False``
    the *final* stage reports ``PENDING`` instead of rejecting, which is
    what :class:`repro.core.terminating.TerminatingController` builds on.
    """

    def __init__(self, tree: DynamicTree, m: int, w: int, u: int,
                 counters: Optional[MoveCounters] = None,
                 track_domains: bool = False,
                 reject_on_exhaustion: bool = True):
        if m < 0 or w < 0:
            raise ControllerError(f"invalid (M, W) = ({m}, {w})")
        self.tree = tree
        self.m = m
        self.w = w
        self.u = u
        self.counters = counters if counters is not None else MoveCounters()
        self.reject_on_exhaustion = reject_on_exhaustion
        self.rejected = 0
        self.stages_run = 0
        self._track_domains = track_domains
        self._granted_before_stage = 0
        self._inner: Optional[CentralizedController] = None
        self._final = False
        # Trivial (1,0) sub-stage state for W = 0.
        self._trivial_storage = 0
        self._trivial_active = False
        self.rejecting = False
        self._detached = False
        self._spawn_stage(m)

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------
    @property
    def granted(self) -> int:
        inner_granted = self._inner.granted if self._inner is not None else 0
        return self._granted_before_stage + inner_granted

    @property
    def exhausted(self) -> bool:
        """True once the wrapper ran fully out of budget."""
        if self.rejecting:
            return True
        if self._trivial_active:
            return self._trivial_storage == 0
        return (self._final and self._inner is not None
                and self._inner.exhausted)

    def unused_permits(self) -> int:
        return self.m - self.granted

    def introspect(self) -> ControllerView:
        """The :class:`repro.protocol.ControllerProtocol` audit view.

        The budget split states the wrapper's conservation law: grants
        banked by finished stages plus the live stage's full budget
        (or the trivial stage's remaining storage) equal ``M``.
        """
        budget: Optional[BudgetSplit] = None
        children = ()
        if self._inner is not None:
            budget = BudgetSplit(self._granted_before_stage,
                                 self._inner.params.m)
            children = (("stage", self._inner),)
        elif self._trivial_active:
            budget = BudgetSplit(self._granted_before_stage,
                                 self._trivial_storage)
        return ControllerView(
            flavor="iterated", m=self.m, w=self.w,
            granted=self.granted, rejected=self.rejected,
            tree=self.tree, budget=budget, children=children,
        )

    # ------------------------------------------------------------------
    # Request handling.
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Outcome:
        if self._detached:
            raise ControllerError("controller has been detached")
        if self._trivial_active:
            return self._handle_trivial(request)
        while True:
            outcome = self._inner.handle(request)
            if outcome.status is OutcomeStatus.REJECTED:
                self.rejected += 1
                self.rejecting = True
                return outcome
            if outcome.status is not OutcomeStatus.PENDING:
                return outcome
            # The stage exhausted while serving this request.
            if self._final:
                if self.w == 0:
                    self._enter_trivial_stage()
                    return self._handle_trivial(request)
                # Final stage with reject_on_exhaustion=False: bubble up.
                return outcome
            self._advance_stage()

    def handle_batch(self, requests: Iterable[Request]) -> List[Outcome]:
        """Serve a batch in order; stage rollovers happen mid-batch
        exactly where sequential :meth:`handle` calls would trigger
        them, so outcomes and counters are identical to the sequential
        run (property-tested)."""
        return [self.handle(request) for request in requests]

    # ------------------------------------------------------------------
    # Stage management.
    # ------------------------------------------------------------------
    def _spawn_stage(self, budget: int) -> None:
        self.stages_run += 1
        effective_w = max(self.w, 1)
        # Halve while the budget comfortably exceeds the waste allowance;
        # otherwise run the final (budget, W) stage.
        if budget > 2 * (effective_w + 1) and budget // 2 > effective_w:
            self._final = False
            self._inner = CentralizedController(
                self.tree, m=budget, w=budget // 2, u=self.u,
                counters=self.counters, track_domains=self._track_domains,
                reject_on_exhaustion=False,
            )
        else:
            self._final = True
            final_rejects = self.reject_on_exhaustion and self.w >= 1
            self._inner = CentralizedController(
                self.tree, m=budget, w=effective_w, u=self.u,
                counters=self.counters, track_domains=self._track_domains,
                reject_on_exhaustion=final_rejects,
            )

    def _advance_stage(self) -> None:
        """Clear stage i's data structure and start stage i+1 with L."""
        inner = self._inner
        leftover = inner.unused_permits()
        self._granted_before_stage += inner.granted
        # If the stage granted nothing, halving again would loop: cut to
        # the final stage (safe per the liveness argument above).
        granted_this_stage = inner.granted
        self._reset_inner()
        if granted_this_stage == 0:
            self._final_spawn(leftover)
        else:
            self._spawn_stage(leftover)

    def _final_spawn(self, budget: int) -> None:
        self.stages_run += 1
        self._final = True
        final_rejects = self.reject_on_exhaustion and self.w >= 1
        self._inner = CentralizedController(
            self.tree, m=budget, w=max(self.w, 1), u=self.u,
            counters=self.counters, track_domains=self._track_domains,
            reject_on_exhaustion=final_rejects,
        )

    def _reset_inner(self) -> None:
        """Clearing the data structure costs one broadcast (~n moves)."""
        self.counters.reset_moves += self.tree.size
        self._inner.detach()
        self._inner = None

    # ------------------------------------------------------------------
    # Trivial (1, 0) stage for W = 0 (Section 3.2.2 / Section 4.4).
    # ------------------------------------------------------------------
    def _enter_trivial_stage(self) -> None:
        leftover = self._inner.unused_permits()
        self._granted_before_stage += self._inner.granted
        self._reset_inner()
        self._trivial_storage = leftover
        self._trivial_active = True

    def _handle_trivial(self, request: Request) -> Outcome:
        node = request.node
        if node not in self.tree:
            return Outcome(OutcomeStatus.CANCELLED, request)
        if self.rejecting:
            self.rejected += 1
            return Outcome(OutcomeStatus.REJECTED, request)
        # The request walks to the root and back: 2 * depth moves.
        self.counters.package_moves += 2 * self.tree.depth(node)
        if self._trivial_storage > 0:
            self._trivial_storage -= 1
            self._granted_before_stage += 1
            new_node = perform_event(self.tree, request)
            return Outcome(OutcomeStatus.GRANTED, request, new_node=new_node)
        if self.reject_on_exhaustion:
            self.rejecting = True
            self.counters.reject_moves += self.tree.size
            self.rejected += 1
            return Outcome(OutcomeStatus.REJECTED, request)
        return Outcome(OutcomeStatus.PENDING, request)

    # ------------------------------------------------------------------
    def detach(self) -> None:
        if self._inner is not None:
            self._inner.detach()
            self._inner = None
        self._detached = True
