"""Workload generation: initial trees, request mixes, churn scenarios."""

from repro.workloads.catalogue import (
    CATALOGUE,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)
from repro.workloads.scenarios import (
    NodePicker,
    ScenarioResult,
    TreeMirror,
    build_caterpillar,
    build_path,
    build_random_tree,
    build_star,
    default_mix,
    grow_only_mix,
    random_request,
    request_spec,
)

__all__ = [
    "CATALOGUE",
    "ScenarioSpec",
    "get_scenario",
    "scenario_names",
    "NodePicker",
    "ScenarioResult",
    "TreeMirror",
    "build_caterpillar",
    "build_path",
    "build_random_tree",
    "build_star",
    "default_mix",
    "grow_only_mix",
    "random_request",
    "request_spec",
]
