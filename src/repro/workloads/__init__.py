"""Workload generation: initial trees, request mixes, churn scenarios."""

from repro.workloads.scenarios import (
    NodePicker,
    ScenarioResult,
    build_caterpillar,
    build_path,
    build_random_tree,
    build_star,
    default_mix,
    grow_only_mix,
    random_request,
    run_scenario,
)

__all__ = [
    "NodePicker",
    "ScenarioResult",
    "build_caterpillar",
    "build_path",
    "build_random_tree",
    "build_star",
    "default_mix",
    "grow_only_mix",
    "random_request",
    "run_scenario",
]
