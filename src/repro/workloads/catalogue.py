"""The adversarial scenario catalogue.

Named request-stream scenarios, each stressing a different part of the
controller's worst-case analysis:

* ``hot_spot`` — one subtree issues most requests (skewed demand: the
  same filler ancestors are drained over and over);
* ``deep_burst`` — bursts aimed at the deepest nodes of a path
  (packages must travel far, and concurrent agents pile onto one
  root path);
* ``grow_shrink`` — a growth wave followed by a removal wave
  (exercises graceful deletion hand-over after the tree fattened);
* ``near_exhaustion`` — a budget sized below the stream length, so the
  run drives storage to M and through the reject wave;
* ``mixed_flood`` — all five request kinds at full churn (the
  default-mix flood, the closest to "anything can happen").

A scenario's stream is **pre-generated** against the initial topology:
``spec.stream(tree, seed)`` touches only nodes present at time zero and
never mutates the tree.  This is what makes one stream replayable
everywhere — sequentially through any centralized controller, batched,
or injected concurrently into the distributed engine under any schedule
policy — so differential and metamorphic tests compare *identical*
inputs.  Requests whose targets vanish mid-replay resolve CANCELLED,
exactly the Section 4.2 "events may lose their meaning" semantics.

Node ids are deterministic per construction order, so a stream
generated against one tree replays against a twin (same spec, same
seed) via ``workloads.request_spec`` / ``TreeMirror``.
"""

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.core.requests import Request, RequestKind
from repro.tree.dynamic_tree import DynamicTree
from repro.tree.node import TreeNode
from repro.workloads.scenarios import (
    build_caterpillar,
    build_path,
    build_random_tree,
    build_star,
    default_mix,
)

_BUILDERS = {
    "random": build_random_tree,
    "path": build_path,
    "star": build_star,
    "caterpillar": build_caterpillar,
}


def _feasible_request(node: TreeNode, rng: random.Random,
                      kinds: List[RequestKind],
                      weights: List[float]) -> Request:
    """One request at ``node``, degrading to PLAIN when the drawn kind
    is infeasible for the node (mirrors ``random_request``, but against
    a static snapshot)."""
    for _ in range(8):
        kind = rng.choices(kinds, weights=weights)[0]
        if kind is RequestKind.PLAIN or kind is RequestKind.ADD_LEAF:
            return Request(kind, node)
        if kind is RequestKind.ADD_INTERNAL:
            if node.children:
                child = node.children[rng.randrange(len(node.children))]
                return Request(kind, node, child=child)
        elif kind is RequestKind.REMOVE_LEAF:
            if not node.is_root and not node.children:
                return Request(kind, node)
        elif kind is RequestKind.REMOVE_INTERNAL:
            if not node.is_root and node.children:
                return Request(kind, node)
    return Request(RequestKind.PLAIN, node)


def _mix_stream(nodes: List[TreeNode], rng: random.Random, steps: int,
                mix: Dict[RequestKind, float]) -> List[Request]:
    kinds = list(mix.keys())
    weights = [mix[k] for k in kinds]
    return [
        _feasible_request(nodes[rng.randrange(len(nodes))], rng,
                          kinds, weights)
        for _ in range(steps)
    ]


def _subtree_nodes(root: TreeNode) -> List[TreeNode]:
    out, stack = [], [root]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(node.children)
    return out


# ----------------------------------------------------------------------
# Stream generators (one per scenario).
# ----------------------------------------------------------------------
def _gen_hot_spot(spec: "ScenarioSpec", tree: DynamicTree,
                  rng: random.Random) -> List[Request]:
    nodes = list(tree.nodes())
    # The hottest subtree: the non-root node with the most descendants.
    hot_root = max((n for n in nodes if not n.is_root),
                   key=lambda n: (len(_subtree_nodes(n)), -n.node_id))
    hot_nodes = _subtree_nodes(hot_root)
    mix = default_mix()
    kinds = list(mix.keys())
    weights = [mix[k] for k in kinds]
    stream = []
    for _ in range(spec.steps):
        pool = hot_nodes if rng.random() < 0.85 else nodes
        node = pool[rng.randrange(len(pool))]
        stream.append(_feasible_request(node, rng, kinds, weights))
    return stream


def _gen_deep_burst(spec: "ScenarioSpec", tree: DynamicTree,
                    rng: random.Random) -> List[Request]:
    by_depth = sorted(tree.nodes(), key=lambda n: (tree.depth(n), n.node_id))
    deep = by_depth[-max(len(by_depth) // 4, 1):]
    nodes = list(by_depth)
    calm_mix = default_mix()
    burst_mix = {RequestKind.PLAIN: 0.7, RequestKind.ADD_LEAF: 0.3}
    stream: List[Request] = []
    burst_len, calm_len = 25, 15
    while len(stream) < spec.steps:
        take = min(burst_len, spec.steps - len(stream))
        stream.extend(_mix_stream(deep, rng, take, burst_mix))
        take = min(calm_len, spec.steps - len(stream))
        stream.extend(_mix_stream(nodes, rng, take, calm_mix))
    return stream


def _gen_grow_shrink(spec: "ScenarioSpec", tree: DynamicTree,
                     rng: random.Random) -> List[Request]:
    nodes = list(tree.nodes())
    grow_mix = {RequestKind.ADD_LEAF: 0.55, RequestKind.ADD_INTERNAL: 0.20,
                RequestKind.PLAIN: 0.25}
    shrink_mix = {RequestKind.REMOVE_LEAF: 0.45,
                  RequestKind.REMOVE_INTERNAL: 0.25,
                  RequestKind.PLAIN: 0.30}
    half = spec.steps // 2
    return (_mix_stream(nodes, rng, half, grow_mix)
            + _mix_stream(nodes, rng, spec.steps - half, shrink_mix))


def _gen_near_exhaustion(spec: "ScenarioSpec", tree: DynamicTree,
                         rng: random.Random) -> List[Request]:
    # Plain-heavy: almost every request consumes a permit, so the stream
    # (longer than M) walks the budget to the wall and through it.
    nodes = list(tree.nodes())
    mix = {RequestKind.PLAIN: 0.9, RequestKind.ADD_LEAF: 0.1}
    return _mix_stream(nodes, rng, spec.steps, mix)


def _gen_mixed_flood(spec: "ScenarioSpec", tree: DynamicTree,
                     rng: random.Random) -> List[Request]:
    return _mix_stream(list(tree.nodes()), rng, spec.steps, default_mix())


# ----------------------------------------------------------------------
# Specs.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One named catalogue scenario: topology + budget + stream shape."""

    name: str
    description: str
    topology: str
    n: int
    steps: int
    m: int
    w: int
    u: int
    generator: Callable[["ScenarioSpec", DynamicTree, random.Random],
                        List[Request]]

    def build_tree(self, seed: int = 0,
                   skip_ancestry: bool = True) -> DynamicTree:
        """The scenario's initial topology (deterministic per seed)."""
        builder = _BUILDERS[self.topology]
        if builder is build_random_tree:
            tree = builder(self.n, seed=seed)
        else:
            tree = builder(self.n)
        tree.skip_ancestry = skip_ancestry
        return tree

    def stream(self, tree: DynamicTree, seed: int = 0) -> List[Request]:
        """The full pre-generated request stream (tree is not mutated)."""
        return self.generator(self, tree, random.Random(seed))

    def scaled(self, factor: float) -> "ScenarioSpec":
        """A smaller/larger twin (CI smoke runs use factor < 1).

        ``n``/``steps``/``m`` scale; ``w`` and ``u`` are re-derived the
        way the original spec derived them (proportionally).
        """
        def scale(value: int, floor: int = 1) -> int:
            return max(int(value * factor), floor)
        return ScenarioSpec(
            name=self.name, description=self.description,
            topology=self.topology, n=scale(self.n, 8),
            steps=scale(self.steps, 16), m=scale(self.m, 4),
            w=max(scale(self.w), 1), u=scale(self.u, 64),
            generator=self.generator)

    def params_json(self) -> Dict[str, object]:
        return {"name": self.name, "topology": self.topology, "n": self.n,
                "steps": self.steps, "m": self.m, "w": self.w, "u": self.u}


def _spec(name: str, description: str, topology: str, n: int, steps: int,
          m: int, w: int,
          generator: Callable[[ScenarioSpec, DynamicTree, random.Random],
                              List[Request]],
          u: Optional[int] = None) -> Tuple[str, ScenarioSpec]:
    # U bounds the nodes *ever to exist*: initial nodes plus every
    # possible addition (granted adds plus injected storm growth).
    u = u if u is not None else 4 * (n + steps)
    return name, ScenarioSpec(name=name, description=description,
                              topology=topology, n=n, steps=steps,
                              m=m, w=w, u=u, generator=generator)


CATALOGUE: Dict[str, ScenarioSpec] = dict([
    _spec("hot_spot",
          "one subtree issues 85% of the requests (skewed demand)",
          "random", n=120, steps=600, m=2400, w=30, generator=_gen_hot_spot),
    _spec("deep_burst",
          "request bursts aimed at the deepest quarter of a path",
          "path", n=150, steps=600, m=3000, w=40,
          generator=_gen_deep_burst),
    _spec("grow_shrink",
          "a growth wave followed by a removal wave",
          "random", n=40, steps=500, m=2000, w=25,
          generator=_gen_grow_shrink),
    _spec("near_exhaustion",
          "plain-heavy stream longer than the budget: drives storage "
          "to M and through the reject wave",
          "random", n=80, steps=500, m=260, w=40,
          generator=_gen_near_exhaustion),
    _spec("mixed_flood",
          "full default-mix churn over a random tree",
          "random", n=100, steps=700, m=2800, w=35,
          generator=_gen_mixed_flood),
])


def scenario_names() -> List[str]:
    return list(CATALOGUE)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return CATALOGUE[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; known: {', '.join(CATALOGUE)}"
        ) from None
