"""Dynamic-tree scenario generation.

The paper's bounds are worst-case over adversarial request streams; the
benches and property tests exercise several stream shapes:

* **default_mix** — balanced churn touching all four topological change
  types plus plain (non-topological) events;
* **grow_only_mix** — leaf insertions only (the AAPS model, used for the
  head-to-head comparison of bench E4);
* custom mixes — any weighting over the five request kinds.

Initial-topology builders cover the regimes that stress different parts
of the controller: random recursive trees (logarithmic depth — fillers
are always near), paths (linear depth — packages must travel far), stars
and caterpillars (high degree — deletion hand-over stress).
"""

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode
from repro.tree.ports import PortAssigner
from repro.core.requests import Outcome, OutcomeStatus, Request, RequestKind


# ----------------------------------------------------------------------
# Initial topologies.
# ----------------------------------------------------------------------
def build_random_tree(n: int, seed: int = 0,
                      port_assigner: Optional[PortAssigner] = None
                      ) -> DynamicTree:
    """Random recursive tree: node i attaches below a uniform earlier node.

    Expected depth is O(log n), the friendly regime for the controller.
    """
    rng = random.Random(seed)
    tree = DynamicTree(port_assigner=port_assigner)
    nodes = [tree.root]
    for _ in range(n - 1):
        parent = rng.choice(nodes)
        nodes.append(tree.add_leaf(parent))
    # The construction itself is not part of the measured scenario.
    tree.topology_changes = 0
    tree.size_history.clear()
    return tree


def build_path(n: int, port_assigner: Optional[PortAssigner] = None
               ) -> DynamicTree:
    """A path of n nodes hanging below the root (worst-case depth)."""
    tree = DynamicTree(port_assigner=port_assigner)
    current = tree.root
    for _ in range(n - 1):
        current = tree.add_leaf(current)
    tree.topology_changes = 0
    tree.size_history.clear()
    return tree


def build_star(n: int, port_assigner: Optional[PortAssigner] = None
               ) -> DynamicTree:
    """A star: n - 1 leaves below the root (worst-case degree)."""
    tree = DynamicTree(port_assigner=port_assigner)
    for _ in range(n - 1):
        tree.add_leaf(tree.root)
    tree.topology_changes = 0
    tree.size_history.clear()
    return tree


def build_caterpillar(n: int, legs_per_node: int = 2,
                      port_assigner: Optional[PortAssigner] = None
                      ) -> DynamicTree:
    """A spine with ``legs_per_node`` leaves at each spine node."""
    tree = DynamicTree(port_assigner=port_assigner)
    spine = tree.root
    built = 1
    while built < n:
        for _ in range(legs_per_node):
            if built >= n:
                break
            tree.add_leaf(spine)
            built += 1
        if built < n:
            spine = tree.add_leaf(spine)
            built += 1
    tree.topology_changes = 0
    tree.size_history.clear()
    return tree


# ----------------------------------------------------------------------
# Alive-node sampling with O(1) updates.
# ----------------------------------------------------------------------
class NodePicker(TreeListener):
    """Maintains an indexable list of alive nodes for O(1) random picks."""

    def __init__(self, tree: DynamicTree) -> None:
        self._tree = tree
        self._nodes: List[TreeNode] = list(tree.nodes())
        self._index: Dict[TreeNode, int] = {
            node: i for i, node in enumerate(self._nodes)
        }
        tree.add_listener(self)

    def pick(self, rng: random.Random) -> TreeNode:
        return self._nodes[rng.randrange(len(self._nodes))]

    def on_add_leaf(self, node: TreeNode) -> None:
        self._add(node)

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        self._add(node)

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        self._remove(node)

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children: List[TreeNode]) -> None:
        self._remove(node)

    def _add(self, node: TreeNode) -> None:
        self._index[node] = len(self._nodes)
        self._nodes.append(node)

    def _remove(self, node: TreeNode) -> None:
        index = self._index.pop(node)
        last = self._nodes.pop()
        if last is not node:
            self._nodes[index] = last
            self._index[last] = index

    def detach(self) -> None:
        self._tree.remove_listener(self)


# ----------------------------------------------------------------------
# Request mixes.
# ----------------------------------------------------------------------
def default_mix() -> Dict[RequestKind, float]:
    """Balanced churn over all request kinds.

    Additions slightly outweigh removals so trees do not collapse to the
    root over long scenarios.
    """
    return {
        RequestKind.ADD_LEAF: 0.30,
        RequestKind.ADD_INTERNAL: 0.15,
        RequestKind.REMOVE_LEAF: 0.20,
        RequestKind.REMOVE_INTERNAL: 0.10,
        RequestKind.PLAIN: 0.25,
    }


def grow_only_mix() -> Dict[RequestKind, float]:
    """The AAPS dynamic model: only leaf insertions (plus plain events)."""
    return {
        RequestKind.ADD_LEAF: 0.6,
        RequestKind.PLAIN: 0.4,
    }


def random_request(tree: DynamicTree, rng: random.Random,
                   mix: Optional[Dict[RequestKind, float]] = None,
                   picker: Optional[NodePicker] = None) -> Request:
    """Draw one feasible request from ``mix``.

    Kinds that turn out infeasible for the sampled node (e.g. removing
    the root, removing a leaf via REMOVE_INTERNAL) are retried a few
    times, then degrade to a PLAIN request — so the stream always makes
    progress, matching an environment that only submits meaningful
    requests.
    """
    mix = mix or default_mix()
    kinds = list(mix.keys())
    weights = [mix[k] for k in kinds]

    def sample_node() -> TreeNode:
        if picker is not None:
            return picker.pick(rng)
        nodes = list(tree.nodes())
        return nodes[rng.randrange(len(nodes))]

    for _ in range(8):
        kind = rng.choices(kinds, weights=weights)[0]
        node = sample_node()
        if kind is RequestKind.PLAIN or kind is RequestKind.ADD_LEAF:
            return Request(kind, node)
        if kind is RequestKind.ADD_INTERNAL:
            if node.children:
                child = node.children[rng.randrange(len(node.children))]
                return Request(kind, node, child=child)
        elif kind is RequestKind.REMOVE_LEAF:
            if not node.is_root and not node.children:
                return Request(kind, node)
        elif kind is RequestKind.REMOVE_INTERNAL:
            if not node.is_root and node.children:
                return Request(kind, node)
    return Request(RequestKind.PLAIN, sample_node())


# ----------------------------------------------------------------------
# Stream recording / replay (batch-equivalence harness).
# ----------------------------------------------------------------------
RequestSpec = Tuple[RequestKind, int, Optional[int]]


def request_spec(request: Request) -> RequestSpec:
    """A tree-independent description of ``request``: ``(kind, node_id,
    child_id)``.  Node ids are deterministic per construction order, so
    a spec recorded against one tree can be replayed against a twin
    tree built and driven identically."""
    return (request.kind, request.node.node_id,
            request.child.node_id if request.child is not None else None)


class TreeMirror(TreeListener):
    """Resolve recorded request specs against a twin tree.

    Keeps a ``node_id -> node`` map (updated via the listener hooks as
    grants create new nodes).  :meth:`requests` yields mirrored
    :class:`Request` objects *lazily*, so a batched consumer such as
    ``handle_batch`` — which walks its input one element at a time —
    resolves each spec only after the previous request was applied;
    ids created mid-batch are therefore present by the time they are
    looked up.
    """

    def __init__(self, tree: DynamicTree) -> None:
        self._tree = tree
        self._map: Dict[int, TreeNode] = {
            node.node_id: node for node in tree.nodes()
        }
        tree.add_listener(self)

    def on_add_leaf(self, node: TreeNode) -> None:
        self._map[node.node_id] = node

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        self._map[node.node_id] = node

    def node(self, node_id: int) -> TreeNode:
        return self._map[node_id]

    def request(self, spec: RequestSpec) -> Request:
        kind, node_id, child_id = spec
        child = self._map[child_id] if child_id is not None else None
        return Request(kind, self._map[node_id], child=child)

    def requests(self, specs: Iterable[RequestSpec]) -> Iterator[Request]:
        """Lazily mirror an iterable of specs (see class docstring)."""
        return (self.request(spec) for spec in specs)

    def detach(self) -> None:
        self._tree.remove_listener(self)


# ----------------------------------------------------------------------
# Scenario driver.
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Tally of a scenario run."""

    granted: int = 0
    rejected: int = 0
    cancelled: int = 0
    pending: int = 0
    outcomes: List[Outcome] = field(default_factory=list)

    def record(self, outcome: Outcome, keep: bool) -> None:
        if outcome.status is OutcomeStatus.GRANTED:
            self.granted += 1
        elif outcome.status is OutcomeStatus.REJECTED:
            self.rejected += 1
        elif outcome.status is OutcomeStatus.CANCELLED:
            self.cancelled += 1
        else:
            self.pending += 1
        if keep:
            self.outcomes.append(outcome)


