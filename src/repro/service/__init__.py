"""repro.service — the session-layer public API.

One object, :class:`ControllerSession`, owns the tree / controller /
scheduler / fault wiring (described by a frozen
:class:`SessionConfig`) and serves requests through typed envelopes:
non-blocking :meth:`~ControllerSession.submit` returning a
:class:`Ticket`, batched :meth:`~ControllerSession.submit_many`, and a
streaming :meth:`~ControllerSession.drain` that yields
:class:`OutcomeRecord` objects in settlement order.  Saturation is an
explicit :attr:`SessionVerdict.BACKPRESSURE` verdict, distinct from the
paper's permit reject.  See ``docs/architecture.md`` §7.
"""

from repro.service.appspec import (
    APP_ENGINE_FLAVORS,
    APP_NAMES,
    APP_PARAMS,
    AppSpec,
    resolve_app,
)
from repro.service.config import (
    EVENT_DRIVEN_FLAVORS,
    SCHEDULED_FLAVORS,
    TRACED_FLAVORS,
    ControllerSpec,
    SessionConfig,
)
from repro.service.driver import drive_scenario, replay_stream
from repro.service.envelopes import (
    IterationRecord,
    OutcomeRecord,
    RequestEnvelope,
    SessionVerdict,
    Ticket,
    TraceHandle,
    verdict_of,
)
from repro.service.session import ControllerSession

__all__ = [
    "ControllerSession",
    "ControllerSpec",
    "SessionConfig",
    "AppSpec",
    "resolve_app",
    "APP_NAMES",
    "APP_PARAMS",
    "APP_ENGINE_FLAVORS",
    "RequestEnvelope",
    "OutcomeRecord",
    "IterationRecord",
    "SessionVerdict",
    "Ticket",
    "TraceHandle",
    "verdict_of",
    "drive_scenario",
    "replay_stream",
    "EVENT_DRIVEN_FLAVORS",
    "SCHEDULED_FLAVORS",
    "TRACED_FLAVORS",
]
