"""Typed request envelopes, outcome records, and tickets.

Every request submitted to a :class:`~repro.service.session.ControllerSession`
becomes a first-class, traceable object instead of a loop variable:

* :class:`RequestEnvelope` — the admitted request plus its session
  identity (monotone envelope id, submit tick);
* :class:`OutcomeRecord` — the settled result: a :class:`SessionVerdict`,
  the raw controller :class:`~repro.core.requests.Outcome` (absent for
  ``BACKPRESSURE``, which never reached the controller), submit/settle
  ticks, the granted permit's interval serial when the engine tracks
  intervals, and a :class:`TraceHandle` into the kernel transition log
  when tracing is on;
* :class:`Ticket` — the non-blocking handle ``submit()`` returns;
  :meth:`Ticket.result` pumps the session until this request settles;
* :class:`IterationRecord` — an application iteration boundary
  (:mod:`repro.apps`): the app-layer drain stream interleaves these
  with its outcome records so rollovers are observable events.

The verdict vocabulary deliberately distinguishes the paper's permit
*reject* (the controller said no: the waste budget is charged, the
liveness bound applies) from session *backpressure* (the engine never
saw the request: the admission window was full) and from gateway
*shed* (the request was refused even earlier, by the
:mod:`repro.gateway` throttle or circuit breaker).  Callers that retry
on ``BACKPRESSURE`` or ``SHED`` lose nothing; callers that retry on
``REJECTED`` are fighting the (M, W) contract itself.
"""

import operator
from dataclasses import dataclass
from enum import Enum
from itertools import repeat
from typing import Any, Callable, List, Optional, Sequence, Tuple, cast

from repro.core.kernel import KernelTrace, TraceEvent
from repro.core.requests import Outcome, OutcomeStatus, Request
from repro.errors import ProtocolError

_request_of = operator.attrgetter("request")


class SessionVerdict(Enum):
    """How a session request ended."""

    GRANTED = "granted"
    REJECTED = "rejected"
    CANCELLED = "cancelled"
    PENDING = "pending"
    #: The admission window was full; the controller never saw the
    #: request.  Distinct from REJECTED: no permit accounting happened,
    #: resubmitting later is always legal.
    BACKPRESSURE = "backpressure"
    #: The gateway refused the request before the session's admission
    #: window was even consulted: the token-bucket throttle was out of
    #: tokens, or the circuit breaker was open.  Like ``BACKPRESSURE``,
    #: no permit accounting happened and resubmitting later is always
    #: legal; unlike it, the refusal is load-*policy* (rate or health),
    #: not window occupancy (see :mod:`repro.gateway`).
    SHED = "shed"


_STATUS_TO_VERDICT = {
    OutcomeStatus.GRANTED: SessionVerdict.GRANTED,
    OutcomeStatus.REJECTED: SessionVerdict.REJECTED,
    OutcomeStatus.CANCELLED: SessionVerdict.CANCELLED,
    OutcomeStatus.PENDING: SessionVerdict.PENDING,
}


def verdict_of(outcome: Outcome) -> SessionVerdict:
    """Map a controller outcome status onto the session vocabulary."""
    return _STATUS_TO_VERDICT[outcome.status]


class RequestEnvelope:
    """An admitted request with its session identity.

    ``envelope_id`` is monotone per session (submission order);
    ``submit_tick`` is the session clock at admission — the simulated
    scheduler time for the event-driven engine, the operation counter
    for synchronous engines.

    A ``__slots__`` value class (not a dataclass): envelopes are built
    once per request on the ingestion hot path, where the session's
    <= 5% overhead budget rules out ``frozen=True`` constructors.
    Treat instances as immutable.
    """

    __slots__ = ("envelope_id", "request", "submit_tick")

    def __init__(self, envelope_id: int, request: Request,
                 submit_tick: float) -> None:
        self.envelope_id = envelope_id
        self.request = request
        self.submit_tick = submit_tick

    def __eq__(self, other: object) -> bool:
        # Value semantics: records materialize their envelope on
        # demand, so envelopes compare by content, not identity.
        if not isinstance(other, RequestEnvelope):
            return NotImplemented
        return (self.envelope_id == other.envelope_id
                and self.request is other.request
                and self.submit_tick == other.submit_tick)

    def __hash__(self) -> int:
        return hash((self.envelope_id, id(self.request),
                     self.submit_tick))

    def __repr__(self) -> str:
        return (f"RequestEnvelope(envelope_id={self.envelope_id}, "
                f"request={self.request!r}, "
                f"submit_tick={self.submit_tick})")


@dataclass(frozen=True)
class IterationRecord:
    """An application iteration boundary, as a first-class stream event.

    The Section 5 applications run in iterations, each owning one
    terminating controller; when an iteration's budget is exhausted the
    app tears the engine session down, re-derives the contract from the
    fresh tree size, and resubmits the queued requests (Observation
    2.1).  :meth:`repro.apps.base.AppSession.drain` yields one
    ``IterationRecord`` at each boundary, interleaved with the
    :class:`OutcomeRecord` stream in event order, so consumers observe
    rollovers instead of inferring them from PENDING gaps.

    ``index`` is the 1-based iteration number (the first record, for
    ``index=1``, is emitted when the app is constructed); ``size`` is
    ``N_i``, the tree size the iteration's ``(m, w, u)`` contract was
    derived from; ``tick`` is the app clock at the boundary.
    """

    index: int
    size: int
    m: int
    w: int
    u: int
    tick: float


@dataclass(frozen=True)
class TraceHandle:
    """A cursor into the session's kernel transition log.

    ``upto`` is the log length at settlement: ``events()`` returns every
    kernel transition that had happened when this request settled.  The
    log is shared by all requests of the session (transitions interleave
    under the event-driven engine), so the handle is a prefix cursor,
    not a per-request slice.
    """

    trace: KernelTrace
    upto: int

    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self.trace.events[:self.upto])


class OutcomeRecord(Tuple[Any, ...]):
    """A settled request: the envelope plus everything measured.

    Field layout (a 6-tuple): ``request``, ``envelope_id``,
    ``submit_tick``, ``outcome`` (the raw controller outcome — ``None``
    exactly when the request was refused at the admission window),
    ``settle_tick``, and ``trace_handle`` (the kernel-trace cursor at
    settlement; ``None`` unless the session was configured with
    ``trace=True``).

    Derived accessors: :attr:`envelope` (materialized on demand, value
    semantics), :attr:`verdict` (BACKPRESSURE when the controller never
    saw the request, the outcome's status otherwise), and
    :attr:`permit_interval` (the granted permit's interval serial when
    the engine runs with ``track_intervals=True``).

    The class subclasses ``tuple`` so the settlement hot loop can build
    whole batches of records in C (``map`` + ``zip`` +
    ``tuple.__new__``) — that is what keeps the session inside its
    <= 5% overhead budget.  Construct one as
    ``OutcomeRecord((request, envelope_id, submit_tick, outcome,
    settle_tick, trace_handle))``; instances are immutable and compare
    by value.
    """

    __slots__ = ()

    request = property(operator.itemgetter(0),
                       doc="The request this record settles.")
    envelope_id = property(operator.itemgetter(1),
                           doc="Monotone per-session submission id.")
    submit_tick = property(operator.itemgetter(2),
                           doc="Session clock at admission.")
    outcome = property(operator.itemgetter(3),
                       doc="Raw controller Outcome; None iff "
                           "backpressured.")
    settle_tick = property(operator.itemgetter(4),
                           doc="Session clock at settlement.")
    trace_handle = property(operator.itemgetter(5),
                            doc="Kernel-trace cursor, when tracing.")

    def __repr__(self) -> str:
        return (f"OutcomeRecord(envelope_id={self.envelope_id}, "
                f"verdict={self.verdict!r}, outcome={self.outcome!r}, "
                f"submit_tick={self.submit_tick}, "
                f"settle_tick={self.settle_tick})")

    @property
    def envelope(self) -> RequestEnvelope:
        return RequestEnvelope(self[1], self[0], self[2])

    @property
    def verdict(self) -> SessionVerdict:
        outcome = self[3]
        if outcome is None:
            return SessionVerdict.BACKPRESSURE
        return _STATUS_TO_VERDICT[outcome.status]

    @property
    def permit_interval(self) -> Optional[int]:
        outcome = self[3]
        return outcome.serial if outcome is not None else None

    @property
    def granted(self) -> bool:
        outcome = self[3]
        return (outcome is not None
                and outcome.status is OutcomeStatus.GRANTED)

    @property
    def backpressured(self) -> bool:
        return self[3] is None

    @property
    def latency(self) -> float:
        """Settle tick minus submit tick, in session clock units."""
        tick: float = self[4] - self[2]
        return tick


def build_records(outcomes: Sequence[Outcome], envelope_id: int,
                  clock: int, handle: Optional[TraceHandle]
                  ) -> List[OutcomeRecord]:
    """Build one :class:`OutcomeRecord` per settled outcome, in C.

    The shared batched-settlement constructor used by both
    ``ControllerSession.serve_stream`` and ``AppSession.serve_stream``
    (one definition keeps the tuple layout in lockstep with
    :class:`OutcomeRecord`): ``zip`` assembles each record's 6-field
    tuple from C iterators — the outcome's request, consecutive
    envelope ids from ``envelope_id``, consecutive submit ticks from
    ``clock``, the outcome, consecutive settle ticks, and the shared
    trace ``handle`` — and ``tuple.__new__`` wraps it without a Python
    ``__init__`` frame.  The caller advances its envelope counter by
    ``len(outcomes)`` and its clock by ``2 * len(outcomes)``.
    """
    count = len(outcomes)
    settle_base = clock + count
    return cast(List[OutcomeRecord], list(map(
        tuple.__new__, repeat(OutcomeRecord),
        zip(map(_request_of, outcomes),
            range(envelope_id, envelope_id + count),
            range(clock, clock + count),
            outcomes,
            range(settle_base, settle_base + count),
            repeat(handle)))))


class Ticket:
    """Non-blocking handle for one submitted request.

    ``submit()`` returns immediately; the ticket settles when the
    session pumps its engine (``drain()`` / ``settle_all()`` /
    :meth:`result`).  Delivery is exactly-once across the two channels:
    a record taken via :meth:`result` is *claimed* and will not be
    yielded again by ``drain()``; a record already yielded by
    ``drain()`` can still be read back through :meth:`result`, which is
    an idempotent lookup.
    """

    __slots__ = ("envelope", "claimed", "_record", "_pump")

    def __init__(self, envelope: RequestEnvelope,
                 pump: Callable[[], bool]) -> None:
        self.envelope = envelope
        #: True once :meth:`result` delivered the record (``drain``
        #: then skips it).
        self.claimed = False
        self._record: Optional[OutcomeRecord] = None
        self._pump = pump

    @property
    def done(self) -> bool:
        return self._record is not None

    def _settle(self, record: OutcomeRecord) -> None:
        self._record = record

    def result(self) -> OutcomeRecord:
        """The settled record, pumping the session until it exists."""
        record = self._record
        while record is None:
            progressed = self._pump()
            # Re-read *after* the pump call returns: a concurrent
            # drain may have settled this ticket between our first
            # look and the pump reporting an idle engine, and raising
            # on that stale read would be a spurious ProtocolError.
            record = self._record
            if record is None and not progressed:
                raise ProtocolError(
                    f"request {self.envelope.request.request_id} "
                    f"(envelope {self.envelope.envelope_id}) never "
                    "settled and the engine is idle")
        self.claimed = True
        return record

    def __repr__(self) -> str:
        state = (self._record.verdict.value if self._record is not None
                 else "in-flight")
        return (f"Ticket(envelope={self.envelope.envelope_id}, "
                f"request={self.envelope.request.request_id}, {state})")
