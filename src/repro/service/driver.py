"""Session-based scenario driving.

:func:`drive_scenario` is the session-era form of the legacy
``repro.workloads.run_scenario`` driver: it generates the identical
random request stream (same RNG discipline, same
:class:`~repro.workloads.scenarios.NodePicker` sampling), but feeds it
through a :class:`~repro.service.session.ControllerSession` —
``submit_many`` + ``drain`` per batch — instead of calling a bare
``handle`` callable.  On the same seed and mix it produces the same
tallies as the legacy driver did against the same flavour, which the
equivalence property tests assert for every catalogue scenario.

:func:`replay_stream` is the replay twin: it pushes a pre-generated
request list (e.g. a catalogue scenario's stream resolved against a
twin tree) through a session and returns the settled records in
settlement order.
"""

import random
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.requests import Outcome, Request, RequestKind
from repro.errors import ConfigError, ProtocolError
from repro.service.envelopes import OutcomeRecord
from repro.service.session import ControllerSession
from repro.workloads.scenarios import (
    NodePicker,
    ScenarioResult,
    random_request,
)


def drive_scenario(session: ControllerSession, steps: int, seed: int = 0,
                   mix: Optional[Dict[RequestKind, float]] = None,
                   keep_outcomes: bool = False,
                   on_step: Optional[Callable[[int, Outcome], None]] = None,
                   stop_when: Optional[Callable[[], bool]] = None,
                   batch_size: int = 1) -> ScenarioResult:
    """Generate ``steps`` random requests and serve them via ``session``.

    The contract mirrors the legacy driver exactly: requests are
    generated ``batch_size`` at a time against the tree state at batch
    start, every outcome of a submitted batch is recorded (the
    controller already served it), and ``stop_when`` ends the scenario
    at the batch boundary.  The admission window must cover the batch —
    a drive never wants to observe its own backpressure, so an
    undersized window raises instead of silently skewing the tallies.
    """
    if batch_size < 1:
        raise ConfigError(
            f"batch_size must be >= 1, got {batch_size}")
    if session.config.max_in_flight < batch_size:
        raise ConfigError(
            f"admission window {session.config.max_in_flight} cannot "
            f"cover batch_size {batch_size}; widen the window or "
            "shrink the batch")
    if session.in_flight or session.undelivered:
        # The drive owns the drain stream while it runs; foreign
        # records would be tallied as scenario outcomes.
        raise ConfigError(
            f"drive_scenario needs a quiescent session, but "
            f"{session.in_flight} requests are in flight and "
            f"{session.undelivered} settled records are undelivered; "
            "drain the session first")
    rng = random.Random(seed)
    picker = NodePicker(session.tree)
    result = ScenarioResult()
    try:
        step = 0
        while step < steps:
            count = 1 if batch_size == 1 else min(batch_size, steps - step)
            batch = [random_request(session.tree, rng, mix=mix,
                                    picker=picker)
                     for _ in range(count)]
            session.submit_many(batch, stagger=0.0)
            stop = False
            for record in session.drain():
                outcome = record.outcome
                if outcome is None:  # backpressure cannot happen here
                    raise ProtocolError(
                        "drive_scenario observed backpressure despite "
                        "the window pre-check")
                result.record(outcome, keep_outcomes)
                if on_step is not None:
                    on_step(step, outcome)
                step += 1
                if stop_when is not None and stop_when():
                    stop = True
            if stop:
                break
    finally:
        picker.detach()
    return result


def replay_stream(session: ControllerSession, requests: Iterable[Request],
                  stagger: Optional[float] = None) -> List[OutcomeRecord]:
    """Push a pre-generated request list through ``session``.

    Submits everything up front (staggered arrivals on the event-driven
    engine) and drains to quiescence; returns the records in settlement
    order.  The caller sizes the admission window — replay harnesses
    normally set ``max_in_flight >= len(requests)``.
    """
    session.submit_many(requests, stagger=stagger)
    return session.settle_all()
