"""The controller session: one object that owns the whole engine.

``ControllerSession`` wires a tree, a controller flavour, and (for the
event-driven engine) a scheduler + delay model + fault injector from a
single frozen :class:`~repro.service.config.SessionConfig`, then serves
requests through one ingestion-shaped API:

* :meth:`submit` — non-blocking; admission-checks the request and
  returns a :class:`~repro.service.envelopes.Ticket`;
* :meth:`submit_many` — a batch of tickets (staggered arrivals on the
  event-driven engine);
* :meth:`drain` — a streaming iterator that pumps the engine and yields
  :class:`~repro.service.envelopes.OutcomeRecord` objects in
  **settlement order**, for both the synchronous flavours (the session
  batches pending requests through ``handle_batch``) and the
  event-driven distributed engine (the session steps the scheduler and
  yields as agent callbacks land);
* :meth:`settle_all` — ``list(drain())``.

Admission control: at most ``config.max_in_flight`` requests may be in
flight; beyond that, ``submit`` settles the ticket immediately with the
``BACKPRESSURE`` verdict without touching the controller — saturation
is answered at the session boundary, never confused with the paper's
permit *reject* (see :mod:`repro.service.envelopes`).

The session implements the controller protocol's ``introspect()`` by
delegation, so :func:`repro.metrics.invariants.audit_controller`
accepts a session wherever it accepts a controller (:meth:`audit` is
the shorthand).
"""

import operator
import threading
from collections import Counter, deque
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.kernel import KernelTrace
from repro.core.requests import Outcome, Request
from repro.distributed.faults import FaultInjector
from repro.errors import ConfigError, ControllerError, ProtocolError
from repro.metrics.invariants import InvariantReport, audit_controller
from repro.protocol import ControllerProtocol, ControllerView
from repro.registry import make_controller
from repro.service.config import (
    SCHEDULED_FLAVORS,
    TRACED_FLAVORS,
    SessionConfig,
)
from repro.service.envelopes import (
    OutcomeRecord,
    RequestEnvelope,
    SessionVerdict,
    Ticket,
    TraceHandle,
    build_records,
    verdict_of,
)
from repro.sim.delays import make_delay_model
from repro.sim.fastsched import FastScheduler, warn_fast_path_fallback
from repro.sim.policies import make_policy
from repro.sim.scheduler import Scheduler
from repro.tree.dynamic_tree import DynamicTree

#: Constructor keywords the session wires itself; passing them through
#: ``ControllerSpec.options`` would silently fight the session's wiring.
_SESSION_OWNED_OPTIONS = ("scheduler", "delays", "faults", "kernel_trace")

#: C-speed attribute extraction for the per-batch settlement loop.
_status_of = operator.attrgetter("status")


class ControllerSession:
    """A live engine behind the session API (see module docstring).

    Parameters
    ----------
    config:
        The frozen wiring description.
    tree:
        The tree to control.  ``None`` builds a fresh single-root
        :class:`DynamicTree` owned by the session.
    """

    def __init__(self, config: SessionConfig,
                 tree: Optional[DynamicTree] = None) -> None:
        self.config = config
        self.tree = tree if tree is not None else DynamicTree()
        spec = config.controller
        for key in _SESSION_OWNED_OPTIONS:
            if key in spec.options:
                raise ConfigError(
                    f"option {key!r} is session-owned wiring; use the "
                    "SessionConfig knobs instead of ControllerSpec.options")
        if config.trace and spec.flavor not in TRACED_FLAVORS:
            raise ConfigError(
                f"flavor {spec.flavor!r} does not take a kernel trace; "
                f"traced flavours: {', '.join(TRACED_FLAVORS)}")

        kwargs: Dict[str, Any] = dict(spec.options)
        # ``fast_path`` is session-interpreted (it decides which engine
        # the session wires), so it is popped here rather than passed
        # through to the controller constructor alongside a scheduler.
        fast_path = bool(kwargs.pop("fast_path", False))
        self.scheduler: Optional[Union[Scheduler, FastScheduler]] = None
        if spec.flavor in SCHEDULED_FLAVORS:
            if fast_path and config.schedule_policy == "fifo":
                self.scheduler = FastScheduler()
            else:
                if fast_path:
                    warn_fast_path_fallback(
                        f"schedule policy {config.schedule_policy!r} "
                        "requires the reference engine")
                self.scheduler = Scheduler(
                    policy=make_policy(config.schedule_policy,
                                       seed=config.seed))
            kwargs["scheduler"] = self.scheduler
            kwargs["delays"] = make_delay_model(config.delay_model,
                                                seed=config.seed)
        elif fast_path:
            raise ConfigError(
                f"option 'fast_path' applies to the scheduled flavours "
                f"({', '.join(SCHEDULED_FLAVORS)}), not {spec.flavor!r}")
        if spec.flavor == "distributed" and not config.fault_plan.is_noop:
            kwargs["faults"] = FaultInjector(config.fault_plan)
        self.trace: Optional[KernelTrace] = None
        if config.trace:
            self.trace = KernelTrace()
            kwargs["kernel_trace"] = self.trace
        self.controller: ControllerProtocol = make_controller(
            spec.flavor, self.tree, m=spec.m, w=spec.w, u=spec.u, **kwargs)
        self._event_driven = spec.event_driven
        # Bound-method caches for the per-request hot paths.
        self._handle = self.controller.handle
        self._handle_batch = self.controller.handle_batch

        self._next_envelope = 0
        self._clock = 0
        # One reentrant lock serializes admission, pumping, and the
        # drain-side pops, so concurrent ``Ticket.result()`` /
        # ``drain()`` callers (the gateway's client threads) can never
        # double-handle a pending batch or double-settle a ticket.
        # Reentrant because the event-driven pump fires settlement
        # callbacks from inside ``scheduler.step()``.  Single-caller
        # paths (``serve`` / ``serve_stream``) stay lock-free except
        # where they delegate to ``_pump``.
        self._lock = threading.RLock()
        self._in_flight: Dict[int, Ticket] = {}
        self._pending: Deque[Tuple[RequestEnvelope, Ticket]] = deque()
        self._ready: Deque[Tuple[OutcomeRecord, Optional[Ticket]]] = deque()
        self._compact_limit = 64
        self._closed = False
        #: Verdict tallies over every settled record (including
        #: backpressure, which the controller never sees).
        self.verdicts: Dict[str, int] = {v.value: 0 for v in SessionVerdict}

    # ------------------------------------------------------------------
    # Clock and introspection.
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The session clock: simulated time on the event-driven
        engine, the submit/settle operation counter otherwise.

        The scheduled-but-synchronous wrappers (distributed_iterated /
        distributed_adaptive) also carry a scheduler, but they settle
        inside ``handle_batch`` — their ticks use the operation counter
        so submit and settle ticks stay on one scale.
        """
        if self._event_driven and self.scheduler is not None:
            return self.scheduler.now
        return float(self._clock)

    @property
    def in_flight(self) -> int:
        """Requests admitted but not yet settled."""
        return len(self._in_flight) + len(self._pending)

    @property
    def backpressured(self) -> int:
        """Requests refused at the admission window so far."""
        return self.verdicts[SessionVerdict.BACKPRESSURE.value]

    @property
    def undelivered(self) -> int:
        """Settled records a future :meth:`drain` would still yield
        (settled but neither drained nor claimed via a ticket)."""
        return sum(1 for _record, ticket in self._ready
                   if ticket is None or not ticket.claimed)

    def introspect(self) -> ControllerView:
        """Delegates to the engine, so the protocol-based auditor
        accepts a session wherever it accepts a controller."""
        return self.controller.introspect()

    def audit(self, report: Optional[InvariantReport] = None
              ) -> InvariantReport:
        """Run the invariant auditor over the live engine."""
        return audit_controller(self.controller, report)

    def tally(self) -> Dict[str, int]:
        """Verdict counts over every settled record."""
        return dict(self.verdicts)

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    def submit(self, request: Request,
               delay: Optional[float] = None) -> Ticket:
        """Admit one request; non-blocking.

        Returns a ticket that settles when the session pumps the engine
        (:meth:`drain`, :meth:`settle_all`, or ``Ticket.result()``).
        If the admission window is full the ticket settles *immediately*
        with ``BACKPRESSURE`` and the controller never sees the request.
        ``delay`` is the arrival offset in simulated time (event-driven
        engine only).
        """
        with self._lock:
            if self._closed:
                raise ControllerError("session is closed")
            envelope, ticket = self._make_ticket(request)
            if (len(self._in_flight) + len(self._pending)
                    >= self.config.max_in_flight):
                self._settle(ticket, envelope, None,
                             SessionVerdict.BACKPRESSURE)
                return ticket
            self._dispatch(envelope, ticket, delay)
            return ticket

    def _make_ticket(self, request: Request
                     ) -> Tuple[RequestEnvelope, Ticket]:
        scheduler = self.scheduler
        tick = (scheduler.now if self._event_driven
                and scheduler is not None else float(self._clock))
        envelope = RequestEnvelope(envelope_id=self._next_envelope,
                                   request=request, submit_tick=tick)
        self._next_envelope += 1
        self._clock += 1
        return envelope, Ticket(envelope, pump=self._pump)

    def _dispatch(self, envelope: RequestEnvelope, ticket: Ticket,
                  delay: Optional[float]) -> None:
        """Hand an admitted request to the engine (no window check)."""
        if self._event_driven:
            self._in_flight[envelope.envelope_id] = ticket
            submit = getattr(self.controller, "submit")
            submit(envelope.request,
                   delay=delay if delay is not None else 0.0,
                   callback=lambda outcome, t=ticket, e=envelope:
                   self._settle(t, e, outcome, verdict_of(outcome)))
        else:
            self._pending.append((envelope, ticket))

    def submit_many(self, requests: Iterable[Request],
                    stagger: Optional[float] = None) -> List[Ticket]:
        """Admit a batch; arrivals spaced ``stagger`` apart on the
        event-driven engine (default: ``config.stagger``)."""
        step = self.config.stagger if stagger is None else stagger
        return [self.submit(request, delay=position * step)
                for position, request in enumerate(requests)]

    def serve(self, request: Request) -> OutcomeRecord:
        """Serve one request to completion, synchronously.

        The single-request convenience mirroring the protocol's
        ``handle``: on the synchronous flavours this is one
        ``controller.handle`` call wrapped in an envelope/record (any
        queued submissions are flushed first so settlement order stays
        submission order); on the event-driven engine the request is
        dispatched and the scheduler pumped until it settles.  Like
        :meth:`serve_stream`, a served request is never queued, so
        admission control does not apply and the record is returned
        directly (not re-yielded by :meth:`drain`).
        """
        if self._closed:
            raise ControllerError("session is closed")
        if self._event_driven:
            envelope, ticket = self._make_ticket(request)
            self._dispatch(envelope, ticket, None)
            record = ticket.result()
            # Match submit_and_run: each serve runs to quiescence, so
            # consecutive serves never interleave with prior cleanup.
            self._quiesce()
            return record
        if self._pending:
            self._pump()
        clock = self._clock
        envelope_id = self._next_envelope
        self._next_envelope = envelope_id + 1
        outcome = self._handle(request)
        trace = self.trace
        handle = (TraceHandle(trace=trace, upto=len(trace))
                  if trace is not None else None)
        self._clock = clock + 2
        self.verdicts[outcome.status.value] += 1
        return OutcomeRecord((request, envelope_id, clock, outcome,
                              clock + 1, handle))

    def serve_stream(self, requests: Iterable[Request]
                     ) -> List[OutcomeRecord]:
        """Serve a lazily-resolved request stream to completion.

        The cooperative batched path for replay harnesses: on the
        synchronous flavours the iterable is handed to ``handle_batch``
        and consumed one element at a time, so a resolver such as
        :class:`repro.workloads.scenarios.TreeMirror` may bind each
        request only after the previous one was applied (the laziness
        guarantee holds for the centralized family, whose
        ``handle_batch`` walks its input incrementally).  On the
        event-driven engine — where requests race and late binding is
        meaningless — the stream is dispatched to the scheduler
        (arrivals spaced ``config.stagger`` apart) and pumped to
        quiescence.

        Admission control does not apply on either engine: the stream
        is served, not queued, so the session is never saturated by it
        (and no request of the stream is ever backpressured).  Records
        come back in stream order and are *not* also yielded by
        :meth:`drain`.
        """
        if self._closed:
            raise ControllerError("session is closed")
        if self._event_driven:
            # Served, not queued: admission does not apply, so the
            # stream dispatches past the window instead of going
            # through submit() (which would backpressure the tail).
            step = self.config.stagger
            tickets: List[Ticket] = []
            for position, request in enumerate(requests):
                envelope, ticket = self._make_ticket(request)
                self._dispatch(envelope, ticket, position * step)
                tickets.append(ticket)
            records = [ticket.result() for ticket in tickets]
            self._quiesce()
            return records
        if self._pending:
            self._pump()  # keep settlement order = submission order
        # The stream goes straight to ``handle_batch`` — nothing is
        # collected up front (that is what keeps resolver laziness
        # intact), and each record reads its request back from the
        # outcome, which carries it by contract.  The loop below runs
        # once per request inside the <= 5% session-overhead budget
        # (the ``session`` bench enforces it): one record allocation,
        # hoisted locals, tallies merged per batch at C speed.
        outcomes = self._handle_batch(requests)
        trace = self.trace
        # The whole batch settled inside one handle_batch call, so every
        # record shares one trace cursor (the log length at return).
        handle = (TraceHandle(trace=trace, upto=len(trace))
                  if trace is not None else None)
        clock = self._clock
        envelope_id = self._next_envelope
        count = len(outcomes)
        # The whole construction loop runs in C (the shared batched
        # constructor in repro.service.envelopes).
        records = build_records(outcomes, envelope_id, clock, handle)
        self._next_envelope = envelope_id + count
        self._clock = clock + 2 * count
        # OutcomeStatus values are a subset of SessionVerdict values by
        # construction, so statuses tally straight into the verdicts.
        for status, value in Counter(
                map(_status_of, outcomes)).items():
            self.verdicts[status.value] += value
        return records

    # ------------------------------------------------------------------
    # Settlement.
    # ------------------------------------------------------------------
    def _settle(self, ticket: Ticket, envelope: RequestEnvelope,
                outcome: Optional[Outcome],
                verdict: SessionVerdict) -> None:
        self._clock += 1
        handle: Optional[TraceHandle] = None
        if self.trace is not None:
            handle = TraceHandle(trace=self.trace, upto=len(self.trace))
        record = OutcomeRecord((envelope.request, envelope.envelope_id,
                                envelope.submit_tick, outcome, self.now,
                                handle))
        self._in_flight.pop(envelope.envelope_id, None)
        self.verdicts[verdict.value] += 1
        ticket._settle(record)
        ready = self._ready
        # Ticket-only consumers never drain: purge the already-claimed
        # head so the queue stays O(unclaimed) instead of O(all-time).
        while ready:
            head_ticket = ready[0][1]
            if head_ticket is None or not head_ticket.claimed:
                break
            ready.popleft()
        ready.append((record, ticket))
        # An abandoned unclaimed ticket at the head blocks the cheap
        # purge above; compact occasionally (amortized O(1) per settle)
        # so claimed records behind it cannot accumulate forever.
        # Unclaimed records are retained by design — they are the
        # not-yet-drained outcome stream.
        if len(ready) >= self._compact_limit:
            retained = [pair for pair in ready
                        if pair[1] is None or not pair[1].claimed]
            ready.clear()
            ready.extend(retained)
            self._compact_limit = max(64, 2 * len(retained))

    def _pump(self) -> bool:
        """Advance the engine one unit; False when it is idle.

        Synchronous flavours: serve the whole pending queue as one
        ``handle_batch`` (amortizing exactly as a direct batch call
        would).  Event-driven engine: execute one scheduler event
        (settlement callbacks fire from inside the step).  A closed
        session refuses to pump — in-flight tickets of a closed
        session never settle, they raise here instead.

        Serialized under the session lock: concurrent pumpers (a
        ``drain()`` iterator racing ``Ticket.result()`` calls) each
        take the whole critical section, so a pending batch is handed
        to the engine exactly once and every ticket settles exactly
        once.
        """
        with self._lock:
            if self._closed:
                raise ControllerError("session is closed")
            if self._event_driven:
                assert self.scheduler is not None
                # One event per pump on the reference engine; the fast
                # engine drains a batch per pump, amortizing this lock
                # and the drain loop's frames across many events.
                return self.scheduler.pump()
            if not self._pending:
                return False
            batch = list(self._pending)
            self._pending.clear()
            outcomes = self._handle_batch(
                [envelope.request for envelope, _ in batch])
            for (envelope, ticket), outcome in zip(batch, outcomes):
                self._settle(ticket, envelope, outcome, verdict_of(outcome))
            return True

    def drain(self) -> Iterator[OutcomeRecord]:
        """Pump the engine, yielding records in settlement order.

        Terminates when nothing is in flight; a later ``submit`` may be
        followed by another ``drain()``.  Delivery is exactly-once: a
        record whose ticket was already taken via ``Ticket.result()``
        is skipped here (the reverse also holds — a drained record
        stays readable through its ticket, as a lookup).  Concurrent
        drains share one stream: each settled record is popped (and
        yielded) by exactly one of them, and a drain racing other
        pumpers re-checks the queue instead of mistaking their progress
        for a stuck engine.
        """
        while True:
            with self._lock:
                record_ticket: Optional[
                    Tuple[OutcomeRecord, Optional[Ticket]]] = None
                while self._ready:
                    head, ticket = self._ready.popleft()
                    if ticket is not None and ticket.claimed:
                        continue
                    record_ticket = (head, ticket)
                    break
                if record_ticket is None:
                    if self.in_flight == 0:
                        self._quiesce()
                        return
                    # Pump inside the lock: the in-flight check and the
                    # pump are atomic, so another thread settling the
                    # remainder between them cannot fake an idle engine.
                    if not self._pump():
                        raise ProtocolError(
                            f"{self.in_flight} requests in flight but "
                            "the engine is idle (agent lost?)")
                    continue
            yield record_ticket[0]

    def settle_all(self) -> List[OutcomeRecord]:
        """Drain to quiescence and return the settled records."""
        return list(self.drain())

    def _quiesce(self) -> None:
        """Finish the event engine's post-settlement cleanup.

        Grants are delivered at grant time; the granting agent's
        return-and-unlock walk is still queued when the last request
        settles.  Draining runs that cleanup to quiescence so the
        engine's locks and counters end exactly where a direct
        ``submit_batch``/``run()`` would leave them.
        """
        if self.scheduler is not None:
            self.scheduler.run()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Settle nothing further: detach the engine from the tree.

        Idempotent.  In-flight requests are abandoned (their tickets
        never settle), so callers normally drain first.
        """
        with self._lock:
            if not self._closed:
                self._closed = True
                if not self._in_flight and not self._pending:
                    self._quiesce()  # settled work still owed its cleanup
                self.controller.detach()

    def __enter__(self) -> "ControllerSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        spec = self.config.controller
        return (f"ControllerSession({spec.flavor!r}, m={spec.m}, "
                f"w={spec.w}, u={spec.u}, in_flight={self.in_flight}, "
                f"settled={sum(self.verdicts.values())})")
