"""Session configuration: frozen, validated, serializable.

Before the session layer, every harness hand-wired its engine — a
``DynamicTree``, :func:`repro.registry.make_controller`, and (for the
distributed flavour) a ``Scheduler`` with a schedule policy, a delay
model, and possibly a ``FaultInjector`` — threading half a dozen
keyword arguments through each call site.  :class:`SessionConfig`
replaces that threading with one frozen value object:

* :class:`ControllerSpec` names the controller — flavour plus the
  ``(M, W, U)`` contract plus any flavour-specific constructor options;
* :class:`SessionConfig` adds the *session* knobs — schedule policy,
  delay model, fault plan, admission window, submit stagger, kernel
  tracing — and validates all of them eagerly (every mistake raises
  :class:`repro.errors.ConfigError` naming the valid choices, before
  any engine state exists).

Both are frozen dataclasses: a config can be shared between cells of a
bench grid, logged into a JSON report via :meth:`SessionConfig.snapshot`,
and never mutated behind a running session's back.
"""

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.distributed.faults import FaultPlan, parse_fault_spec
from repro.errors import ConfigError
from repro.registry import resolve_flavor
from repro.sim.delays import DELAY_MODELS
from repro.sim.policies import SCHEDULE_POLICIES

#: Flavours whose engine settles requests event-by-event on a scheduler
#: (the session pumps the scheduler instead of calling ``handle``).
EVENT_DRIVEN_FLAVORS: Tuple[str, ...] = ("distributed",)

#: Flavours that accept ``scheduler=`` / ``delays=`` constructor wiring.
SCHEDULED_FLAVORS: Tuple[str, ...] = (
    "distributed", "distributed_iterated", "distributed_adaptive")

#: Flavours whose constructor accepts a ``kernel_trace=`` log.
TRACED_FLAVORS: Tuple[str, ...] = ("centralized", "distributed")


@dataclass(frozen=True)
class ControllerSpec:
    """Which controller to build: flavour + (M, W, U) + extra options.

    ``options`` passes flavour-specific constructor keywords through
    (``indexed_stores=``, ``track_intervals=``, ``variant=``, ...); the
    session layer adds its own wiring (scheduler, delays, faults) on
    top for the flavours that take it.
    """

    flavor: str
    m: int
    w: int = 0
    u: int = 0
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "flavor", resolve_flavor(self.flavor))
        if self.m < 0 or self.w < 0:
            raise ConfigError(
                f"invalid (M, W) = ({self.m}, {self.w}); both must be >= 0")

    @property
    def event_driven(self) -> bool:
        """True when the engine settles via scheduler events."""
        return self.flavor in EVENT_DRIVEN_FLAVORS

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable description (options stringified)."""
        return {
            "flavor": self.flavor, "m": self.m, "w": self.w, "u": self.u,
            "options": {key: repr(value)
                        for key, value in sorted(self.options.items())},
        }


@dataclass(frozen=True)
class SessionConfig:
    """Everything a :class:`~repro.service.session.ControllerSession`
    needs to wire its engine, in one validated frozen value.

    Parameters
    ----------
    controller:
        The :class:`ControllerSpec` to build.
    schedule_policy / delay_model / faults:
        Asynchrony knobs for the event-driven engine (ignored by the
        synchronous flavours, which have no scheduler to police):
        a :mod:`repro.sim.policies` name, a :mod:`repro.sim.delays`
        name, and an optional fault plan (a :class:`FaultPlan` or a
        ``"stall=0.05,storms=3"`` spec string).  A fault plan that
        needs a horizon must carry one explicitly — the session cannot
        guess the run's span.
    seed:
        Seeds the schedule policy and the delay model.
    max_in_flight:
        The admission window: how many requests may be in flight
        (submitted, not yet settled) before :meth:`ControllerSession.submit`
        answers ``BACKPRESSURE`` instead of reaching the controller.
    stagger:
        Default inter-request arrival spacing (simulated time units)
        for :meth:`ControllerSession.submit_many` on the event-driven
        engine.
    trace:
        Attach a :class:`repro.core.kernel.KernelTrace` to the engine
        (flavours in :data:`TRACED_FLAVORS`); every settled
        :class:`~repro.service.envelopes.OutcomeRecord` then carries a
        handle into the transition log.
    """

    controller: ControllerSpec
    schedule_policy: str = "fifo"
    delay_model: str = "uniform"
    faults: Optional[Union[FaultPlan, str]] = None
    seed: int = 0
    max_in_flight: int = 1024
    stagger: float = 0.0
    trace: bool = False

    def __post_init__(self) -> None:
        if self.schedule_policy not in SCHEDULE_POLICIES:
            raise ConfigError(
                f"unknown schedule policy {self.schedule_policy!r}; "
                f"known: {', '.join(SCHEDULE_POLICIES)}")
        if self.delay_model not in DELAY_MODELS:
            raise ConfigError(
                f"unknown delay model {self.delay_model!r}; "
                f"known: {', '.join(DELAY_MODELS)}")
        if self.max_in_flight < 1:
            raise ConfigError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}")
        if self.stagger < 0:
            raise ConfigError(f"stagger must be >= 0, got {self.stagger}")
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", parse_fault_spec(self.faults))
        plan = self.fault_plan
        if not plan.is_noop and not self.controller.event_driven:
            raise ConfigError(
                "fault injection needs the event-driven engine "
                f"(flavor 'distributed'), not {self.controller.flavor!r}")
        if plan.needs_horizon and plan.horizon <= 0:
            raise ConfigError(
                "this fault plan schedules pauses/storms but has no "
                "horizon; set one explicitly (the session cannot infer "
                "the run's span)")

    @classmethod
    def of(cls, flavor: str, *, m: int, w: int = 0, u: int = 0,
           options: Optional[Mapping[str, Any]] = None,
           **knobs: Any) -> "SessionConfig":
        """Shorthand: ``SessionConfig.of("iterated", m=100, w=10, u=256)``.

        ``options`` goes to the :class:`ControllerSpec`; every other
        keyword is a :class:`SessionConfig` field.
        """
        spec = ControllerSpec(flavor=flavor, m=m, w=w, u=u,
                              options=dict(options or {}))
        return cls(controller=spec, **knobs)

    @property
    def fault_plan(self) -> FaultPlan:
        """The normalized fault plan (spec strings already parsed)."""
        if self.faults is None:
            return FaultPlan()
        assert isinstance(self.faults, FaultPlan)
        return self.faults

    def with_window(self, max_in_flight: int) -> "SessionConfig":
        """A copy with a different admission window."""
        return replace(self, max_in_flight=max_in_flight)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable description of the full configuration."""
        return {
            "controller": self.controller.snapshot(),
            "schedule_policy": self.schedule_policy,
            "delay_model": self.delay_model,
            "faults": self.fault_plan.snapshot(),
            "seed": self.seed,
            "max_in_flight": self.max_in_flight,
            "stagger": self.stagger,
            "trace": self.trace,
        }
