"""Application specs: the declarative description of a whole app stack.

The Section 5 applications each run a *sequence* of per-iteration
(M,W)-controllers (Observation 2.1's resubmission discipline), with the
iteration contract (M_i, W_i, U_i) derived from the tree size at each
iteration start.  An :class:`AppSpec` therefore cannot carry one fixed
:class:`~repro.service.config.ControllerSpec`; instead it composes

* the **application**: a registered app name plus its app-level
  parameters (``beta``, ``slack``, ``total``, ...), and
* the **engine template**: everything a per-iteration
  :class:`~repro.service.config.SessionConfig` needs *except* the
  (M, W, U) contract — engine flavour, schedule policy, delay model,
  fault plan, seed, admission window, stagger, and extra controller
  options.

:meth:`AppSpec.config_for` stamps one iteration's contract into a full
``SessionConfig``; :func:`repro.apps.make_app` builds the app itself.
The spec is frozen and eagerly validated — unknown app names, unknown
app parameters, unknown policies/delay models, and fault plans on a
synchronous flavour all raise :class:`repro.errors.ConfigError` before
any engine state exists, mirroring ``SessionConfig``'s discipline.
"""

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.distributed.faults import FaultPlan, parse_fault_spec
from repro.errors import ConfigError
from repro.service.config import ControllerSpec, SessionConfig
from repro.sim.delays import DELAY_MODELS
from repro.sim.policies import SCHEDULE_POLICIES

#: The registered Section 5 applications, by spec name.  The class
#: registry lives in :mod:`repro.apps.registry` (which asserts it stays
#: in sync with this tuple); the names are duplicated here so AppSpec
#: can validate eagerly without importing the application classes.
APP_NAMES: Tuple[str, ...] = (
    "size_estimation",
    "name_assignment",
    "subtree_estimator",
    "heavy_child",
    "ancestry_labels",
    "routing_labels",
    "majority_commit",
)

#: Engine flavours an app's per-iteration controller may run on:
#: ``terminating`` (the synchronous Observation 2.1 wrapper) or
#: ``distributed`` (the event-driven agent engine, automatically run
#: with ``terminate_on_exhaustion=True`` so exhaustion surfaces as
#: PENDING instead of a reject wave).
APP_ENGINE_FLAVORS: Tuple[str, ...] = ("terminating", "distributed")

#: App-level parameters each application accepts (everything else is a
#: spelling mistake and fails eagerly).
APP_PARAMS: Dict[str, Tuple[str, ...]] = {
    "size_estimation": ("beta",),
    "name_assignment": (),
    "subtree_estimator": ("beta",),
    "heavy_child": (),
    "ancestry_labels": ("slack",),
    "routing_labels": (),
    "majority_commit": ("total", "beta"),
}


def resolve_app(name: str) -> str:
    """Normalize an app name (strip, hyphens to underscores) and check
    it against :data:`APP_NAMES`.  Raises :class:`ConfigError` naming
    the registry for anything unknown."""
    key = name.strip().replace("-", "_")
    if key not in APP_NAMES:
        raise ConfigError(
            f"unknown app {name!r}; registered: {', '.join(APP_NAMES)}")
    return key


@dataclass(frozen=True)
class AppSpec:
    """Which application to run, on which engine, under what asynchrony.

    Parameters
    ----------
    app:
        A registered app name (see :data:`APP_NAMES`).
    params:
        App-level parameters (``beta=``, ``slack=``, ``total=``, ...);
        validated against :data:`APP_PARAMS`.
    flavor:
        Per-iteration engine flavour, from :data:`APP_ENGINE_FLAVORS`.
    schedule_policy / delay_model / faults / seed / stagger:
        Asynchrony knobs for the event-driven engine, with
        :class:`~repro.service.config.SessionConfig` semantics (the
        per-iteration seed is ``seed + iterations_run`` so iterations
        do not replay each other's schedules).  A fault plan requires
        the ``distributed`` flavour, and one that schedules
        pauses/storms must carry an explicit horizon.
    max_in_flight:
        The *app-level* admission window: how many requests may be in
        flight across :meth:`~repro.apps.base.AppSession.submit` before
        tickets settle as ``BACKPRESSURE``.  The per-iteration engine
        session runs with its window wide open — saturation is answered
        once, at the app boundary, and never interacts with rollover.
    options:
        Extra controller constructor options forwarded to every
        iteration's :class:`~repro.service.config.ControllerSpec`
        (``indexed_stores=``, ...).
    """

    app: str
    params: Mapping[str, Any] = field(default_factory=dict)
    flavor: str = "terminating"
    schedule_policy: str = "fifo"
    delay_model: str = "uniform"
    faults: Optional[Union[FaultPlan, str]] = None
    seed: int = 0
    max_in_flight: int = 1024
    stagger: float = 0.0
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "app", resolve_app(self.app))
        flavor = self.flavor.strip().replace("-", "_")
        if flavor not in APP_ENGINE_FLAVORS:
            raise ConfigError(
                f"apps run on {', '.join(APP_ENGINE_FLAVORS)} engines, "
                f"not {self.flavor!r} (the Observation 2.1 iteration "
                "discipline needs terminating semantics)")
        object.__setattr__(self, "flavor", flavor)
        allowed = APP_PARAMS[self.app]
        unknown = sorted(set(self.params) - set(allowed))
        if unknown:
            raise ConfigError(
                f"unknown parameter(s) {', '.join(unknown)} for app "
                f"{self.app!r}; accepted: {', '.join(allowed) or '(none)'}")
        if self.schedule_policy not in SCHEDULE_POLICIES:
            raise ConfigError(
                f"unknown schedule policy {self.schedule_policy!r}; "
                f"known: {', '.join(SCHEDULE_POLICIES)}")
        if self.delay_model not in DELAY_MODELS:
            raise ConfigError(
                f"unknown delay model {self.delay_model!r}; "
                f"known: {', '.join(DELAY_MODELS)}")
        if self.max_in_flight < 1:
            raise ConfigError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}")
        if self.stagger < 0:
            raise ConfigError(f"stagger must be >= 0, got {self.stagger}")
        faults = self.faults
        if isinstance(faults, str):
            faults = parse_fault_spec(faults)
            object.__setattr__(self, "faults", faults)
        if faults is not None and not faults.is_noop:
            if self.flavor != "distributed":
                raise ConfigError(
                    "fault injection needs the event-driven engine "
                    f"(flavor 'distributed'), not {self.flavor!r}")
            if faults.needs_horizon and faults.horizon <= 0:
                raise ConfigError(
                    "this fault plan schedules pauses/storms but has no "
                    "horizon; set one explicitly (the app cannot infer "
                    "an iteration's span)")

    @property
    def event_driven(self) -> bool:
        """True when iterations run on the event-driven engine."""
        return self.flavor == "distributed"

    @property
    def fault_plan(self) -> FaultPlan:
        """The normalized fault plan (spec strings already parsed)."""
        if self.faults is None:
            return FaultPlan()
        assert isinstance(self.faults, FaultPlan)
        return self.faults

    def param(self, name: str, default: Any = None) -> Any:
        """One app-level parameter, with a default."""
        return self.params.get(name, default)

    def with_params(self, **params: Any) -> "AppSpec":
        """A copy with updated app-level parameters."""
        return replace(self, params={**dict(self.params), **params})

    def config_for(self, m: int, w: int, u: int, iteration: int = 1,
                   options: Optional[Mapping[str, Any]] = None
                   ) -> SessionConfig:
        """One iteration's full :class:`SessionConfig`.

        ``(m, w, u)`` is the iteration contract the app derived from
        the tree size; ``options`` are the app's per-iteration
        controller wirings (shared counters, interval mode, the permit
        flow observer) merged over the spec's own ``options``.  The
        event-driven flavour always runs ``terminate_on_exhaustion``:
        apps consume PENDING, never a reject wave.
        """
        merged: Dict[str, Any] = dict(self.options)
        if options:
            merged.update(options)
        if self.event_driven:
            merged.setdefault("terminate_on_exhaustion", True)
        return SessionConfig(
            controller=ControllerSpec(flavor=self.flavor, m=m, w=w, u=u,
                                      options=merged),
            schedule_policy=self.schedule_policy,
            delay_model=self.delay_model,
            faults=self.faults,
            seed=self.seed + (iteration - 1),
            max_in_flight=1 << 20,
            stagger=self.stagger,
        )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable description of the full specification."""
        plan = self.fault_plan
        return {
            "app": self.app,
            "params": {key: value
                       for key, value in sorted(dict(self.params).items())},
            "flavor": self.flavor,
            "schedule_policy": self.schedule_policy,
            "delay_model": self.delay_model,
            "faults": plan.snapshot(),
            "seed": self.seed,
            "max_in_flight": self.max_in_flight,
            "stagger": self.stagger,
            "options": {key: repr(value)
                        for key, value in sorted(self.options.items())},
        }
