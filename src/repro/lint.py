"""``python -m repro.lint``: the project lint CLI.

Runs the :mod:`repro.analysis` suite over the source tree, writes the
``LINT_REPORT.json`` artifact, and exits non-zero on any open finding
— including the audits of the escape hatches themselves (unused
``lint: allow[...]`` comments, stale baseline entries).

Usage::

    python -m repro.lint                      # lint the installed repro tree
    python -m repro.lint src                  # lint src/repro explicitly
    python -m repro.lint --format json        # JSON to stdout + report file
    python -m repro.lint --rule layering/cycle
    python -m repro.lint --write-baseline     # grandfather current findings
    python -m repro.lint --list-rules

Exit codes: 0 clean, 1 open findings, 2 usage/configuration error.
"""

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import ConfigError

from repro.analysis import (
    META_RULES,
    RULE_REGISTRY,
    run_analysis,
    save_baseline,
)

DEFAULT_REPORT = "LINT_REPORT.json"
DEFAULT_BASELINE = "LINT_BASELINE.json"


def _default_root() -> Path:
    """The source tree this module itself was loaded from."""
    return Path(__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analysis for the repro tree "
                    "(layering, determinism, concurrency, API discipline, "
                    "hot-path hygiene).")
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="repro package dir, a dir containing one, or .py files "
             "(default: the tree this repro package was loaded from)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout format (the JSON report file is written either way)")
    parser.add_argument(
        "--report", type=Path, default=Path(DEFAULT_REPORT),
        help=f"JSON report artifact path (default {DEFAULT_REPORT})")
    parser.add_argument(
        "--no-report", action="store_true",
        help="skip writing the report artifact")
    parser.add_argument(
        "--baseline", type=Path, default=Path(DEFAULT_BASELINE),
        help=f"baseline file (default {DEFAULT_BASELINE}; missing file "
             "means an empty baseline)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current open findings to the baseline file and exit 0")
    parser.add_argument(
        "--rule", action="append", default=[], metavar="RULE_ID",
        help="run only this rule (repeatable)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in RULE_REGISTRY.items():
            print(f"{rule_id:32} {cls.description}")
        return 0

    roots: List[Path] = list(args.paths) or [_default_root()]
    try:
        reports = [
            run_analysis(root, rules=args.rule or None,
                         baseline_path=args.baseline)
            for root in roots
        ]
    except ConfigError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    report = reports[0]
    for extra in reports[1:]:
        report.modules_checked += extra.modules_checked
        report.open_findings.extend(extra.open_findings)
        report.suppressed.extend(extra.suppressed)
        report.baselined.extend(extra.baselined)

    if args.write_baseline:
        # Grandfather everything currently firing (keeping what the old
        # baseline still matched); the engine's own audit findings are
        # never baselinable.
        keep = [f for f in report.open_findings + report.baselined
                if f.rule not in META_RULES]
        save_baseline(args.baseline, keep)
        print(f"repro.lint: wrote {len(keep)} entries to {args.baseline}")
        return 0

    if not args.no_report:
        args.report.write_text(
            json.dumps(report.to_json(), indent=2) + "\n", encoding="utf-8")

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
