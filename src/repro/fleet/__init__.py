"""``repro.fleet`` — the scale-out layer: sharded controller fleets.

One :class:`~repro.service.session.ControllerSession` governs one tree;
a fleet runs N of them over a forest behind a
:class:`~repro.fleet.router.FleetRouter` that speaks the same session
surface (the ingestion gateway fronts a fleet unchanged).  The global
``(M_total, W_total)`` contract is carved into per-shard budgets
(:class:`~repro.fleet.config.FleetConfig` /
:class:`~repro.fleet.config.ShardSpec`), rebalanced between shards
through an explicit :class:`~repro.fleet.rebalancer.BudgetTransfer`
ledger, and machine-checked end to end by
:func:`repro.metrics.invariants.audit_fleet`.

Quickstart::

    from repro.fleet import FleetConfig, FleetRouter

    config = FleetConfig.of(shards=4, m_total=2000, w_total=40, u=4096)
    with FleetRouter(config) as fleet:
        for client in ("alice", "bob"):
            tree = fleet.tree_of(client)       # locality: one shard per client
            record = fleet.serve(Request(RequestKind.ADD_LEAF, tree.root),
                                 origin=client)
        report = fleet.audit()                 # 0 violations or it says why
"""

from repro.fleet.config import (PLACEMENT_POLICIES, REBALANCE_POLICIES,
                                SHARD_FLAVORS, FleetConfig, ShardSpec, carve)
from repro.fleet.rebalancer import (REBALANCERS, BudgetTransfer,
                                    TransferLedger, plan_greedy,
                                    plan_proportional)
from repro.fleet.router import FleetRouter, Shard

__all__ = [
    "PLACEMENT_POLICIES",
    "REBALANCE_POLICIES",
    "REBALANCERS",
    "SHARD_FLAVORS",
    "BudgetTransfer",
    "FleetConfig",
    "FleetRouter",
    "Shard",
    "ShardSpec",
    "TransferLedger",
    "carve",
    "plan_greedy",
    "plan_proportional",
]
