"""The fleet router: N controller shards behind one session surface.

A :class:`FleetRouter` runs one :class:`~repro.service.session.ControllerSession`
per shard — each on its own tree — and exposes the *same* typed-envelope
surface as a single session (``submit`` / ``submit_many`` / ``drain`` /
``serve`` / ``serve_stream`` / ``tally`` / ``audit``), so the ingestion
gateway sits in front of a fleet unchanged.

**Placement.**  Requests route by *origin* (any hashable client key)
over a consistent-hash ring of shard virtual nodes, or — when no origin
is given — by *node ownership*: every node that ever lived on a shard
tree is registered (tree listeners keep the map live; node ids are
never reused, so entries for removed nodes stay valid tombstones and
dead-node requests still reach the right engine to be CANCELLED).  The
``sticky`` policy pins an origin to its first ring answer for the
fleet's lifetime — the locality contract that keeps one client's
requests on one shard — and every placement is recorded so
:func:`~repro.metrics.invariants.audit_fleet` can replay the ring and
prove determinism.

**Budget lifecycle.**  Each shard spawns terminating-flavour sessions
(exhaustion surfaces as a PENDING the router intercepts, never as a
client-visible reject) against its carved slice of ``M_total``.  When a
session terminates, the shard *banks* its grants and recovers the
leftover into its reserve — the exact stage-rollover algebra of
:class:`~repro.core.iterated.IteratedController` — then refills from
its own reserve, or borrows from siblings through the
:class:`~repro.fleet.rebalancer.TransferLedger` (reserve first, then
*reclaiming* spare locked in a sibling's live session by gracefully
draining it).  Only when no permit remains unspent anywhere does the
fleet enter its **reject wave**: the mop-up ``trivial`` sessions answer
exact (M, 0) rejects, so at the first client-visible REJECTED the fleet
has granted its entire global budget — fleet-level waste is zero, well
inside the ``W_total`` bound the auditor checks.
"""

import threading
from bisect import bisect_left
from collections import deque
from typing import (Any, Deque, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)
from zlib import crc32

from repro.core.requests import Outcome, OutcomeStatus, Request
from repro.errors import ConfigError, ControllerError, FleetError, ProtocolError
from repro.fleet.config import FleetConfig, ShardSpec
from repro.fleet.rebalancer import REBALANCERS, TransferLedger
from repro.metrics.counters import MoveCounters
from repro.metrics.invariants import InvariantReport, audit_fleet
from repro.protocol import BudgetSplit
from repro.service.config import ControllerSpec, SessionConfig
from repro.service.envelopes import (OutcomeRecord, RequestEnvelope,
                                     SessionVerdict, Ticket, verdict_of)
from repro.service.session import ControllerSession
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode

__all__ = ["FleetRouter", "Shard"]


class _OwnershipListener(TreeListener):
    """Registers every node added to a shard tree in the fleet map.

    Keyed by object identity (``node_id`` counters are per-tree, so
    twin trees collide on them); the map holds the node itself, which
    keeps ``id()`` stable for the fleet's lifetime.  Removals keep
    their entries as tombstones: a late request for a dead node still
    routes to the engine that can answer CANCELLED for it.
    """

    def __init__(self, owned: Dict[int, Tuple[int, TreeNode]],
                 index: int) -> None:
        self._owned = owned
        self._index = index

    def on_add_leaf(self, node: TreeNode) -> None:
        self._owned[id(node)] = (self._index, node)

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        self._owned[id(node)] = (self._index, node)


class Shard:
    """One member of the fleet: a tree, a live session, and the books.

    The books are double-entry against the transfer ledger:
    ``entitlement`` (= allocation + inbound - outbound) always equals
    ``banked_granted + live budget + reserve``, which
    :func:`~repro.metrics.invariants.audit_fleet` re-checks through the
    :class:`~repro.protocol.BudgetSplit` contract (:attr:`budget`).
    """

    def __init__(self, index: int, spec: ShardSpec, allocation: int,
                 waste: int, *, tranche: int, seed: int,
                 tree: Optional[DynamicTree] = None) -> None:
        self.index = index
        self.spec = spec
        self.name = spec.name
        self.tree = tree if tree is not None else DynamicTree()
        #: One counter object threads through every session this shard
        #: spawns (and takes the rebalancing charges), so move totals
        #: are cumulative across rollovers.
        self.counters = MoveCounters()
        self.allocation = allocation
        self.waste = waste
        self.reserve = allocation
        self.banked_granted = 0
        self.banked_rejected = 0
        self.inbound = 0
        self.outbound = 0
        self.served = 0
        self.sessions_spawned = 0
        self.live_m = 0
        #: Grants of the most recently closed session; -1 = none yet.
        self.last_granted = -1
        self._seed = seed
        self.session: Optional[ControllerSession] = None
        first = allocation if tranche == 0 else min(tranche, allocation)
        self.spawn_terminating(first)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def entitlement(self) -> int:
        """Budget this shard currently answers for."""
        return self.allocation + self.inbound - self.outbound

    @property
    def live_granted(self) -> int:
        return (self.session.controller.introspect().granted
                if self.session is not None else 0)

    @property
    def live_unused(self) -> int:
        """Unspent permits locked in the live session (reclaimable)."""
        return (self.session.controller.unused_permits()
                if self.session is not None else 0)

    @property
    def granted(self) -> int:
        return self.banked_granted + self.live_granted

    @property
    def rejected(self) -> int:
        view = (self.session.controller.introspect()
                if self.session is not None else None)
        return self.banked_rejected + (view.rejected if view else 0)

    @property
    def budget(self) -> BudgetSplit:
        """The Observation 3.4 split: banked grants vs. unspent budget."""
        return BudgetSplit(prior_grants=self.banked_granted,
                           live_budget=self.live_m + self.reserve)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable books (bench artifacts)."""
        return {
            "name": self.name, "allocation": self.allocation,
            "waste": self.waste, "reserve": self.reserve,
            "granted": self.granted, "rejected": self.rejected,
            "inbound": self.inbound, "outbound": self.outbound,
            "served": self.served,
            "sessions_spawned": self.sessions_spawned,
            "tree_size": self.tree.size,
            "moves": self.counters.snapshot(),
        }

    # ------------------------------------------------------------------
    # Session lifecycle (driven by the router).
    # ------------------------------------------------------------------
    def spawn_terminating(self, m_live: int) -> None:
        """Issue ``m_live`` permits from reserve into a fresh session."""
        template = self.spec.session_template(m_live, self.waste)
        options = dict(template.options)
        options["counters"] = self.counters
        self._spawn(ControllerSpec(template.flavor, m=template.m,
                                   w=template.w, u=template.u,
                                   options=options), m_live)

    def spawn_trivial(self, m_live: int) -> None:
        """Mop-up mode: an exact (M, 0) engine over the whole reserve.

        Spawned when packaged sessions can no longer make progress (the
        previous session granted nothing, or the pool is too small to
        fill a package): the trivial engine grants permit-by-permit
        until the pool is empty and only then rejects — so a reject is
        a proof the budget is spent, not a packaging artifact.
        """
        self._spawn(ControllerSpec("trivial", m=m_live, w=0, u=0,
                                   options={"counters": self.counters}),
                    m_live)

    def _spawn(self, spec: ControllerSpec, m_live: int) -> None:
        assert self.session is None, "spawn over a live session"
        assert 0 <= m_live <= self.reserve
        self.reserve -= m_live
        self.live_m = m_live
        config = SessionConfig(controller=spec, seed=self._seed)
        self.session = ControllerSession(config, tree=self.tree)
        self.sessions_spawned += 1

    def bank(self) -> None:
        """Close the live session, banking its grants (stage rollover).

        The Observation 3.4 move: grants accumulate into the shard's
        prior-grants ledger, the unspent leftover returns to reserve —
        no permit is minted or lost.
        """
        session = self.session
        assert session is not None, "no live session to bank"
        view = session.controller.introspect()
        leftover = session.controller.unused_permits()
        self.banked_granted += view.granted
        self.banked_rejected += view.rejected
        self.reserve += leftover
        self.last_granted = view.granted
        self.live_m = 0
        self.session = None
        session.close()

    def reclaim(self) -> None:
        """Gracefully drain the live session so siblings can borrow.

        Charged as a shard-wide broadcast (one reset move per tree
        node): recovering permits parked across a live tree costs a
        collection wave, the same price the terminating engine pays on
        its own termination.
        """
        self.counters.reset_moves += self.tree.size
        self.bank()


class FleetRouter:
    """Route requests over the shards; rebalance budget between them.

    Mirrors the :class:`~repro.service.session.ControllerSession`
    surface (it satisfies :class:`repro.gateway.gateway.IngestionBackend`),
    with one addition: ``submit``/``serve`` accept an ``origin=`` —
    any hashable client key — that routes via the consistent-hash ring
    instead of node ownership.  Thread-safe the same way a session is:
    one reentrant lock serializes admission, serving, and settlement.
    """

    def __init__(self, config: FleetConfig,
                 trees: Optional[Sequence[DynamicTree]] = None) -> None:
        self.config = config
        if trees is not None and len(trees) != len(config.shards):
            raise ConfigError(
                f"got {len(trees)} trees for {len(config.shards)} shards")
        m_shares = config.budget_shares()
        w_shares = config.waste_shares()
        self.shards: List[Shard] = [
            Shard(index, spec, m_shares[index], w_shares[index],
                  tranche=config.tranche, seed=config.seed,
                  tree=None if trees is None else trees[index])
            for index, spec in enumerate(config.shards)]
        self._by_name = {shard.name: shard for shard in self.shards}
        self.ledger = TransferLedger()
        self._rebalance = REBALANCERS[config.rebalance]

        # Consistent-hash ring: ``ring_replicas`` virtual nodes per
        # unit of shard weight, CRC32-placed (stable across processes,
        # unlike ``hash()``), ties broken by shard index.
        self._ring: List[Tuple[int, int]] = sorted(
            (crc32(f"{spec.name}#{vnode}".encode("utf-8")), index)
            for index, spec in enumerate(config.shards)
            for vnode in range(config.ring_replicas * spec.weight))
        #: Every origin ever placed -> shard index (the sticky table;
        #: also the auditor's replay record under the hash policy).
        self.placements: Dict[str, int] = {}

        # Node ownership: every node that ever lived on a shard tree
        # (identity-keyed; see _OwnershipListener).
        self._owned: Dict[int, Tuple[int, TreeNode]] = {}
        self._listeners: List[_OwnershipListener] = []
        for shard in self.shards:
            for node in shard.tree.nodes():
                self._owned[id(node)] = (shard.index, node)
            listener = _OwnershipListener(self._owned, shard.index)
            shard.tree.add_listener(listener)
            self._listeners.append(listener)

        # Envelope machinery (mirrors the synchronous session).
        self._next_envelope = 0
        self._clock = 0
        self._lock = threading.RLock()
        self._pending: Deque[Tuple[RequestEnvelope, Ticket, int]] = deque()
        self._ready: Deque[Tuple[OutcomeRecord, Optional[Ticket]]] = deque()
        self._compact_limit = 64
        self._closed = False
        self._reject_wave = False
        self.verdicts: Dict[str, int] = {v.value: 0 for v in SessionVerdict}

    # ------------------------------------------------------------------
    # Placement.
    # ------------------------------------------------------------------
    def ring_place(self, origin: Any) -> int:
        """The pure ring answer for ``origin`` (stateless, auditable)."""
        point = crc32(str(origin).encode("utf-8"))
        position = bisect_left(self._ring, (point, -1))
        if position == len(self._ring):
            position = 0
        return self._ring[position][1]

    def place(self, origin: Any) -> int:
        """Shard index for ``origin`` under the configured policy.

        ``sticky`` pins the first answer for the fleet's lifetime;
        ``hash`` recomputes every time (identical under a fixed ring).
        Either way the placement is recorded for the determinism audit.
        """
        key = str(origin)
        with self._lock:
            pinned = self.placements.get(key)
            if pinned is not None and self.config.placement == "sticky":
                return pinned
            index = self.ring_place(key)
            if pinned is None:
                self.placements[key] = index
            return index

    def tree_of(self, origin: Any) -> DynamicTree:
        """The tree a client keyed ``origin`` should build requests on."""
        return self.shards[self.place(origin)].tree

    def owner_of(self, node: TreeNode) -> Optional[int]:
        """Shard index owning ``node``, or None if it never lived on a
        shard tree (tombstones for removed nodes included)."""
        entry = self._owned.get(id(node))
        return entry[0] if entry is not None else None

    def _route(self, request: Request, origin: Optional[Any]) -> int:
        owner = self.owner_of(request.node)
        if origin is not None:
            index = self.place(origin)
            if owner is not None and owner != index:
                raise FleetError(
                    f"origin {origin!r} places on shard "
                    f"{self.shards[index].name!r} but the request targets "
                    f"a node owned by shard {self.shards[owner].name!r}; "
                    "build a client's requests on its tree_of(origin)")
            return index
        if owner is None:
            raise FleetError(
                "request node is not owned by any shard tree; pass "
                "origin= or build requests against a shard tree "
                "(tree_of / shards[i].tree)")
        return owner

    # ------------------------------------------------------------------
    # Budget rebalancing.
    # ------------------------------------------------------------------
    def _availability(self, requester: Shard) -> int:
        """Permits obtainable for ``requester`` right now."""
        total = 0
        for shard in self.shards:
            total += shard.reserve
            if shard is not requester and shard.session is not None:
                total += shard.live_unused
        return total

    def _transfer(self, donor: Shard, receiver: Shard, permits: int,
                  kind: str) -> None:
        assert 0 < permits <= donor.reserve
        donor.reserve -= permits
        receiver.reserve += permits
        donor.outbound += permits
        receiver.inbound += permits
        self.ledger.record(donor.name, receiver.name, permits, kind)
        # The permit batch rides root-to-root through the coordinator:
        # one hop out of the donor, one into the receiver.
        donor.counters.package_moves += 1
        receiver.counters.package_moves += 1

    def _borrow(self, shard: Shard, need: int) -> None:
        """Pull up to ``need`` permits from siblings into ``shard``.

        Reserve donations first (no live engine touched); if need
        remains, spare is *reclaimed* from sibling live sessions by
        gracefully draining them (their grants bank, their leftover
        becomes lendable reserve).  The configured policy plans both
        phases.
        """
        donors = [(s.name, s.reserve)
                  for s in self.shards if s is not shard and s.reserve > 0]
        for name, take in self._rebalance(need, donors):
            self._transfer(self._by_name[name], shard, take, "reserve")
            need -= take
        if need <= 0:
            return
        locked = [(s.name, s.live_unused)
                  for s in self.shards
                  if s is not shard and s.session is not None
                  and s.live_unused > 0]
        for name, take in self._rebalance(need, locked):
            donor = self._by_name[name]
            donor.reclaim()
            take = min(take, donor.reserve)
            if take > 0:
                self._transfer(donor, shard, take, "reclaim")
                need -= take

    def _refill(self, shard: Shard) -> None:
        """Give ``shard`` a fresh session from whatever budget remains."""
        target = max(self.config.tranche or shard.allocation, 1)
        if shard.reserve < target:
            self._borrow(shard, target - shard.reserve)
        if shard.reserve == 0:
            # Global budget spent: an empty mop-up engine still answers
            # CANCELLED/REJECTED with exact semantics.
            shard.spawn_trivial(0)
        elif shard.last_granted == 0:
            # The previous packaged session made no progress (tranche
            # below the needed package size) — grant the rest exactly.
            shard.spawn_trivial(shard.reserve)
        else:
            shard.spawn_terminating(min(target, shard.reserve))

    def _rollover(self, shard: Shard) -> None:
        shard.bank()
        self._refill(shard)

    def _serve_on(self, index: int, request: Request) -> Outcome:
        """Serve one request on a shard, rebalancing across rollovers.

        Terminating PENDINGs are intercepted and retried on a refilled
        session; a REJECTED is let through only once nothing remains
        borrowable anywhere — the global reject wave.
        """
        shard = self.shards[index]
        shard.served += 1
        while True:
            session = shard.session
            if session is None:  # clawed back by a sibling
                self._refill(shard)
                session = shard.session
                assert session is not None
            record = session.serve(request)
            outcome: Outcome = record.outcome
            status = outcome.status
            if status is OutcomeStatus.PENDING:
                self._rollover(shard)
                continue
            if status is OutcomeStatus.REJECTED and not self._reject_wave:
                if self._availability(shard) > 0:
                    self._rollover(shard)
                    continue
                self._reject_wave = True
            return outcome

    # ------------------------------------------------------------------
    # Clock and introspection.
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The fleet clock: a submit/settle operation counter."""
        return float(self._clock)

    @property
    def in_flight(self) -> int:
        # Every shard flavour is synchronous, so admitted-but-unsettled
        # is exactly the pending queue (no event-driven callback leg).
        return len(self._pending)

    @property
    def backpressured(self) -> int:
        return self.verdicts[SessionVerdict.BACKPRESSURE.value]

    @property
    def undelivered(self) -> int:
        return sum(1 for _record, ticket in self._ready
                   if ticket is None or not ticket.claimed)

    @property
    def reject_wave(self) -> bool:
        """True once a reject reached a client (global budget spent)."""
        return self._reject_wave

    @property
    def granted_total(self) -> int:
        return sum(shard.granted for shard in self.shards)

    def tally(self) -> Dict[str, int]:
        """Verdict counts over every settled record."""
        return dict(self.verdicts)

    def audit(self, report: Optional[InvariantReport] = None
              ) -> InvariantReport:
        """Run the fleet auditor (per-shard engines + global books)."""
        return audit_fleet(self, report)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable fleet books (bench artifacts)."""
        return {
            "config": self.config.snapshot(),
            "shards": [shard.snapshot() for shard in self.shards],
            "transfers": [entry.snapshot() for entry in self.ledger.entries],
            "granted_total": self.granted_total,
            "reject_wave": self._reject_wave,
            "verdicts": dict(self.verdicts),
        }

    # ------------------------------------------------------------------
    # Submission (the ControllerSession surface).
    # ------------------------------------------------------------------
    def submit(self, request: Request, delay: Optional[float] = None,
               origin: Optional[Any] = None) -> Ticket:
        """Admit one request; non-blocking (see session ``submit``).

        ``delay`` is accepted for surface parity and ignored — every
        shard flavour is synchronous.  ``origin`` routes by placement
        instead of node ownership.
        """
        with self._lock:
            if self._closed:
                raise ControllerError("fleet is closed")
            index = self._route(request, origin)
            tick = float(self._clock)
            envelope = RequestEnvelope(envelope_id=self._next_envelope,
                                       request=request, submit_tick=tick)
            self._next_envelope += 1
            self._clock += 1
            ticket = Ticket(envelope, pump=self._pump)
            if len(self._pending) >= self.config.max_in_flight:
                self._settle(ticket, envelope, None,
                             SessionVerdict.BACKPRESSURE)
                return ticket
            self._pending.append((envelope, ticket, index))
            return ticket

    def submit_many(self, requests: Iterable[Request],
                    stagger: Optional[float] = None,
                    origin: Optional[Any] = None) -> List[Ticket]:
        """Admit a batch (``stagger`` accepted for parity, ignored)."""
        return [self.submit(request, origin=origin)
                for request in requests]

    def serve(self, request: Request,
              origin: Optional[Any] = None) -> OutcomeRecord:
        """Serve one request to completion, synchronously.

        Never queued: admission control does not apply and the record
        is not re-yielded by :meth:`drain` (session ``serve`` contract).
        """
        with self._lock:
            if self._closed:
                raise ControllerError("fleet is closed")
            index = self._route(request, origin)
            if self._pending:
                self._pump()  # keep settlement order = submission order
            clock = self._clock
            envelope_id = self._next_envelope
            self._next_envelope = envelope_id + 1
            outcome = self._serve_on(index, request)
            self._clock = clock + 2
            self.verdicts[outcome.status.value] += 1
            return OutcomeRecord((request, envelope_id, float(clock),
                                  outcome, float(clock + 1), None))

    def serve_stream(self, requests: Iterable[Request],
                     origin: Optional[Any] = None) -> List[OutcomeRecord]:
        """Serve a lazily-resolved stream in order (session contract:
        each request binds only after the previous one was applied)."""
        return [self.serve(request, origin=origin) for request in requests]

    # ------------------------------------------------------------------
    # Settlement (mirrors the synchronous session).
    # ------------------------------------------------------------------
    def _settle(self, ticket: Ticket, envelope: RequestEnvelope,
                outcome: Optional[Outcome],
                verdict: SessionVerdict) -> None:
        self._clock += 1
        record = OutcomeRecord((envelope.request, envelope.envelope_id,
                                envelope.submit_tick, outcome, self.now,
                                None))
        self.verdicts[verdict.value] += 1
        ticket._settle(record)
        ready = self._ready
        while ready:
            head_ticket = ready[0][1]
            if head_ticket is None or not head_ticket.claimed:
                break
            ready.popleft()
        ready.append((record, ticket))
        if len(ready) >= self._compact_limit:
            retained = [pair for pair in ready
                        if pair[1] is None or not pair[1].claimed]
            ready.clear()
            ready.extend(retained)
            self._compact_limit = max(64, 2 * len(retained))

    def _pump(self) -> bool:
        """Serve the whole pending queue; False when idle."""
        with self._lock:
            if self._closed:
                raise ControllerError("fleet is closed")
            if not self._pending:
                return False
            batch = list(self._pending)
            self._pending.clear()
            for envelope, ticket, index in batch:
                outcome = self._serve_on(index, envelope.request)
                self._settle(ticket, envelope, outcome, verdict_of(outcome))
            return True

    def drain(self) -> Iterator[OutcomeRecord]:
        """Pump, yielding records in settlement order (exactly-once)."""
        while True:
            with self._lock:
                record_ticket: Optional[
                    Tuple[OutcomeRecord, Optional[Ticket]]] = None
                while self._ready:
                    head, ticket = self._ready.popleft()
                    if ticket is not None and ticket.claimed:
                        continue
                    record_ticket = (head, ticket)
                    break
                if record_ticket is None:
                    if self.in_flight == 0:
                        return
                    if not self._pump():
                        raise ProtocolError(
                            f"{self.in_flight} requests in flight but "
                            "the fleet is idle")
                    continue
            yield record_ticket[0]

    def settle_all(self) -> List[OutcomeRecord]:
        """Drain to quiescence and return the settled records."""
        return list(self.drain())

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every shard session and detach the ownership
        listeners.  Idempotent; in-flight requests are abandoned."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for shard, listener in zip(self.shards, self._listeners):
                shard.tree.remove_listener(listener)
                if shard.session is not None:
                    shard.session.close()

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"FleetRouter(shards={len(self.shards)}, "
                f"m_total={self.config.m_total}, "
                f"granted={self.granted_total}, "
                f"transfers={len(self.ledger)}, "
                f"reject_wave={self._reject_wave})")
