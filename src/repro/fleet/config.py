"""Fleet configuration: frozen, validated, serializable.

A fleet runs N controller shards — one tree, one live
:class:`~repro.service.session.ControllerSession` each — behind a
router, with one *global* ``(M_total, W_total)`` contract carved into
per-shard entitlements.  The carve follows the paper's re-budgeting
algebra: like :class:`repro.core.iterated.IteratedController` handing
the unused half of its budget to the next stage (Observation 3.4), the
fleet hands each shard a slice of ``M_total`` and accounts every later
move of budget between shards through an explicit
:class:`~repro.fleet.rebalancer.BudgetTransfer` ledger, so the
:class:`~repro.protocol.BudgetSplit` conservation check
(``prior_grants + live_budget == entitlement``) holds per shard at all
times and Σ granted ≤ ``M_total`` holds globally.

Two frozen values describe a fleet:

* :class:`ShardSpec` names one shard — a stable ``name`` (the
  consistent-hash ring key), a *budget-less*
  :class:`~repro.service.config.ControllerSpec` template (``m``/``w``
  must be 0: the fleet owns the budget), and a ``weight`` that scales
  both its ring share and its slice of the carve;
* :class:`FleetConfig` adds the global knobs — ``m_total``/``w_total``,
  the per-session ``tranche`` size, the rebalance policy (greedy
  richest-sibling vs. proportional), the placement policy
  (pure ``hash`` vs. ``sticky`` locality), ring geometry, and the
  fleet-level admission window.

Both validate eagerly in ``__post_init__`` (every mistake raises
:class:`repro.errors.ConfigError` naming the valid choices) and
serialize via ``snapshot()`` for bench artifacts.
"""

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.service.config import ControllerSpec

__all__ = [
    "PLACEMENT_POLICIES",
    "REBALANCE_POLICIES",
    "SHARD_FLAVORS",
    "FleetConfig",
    "ShardSpec",
    "carve",
]

#: Engine flavours a shard template may name.  Shard engines must
#: surface exhaustion as a *terminating* PENDING (never a client-visible
#: REJECTED) so the router can intercept it and rebalance; of the
#: registered flavours only ``terminating`` has that contract.  (The
#: router spawns its own ``trivial`` mop-up sessions once the global
#: budget is nearly spent — those are fleet-internal, not templates.)
SHARD_FLAVORS: Tuple[str, ...] = ("terminating",)

#: Rebalance policies: ``greedy`` drains the richest sibling first,
#: ``proportional`` spreads the need across all donors by their spare.
REBALANCE_POLICIES: Tuple[str, ...] = ("greedy", "proportional")

#: Placement policies: ``hash`` recomputes the ring for every origin,
#: ``sticky`` pins an origin to its first placement (ring answer) for
#: the fleet's lifetime.  Under a fixed ring the two agree; the sticky
#: table is what makes the locality contract auditable.
PLACEMENT_POLICIES: Tuple[str, ...] = ("hash", "sticky")


def carve(total: int, weights: Sequence[int]) -> Tuple[int, ...]:
    """Split ``total`` into integer shares proportional to ``weights``.

    Largest-remainder (Hamilton) apportionment: exact conservation
    (shares sum to ``total``), deterministic tie-break by index.  This
    is the fleet's Observation 3.4 analogue — the budget is *carved*,
    never minted: Σ shares == total by construction, and the auditor
    re-checks it.
    """
    if total < 0:
        raise ConfigError(f"cannot carve a negative total ({total})")
    if not weights or any(w < 1 for w in weights):
        raise ConfigError(f"carve weights must all be >= 1, got {weights!r}")
    denom = sum(weights)
    base = [total * w // denom for w in weights]
    remainder = total - sum(base)
    # Largest fractional part first; ties broken by lower index.
    order = sorted(range(len(weights)),
                   key=lambda i: (-((total * weights[i]) % denom), i))
    for i in order[:remainder]:
        base[i] += 1
    return tuple(base)


@dataclass(frozen=True)
class ShardSpec:
    """One shard of the fleet: name, engine template, carve weight.

    The template is *budget-less* by contract: its ``m`` and ``w`` must
    be 0 because the fleet owns the global budget and assigns each
    session its tranche (``m``) and the shard's carved waste allowance
    (``w``) at spawn time.  ``u`` and ``options`` pass through to every
    session the shard spawns.
    """

    name: str
    template: ControllerSpec
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.name or "#" in self.name:
            raise ConfigError(
                f"shard name must be non-empty and '#'-free (it keys the "
                f"hash ring), got {self.name!r}")
        if self.weight < 1:
            raise ConfigError(
                f"shard {self.name!r}: weight must be >= 1, "
                f"got {self.weight}")
        if self.template.flavor not in SHARD_FLAVORS:
            raise ConfigError(
                f"shard {self.name!r}: flavour {self.template.flavor!r} "
                f"cannot shard — the engine must surface exhaustion as a "
                f"terminating PENDING for the router to rebalance "
                f"(valid: {', '.join(SHARD_FLAVORS)})")
        if self.template.m != 0 or self.template.w != 0:
            raise ConfigError(
                f"shard {self.name!r}: template must carry m=0/w=0 — the "
                f"fleet carves M_total/W_total into per-shard budgets "
                f"(got m={self.template.m}, w={self.template.w})")
        if self.template.u < 1:
            raise ConfigError(
                f"shard {self.name!r}: template needs the node bound u "
                f"for its tree (got {self.template.u})")

    def session_template(self, m: int, w: int) -> ControllerSpec:
        """The template with a live budget filled in."""
        return replace(self.template, m=m, w=w)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable description."""
        return {"name": self.name, "weight": self.weight,
                "template": self.template.snapshot()}


@dataclass(frozen=True)
class FleetConfig:
    """Everything a :class:`~repro.fleet.router.FleetRouter` needs.

    Parameters
    ----------
    shards:
        The :class:`ShardSpec` tuple; names must be unique.
    m_total / w_total:
        The fleet-wide ``(M, W)`` contract: at most ``m_total`` permits
        are ever granted across all shards, and once the fleet rejects,
        at least ``m_total - w_total`` were granted.  ``w_total`` must
        cover at least 1 per shard (every terminating inner session
        needs ``w >= 1``, the Section 2 packaging floor).
    tranche:
        Permits issued to a shard per spawned session; the remainder
        stays in the shard's reserve (borrowable by siblings without
        touching a live engine).  ``0`` issues each shard its entire
        carve up front — required for the single-shard arm to be
        bit-identical to a plain session.
    rebalance / placement:
        Policy names from :data:`REBALANCE_POLICIES` /
        :data:`PLACEMENT_POLICIES`.
    ring_replicas:
        Virtual nodes per unit of shard weight on the consistent-hash
        ring.
    max_in_flight:
        The fleet-level admission window (mirrors
        :attr:`~repro.service.config.SessionConfig.max_in_flight`; the
        gateway's window probe reads it from here).
    seed:
        Seeds per-shard session configs (schedule/delay determinism).
    """

    shards: Tuple[ShardSpec, ...]
    m_total: int
    w_total: int
    tranche: int = 0
    rebalance: str = "greedy"
    placement: str = "sticky"
    ring_replicas: int = 32
    max_in_flight: int = 1024
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", tuple(self.shards))
        if not self.shards:
            raise ConfigError("a fleet needs at least one shard")
        names = [spec.name for spec in self.shards]
        if len(set(names)) != len(names):
            raise ConfigError(f"shard names must be unique, got {names!r}")
        if self.m_total < 0:
            raise ConfigError(f"m_total must be >= 0, got {self.m_total}")
        if self.w_total < len(self.shards):
            raise ConfigError(
                f"w_total must cover >= 1 per shard ({len(self.shards)} "
                f"shards; every terminating session needs w >= 1), "
                f"got {self.w_total}")
        if self.tranche < 0:
            raise ConfigError(f"tranche must be >= 0, got {self.tranche}")
        if self.rebalance not in REBALANCE_POLICIES:
            raise ConfigError(
                f"unknown rebalance policy {self.rebalance!r} "
                f"(valid: {', '.join(REBALANCE_POLICIES)})")
        if self.placement not in PLACEMENT_POLICIES:
            raise ConfigError(
                f"unknown placement policy {self.placement!r} "
                f"(valid: {', '.join(PLACEMENT_POLICIES)})")
        if self.ring_replicas < 1:
            raise ConfigError(
                f"ring_replicas must be >= 1, got {self.ring_replicas}")
        if self.max_in_flight < 1:
            raise ConfigError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}")

    # ------------------------------------------------------------------
    # Budget carve.
    # ------------------------------------------------------------------
    @property
    def weights(self) -> Tuple[int, ...]:
        return tuple(spec.weight for spec in self.shards)

    def budget_shares(self) -> Tuple[int, ...]:
        """Per-shard slices of ``m_total`` (sum is exactly ``m_total``)."""
        return carve(self.m_total, self.weights)

    def waste_shares(self) -> Tuple[int, ...]:
        """Per-shard slices of ``w_total``; every share is >= 1.

        One unit goes to each shard first (the packaging floor), the
        rest is carved by weight, so the shares still sum to exactly
        ``w_total``.
        """
        count = len(self.shards)
        extra = carve(self.w_total - count, self.weights)
        return tuple(1 + share for share in extra)

    # ------------------------------------------------------------------
    # Convenience constructor.
    # ------------------------------------------------------------------
    @staticmethod
    def of(*, shards: int, m_total: int, w_total: int, u: int,
           flavor: str = "terminating",
           options: Optional[Mapping[str, Any]] = None,
           weights: Optional[Sequence[int]] = None,
           **knobs: Any) -> "FleetConfig":
        """Build a uniform fleet: ``shards`` twins of one template.

        ``u`` is the per-shard node bound; ``weights`` (default: all 1)
        skews the carve and the ring; remaining keywords pass through
        to :class:`FleetConfig` (``tranche=``, ``rebalance=``, ...).
        """
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if weights is None:
            weights = [1] * shards
        if len(weights) != shards:
            raise ConfigError(
                f"got {len(weights)} weights for {shards} shards")
        template = ControllerSpec(flavor, m=0, w=0, u=u,
                                  options=dict(options or {}))
        specs = tuple(
            ShardSpec(name=f"shard-{index}", template=template,
                      weight=weight)
            for index, weight in enumerate(weights))
        return FleetConfig(shards=specs, m_total=m_total, w_total=w_total,
                           **knobs)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable description (bench artifact headers)."""
        return {
            "shards": [spec.snapshot() for spec in self.shards],
            "m_total": self.m_total, "w_total": self.w_total,
            "tranche": self.tranche, "rebalance": self.rebalance,
            "placement": self.placement,
            "ring_replicas": self.ring_replicas,
            "max_in_flight": self.max_in_flight, "seed": self.seed,
        }
