"""Cross-shard permit rebalancing: the transfer ledger and policies.

When a shard's live session terminates with its tranche spent, the
router refills it from the fleet's remaining budget.  Every permit that
crosses a shard boundary is a :class:`BudgetTransfer` recorded in the
:class:`TransferLedger` — the fleet's double-entry book.  The algebra
is the same conservation contract :class:`~repro.core.iterated.IteratedController`
uses between stages (Observation 3.4: a new stage's budget is exactly
the old stage's leftover): budget is never minted or burned, only
moved, so per shard

    entitlement = allocation + inbound - outbound
                = banked grants + live budget + reserve

holds at all times and :func:`repro.metrics.invariants.audit_fleet`
re-derives both sides from this ledger.

Two donation sources exist, tagged on the transfer:

* ``"reserve"`` — unissued permits sitting in a sibling's reserve; the
  cheap path, no live engine is touched;
* ``"reclaim"`` — spare locked inside a sibling's *live* session.  The
  router gracefully drains that session (grants are banked, the
  leftover returns to the sibling's reserve — the same bank-and-reset
  move the iterated controller performs between stages) and lends from
  the recovered reserve.  This is what lets the fleet drive waste to
  zero: a reject wave starts only when no permit remains unspent
  anywhere.

Policies plan *how much comes from whom* (both deterministic):

* ``greedy`` — drain the richest donor first (ties by name), then the
  next; minimizes the number of transfers;
* ``proportional`` — spread the need across all donors proportionally
  to their spare (largest-remainder rounding); minimizes how lopsided
  donors end up.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = [
    "REBALANCERS",
    "BudgetTransfer",
    "TransferLedger",
    "plan_greedy",
    "plan_proportional",
]

#: A rebalance plan: ``(donor_name, take)`` pairs, Σ take <= need.
Plan = List[Tuple[str, int]]

#: Donor spares offered to a planner: ``(donor_name, available)``.
Donors = Sequence[Tuple[str, int]]


@dataclass(frozen=True)
class BudgetTransfer:
    """One ledger entry: ``permits`` moved ``donor`` → ``receiver``.

    ``kind`` is ``"reserve"`` (from the donor's unissued reserve) or
    ``"reclaim"`` (recovered by draining the donor's live session).
    ``serial`` is the ledger position — strictly increasing, so the
    auditor can prove every borrowed permit was debited exactly once.
    """

    serial: int
    donor: str
    receiver: str
    permits: int
    kind: str

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable description."""
        return {"serial": self.serial, "donor": self.donor,
                "receiver": self.receiver, "permits": self.permits,
                "kind": self.kind}


class TransferLedger:
    """Append-only record of every cross-shard budget move."""

    def __init__(self) -> None:
        self._entries: List[BudgetTransfer] = []

    def record(self, donor: str, receiver: str, permits: int,
               kind: str) -> BudgetTransfer:
        entry = BudgetTransfer(serial=len(self._entries), donor=donor,
                               receiver=receiver, permits=permits,
                               kind=kind)
        self._entries.append(entry)
        return entry

    @property
    def entries(self) -> Tuple[BudgetTransfer, ...]:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def outbound(self, name: str) -> int:
        """Total permits debited from shard ``name``."""
        return sum(e.permits for e in self._entries if e.donor == name)

    def inbound(self, name: str) -> int:
        """Total permits credited to shard ``name``."""
        return sum(e.permits for e in self._entries if e.receiver == name)


def plan_greedy(need: int, donors: Donors) -> Plan:
    """Drain the richest donor first; ties break by donor name."""
    plan: Plan = []
    for name, available in sorted(donors, key=lambda d: (-d[1], d[0])):
        if need <= 0:
            break
        if available <= 0:
            continue
        take = min(need, available)
        plan.append((name, take))
        need -= take
    return plan


def plan_proportional(need: int, donors: Donors) -> Plan:
    """Spread the need across donors proportionally to their spare.

    Largest-remainder rounding (like the config carve), each take
    capped at the donor's spare; any cap-induced shortfall is swept up
    greedily so the plan always moves ``min(need, Σ spare)`` permits.
    """
    live = [(name, available) for name, available in donors if available > 0]
    if not live or need <= 0:
        return []
    pool = sum(available for _, available in live)
    goal = min(need, pool)
    base = {name: goal * available // pool for name, available in live}
    remainder = goal - sum(base.values())
    order = sorted(live, key=lambda d: (-((goal * d[1]) % pool), d[0]))
    for name, available in order[:remainder]:
        base[name] += 1
    # Cap at spare and sweep any shortfall (rounding may overshoot a
    # small donor) from donors with headroom, richest first.
    takes = {name: min(amount, dict(live)[name])
             for name, amount in base.items()}
    short = goal - sum(takes.values())
    if short > 0:
        for name, available in sorted(live, key=lambda d: (-d[1], d[0])):
            if short <= 0:
                break
            headroom = available - takes[name]
            if headroom > 0:
                grab = min(short, headroom)
                takes[name] += grab
                short -= grab
    return [(name, take) for name, take in sorted(takes.items())
            if take > 0]


#: Policy registry keyed by :data:`repro.fleet.config.REBALANCE_POLICIES`.
REBALANCERS: Dict[str, Callable[[int, Donors], Plan]] = {
    "greedy": plan_greedy,
    "proportional": plan_proportional,
}
