"""The formal controller protocol and its introspection contract.

Every controller flavour in this repository — the four centralized
forms, the three distributed forms, and the trivial baseline — speaks
one interface, :class:`ControllerProtocol`:

* ``handle(request) -> Outcome`` — serve one request to completion
  (distributed engines run their scheduler to quiescence);
* ``handle_batch(requests) -> List[Outcome]`` — serve a batch, with
  the same per-request outcomes as sequential ``handle`` calls;
* ``unused_permits() -> int`` — permits not yet granted (root storage
  plus parked packages), the ``L`` the halving iterations re-budget
  with;
* ``detach() -> None`` — unregister from the tree and become inert;
  **idempotent** (a second call is a no-op);
* ``introspect() -> ControllerView`` — a structured, read-only view of
  the controller's auditable state.

``introspect()`` exists so that the invariant checker
(:mod:`repro.metrics.invariants`) can audit every flavour without
``hasattr`` probes on private attributes: a controller *declares* its
stores, its live budget split, and its nested controllers, and the
auditor walks that declaration.  The module is deliberately dependency-
free (``typing`` only), so :mod:`repro.metrics` can import it without
pulling in :mod:`repro.core`.
"""

from dataclasses import dataclass, field
from typing import (
    Any,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)


class StoreMapLike(Protocol):
    """What the auditor needs from a package-store map."""

    def items(self) -> Iterable[Tuple[Any, Any]]: ...

    def total_parked_permits(self) -> int: ...


@dataclass(frozen=True)
class BudgetSplit:
    """A wrapper's conservation ledger: permits already granted in
    finished stages/epochs plus the live stage's full budget must equal
    the wrapper's own ``M``."""

    prior_grants: int
    live_budget: int

    @property
    def total(self) -> int:
        return self.prior_grants + self.live_budget


@dataclass
class ControllerView:
    """Structured snapshot a controller returns from ``introspect()``.

    Only the fields a flavour actually has are filled in; the invariant
    checker keys its audits off which fields are present:

    * ``storage`` + ``stores`` -> centralized conservation & package
      shapes (``storage`` alone -> storage-only conservation, the
      trivial baseline);
    * ``boards`` (+ ``active_agents``, ``tree``) -> distributed
      conservation, package shapes, lock ordering, orphan detection;
    * ``budget`` -> wrapper conservation (prior grants + live budget
      == M);
    * ``children`` -> nested controllers to audit recursively, as
      ``(label, controller)`` pairs.

    ``waste_gate`` selects the liveness trigger: ``"rejection"`` checks
    the ``granted >= M - W`` bound once anything was rejected (the
    plain (M,W) contract); ``"termination"`` checks it once
    ``terminated`` is set (Observation 2.1's terminating analogue).
    """

    flavor: str
    m: int
    w: int
    granted: int
    rejected: int
    params: Optional[Any] = None          # ControllerParams when present
    storage: Optional[int] = None
    stores: Optional[StoreMapLike] = None
    boards: Optional[Any] = None          # WhiteboardMap when distributed
    tree: Optional[Any] = None
    active_agents: Optional[int] = None
    terminated: bool = False
    waste_gate: str = "rejection"
    budget: Optional[BudgetSplit] = None
    children: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)


@runtime_checkable
class SessionProtocol(Protocol):
    """The session-layer ingestion interface (PEP 544, structural).

    Implemented by :class:`repro.service.session.ControllerSession`:
    non-blocking ``submit`` returning a ticket, batched
    ``submit_many``, a streaming ``drain`` yielding settled outcome
    records in settlement order, and ``close``.  ``introspect()`` is
    shared with :class:`ControllerProtocol`, so the invariant auditor
    accepts sessions and controllers interchangeably.
    """

    def submit(self, request: Any,
               delay: Optional[float] = None) -> Any: ...

    def submit_many(self, requests: Iterable[Any],
                    stagger: Optional[float] = None) -> List[Any]: ...

    def drain(self) -> Iterator[Any]: ...

    def settle_all(self) -> List[Any]: ...

    def close(self) -> None: ...

    def introspect(self) -> ControllerView: ...


@dataclass
class AppView:
    """Structured snapshot an application returns from ``app_view()``.

    The application analogue of :class:`ControllerView`: the app
    *declares* the state its Section 5 guarantee is about, and
    :func:`repro.metrics.invariants.audit_app` checks what the
    declaration contains —

    * ``estimate`` + ``beta`` -> the Theorem 5.1 sandwich
      ``n/beta <= estimate <= beta * n``;
    * ``ids`` -> Theorem 5.2 id-uniqueness and the ``[1, 4n]`` range;
    * ``grants_banked`` / ``granted_total`` -> permit conservation
      across iteration rollovers (grants banked by closed iterations
      plus the live controller's tally equal the app's own grant
      count);
    * ``controller`` -> the live iteration's engine, audited
      recursively through :func:`~repro.metrics.invariants.audit_controller`.
    """

    name: str
    iterations: int
    size: int
    beta: Optional[float] = None
    estimate: Optional[int] = None
    ids: Optional[Tuple[int, ...]] = None
    grants_banked: int = 0
    granted_total: int = 0
    controller: Optional[Any] = None


@runtime_checkable
class AppProtocol(Protocol):
    """The application-layer session interface (PEP 544, structural).

    Implemented by :class:`repro.apps.base.AppSession` and every
    Section 5 application built by :func:`repro.apps.make_app`.  The
    surface mirrors :class:`SessionProtocol` — non-blocking
    ``submit`` returning a ticket, ``submit_many``, a streaming
    ``drain`` — with two app-level additions: the drain stream carries
    *iteration boundary events* (``IterationRecord``) interleaved with
    the settled outcome records, and ``iterations_run`` exposes the
    Observation 2.1 iteration lifecycle (requests still pending when an
    iteration's controller terminates are resubmitted to the next
    iteration's controller automatically).  ``app_view()`` returns the
    :class:`AppView` declaration the invariant auditor walks.
    """

    iterations_run: int

    def submit(self, request: Any) -> Any: ...

    def submit_many(self, requests: Iterable[Any]) -> List[Any]: ...

    def serve(self, request: Any) -> Any: ...

    def drain(self) -> Iterator[Any]: ...

    def settle_all(self) -> List[Any]: ...

    def introspect(self) -> ControllerView: ...

    def app_view(self) -> AppView: ...

    def close(self) -> None: ...


@runtime_checkable
class ControllerProtocol(Protocol):
    """The interface every controller flavour implements.

    Structural (PEP 544): any object with these methods conforms; the
    eight registry flavours (see :func:`repro.registry.make_controller`)
    are all checked against it in the test suite.
    """

    def handle(self, request: Any) -> Any: ...

    def handle_batch(self, requests: Iterable[Any]) -> List[Any]: ...

    def unused_permits(self) -> int: ...

    def detach(self) -> None: ...

    def introspect(self) -> ControllerView: ...
