"""repro — a reproduction of Korman & Kutten,
"Controller and estimator for dynamic networks" (PODC 2007 / I&C 2013).

The library provides:

* :mod:`repro.core` — centralized (M,W)-Controllers for dynamic trees
  (known-U, halving-iterated, unknown-U, terminating);
* :mod:`repro.distributed` — the distributed agent-based controller on a
  simulated asynchronous network;
* :mod:`repro.apps` — the Section 5 applications: size estimation, name
  assignment, heavy-child decomposition, dynamic ancestry labels,
  majority commitment;
* :mod:`repro.baselines` — the trivial controller and a reconstruction
  of the AAPS bin-hierarchy controller for growing trees;
* :mod:`repro.tree`, :mod:`repro.sim`, :mod:`repro.workloads`,
  :mod:`repro.metrics` — substrates and measurement utilities.

Quickstart::

    from repro import DynamicTree, CentralizedController, Request, RequestKind

    tree = DynamicTree()
    controller = CentralizedController(tree, m=100, w=20, u=256)
    outcome = controller.handle(Request(RequestKind.ADD_LEAF, tree.root))
    assert outcome.granted and tree.size == 2
"""

from repro.errors import (
    ControllerError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SimulationError,
    TopologyError,
)
from repro.tree import DynamicTree, TreeNode
from repro.core import (
    AdaptiveController,
    CentralizedController,
    ControllerParams,
    IteratedController,
    Outcome,
    OutcomeStatus,
    Request,
    RequestKind,
    TerminatingController,
)

__version__ = "1.1.0"

__all__ = [
    "ReproError",
    "TopologyError",
    "ControllerError",
    "InvariantViolation",
    "SimulationError",
    "ProtocolError",
    "DynamicTree",
    "TreeNode",
    "ControllerParams",
    "Request",
    "RequestKind",
    "Outcome",
    "OutcomeStatus",
    "CentralizedController",
    "IteratedController",
    "AdaptiveController",
    "TerminatingController",
    "__version__",
]
