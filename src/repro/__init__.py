"""repro — a reproduction of Korman & Kutten,
"Controller and estimator for dynamic networks" (PODC 2007 / I&C 2013).

The library provides:

* :mod:`repro.core` — centralized (M,W)-Controllers for dynamic trees
  (known-U, halving-iterated, unknown-U, terminating);
* :mod:`repro.distributed` — the distributed agent-based controller on a
  simulated asynchronous network;
* :mod:`repro.apps` — the Section 5 applications: size estimation, name
  assignment, heavy-child decomposition, dynamic ancestry labels,
  majority commitment;
* :mod:`repro.baselines` — the trivial controller and a reconstruction
  of the AAPS bin-hierarchy controller for growing trees;
* :mod:`repro.tree`, :mod:`repro.sim`, :mod:`repro.workloads`,
  :mod:`repro.metrics` — substrates and measurement utilities.

Quickstart::

    from repro import DynamicTree, Request, RequestKind, make_controller

    tree = DynamicTree()
    controller = make_controller("centralized", tree, m=100, w=20, u=256)
    outcome = controller.handle(Request(RequestKind.ADD_LEAF, tree.root))
    assert outcome.granted and tree.size == 2

Every flavour built by :func:`make_controller` implements
:class:`repro.protocol.ControllerProtocol` — ``handle``,
``handle_batch``, ``unused_permits``, ``detach`` (idempotent), and
``introspect()`` for the protocol-based invariant auditor.
"""

from repro.errors import (
    ControllerError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SimulationError,
    TopologyError,
)
from repro.protocol import BudgetSplit, ControllerProtocol, ControllerView
from repro.tree import DynamicTree, TreeNode
from repro.core import (
    AdaptiveController,
    CentralizedController,
    ControllerParams,
    IteratedController,
    KernelTrace,
    Outcome,
    OutcomeStatus,
    PermitLedger,
    Request,
    RequestKind,
    TerminatingController,
)
from repro.registry import (
    CONTROLLER_FLAVORS,
    controller_flavors,
    make_controller,
)

__version__ = "1.2.0"

__all__ = [
    "ReproError",
    "TopologyError",
    "ControllerError",
    "InvariantViolation",
    "SimulationError",
    "ProtocolError",
    "DynamicTree",
    "TreeNode",
    "ControllerParams",
    "Request",
    "RequestKind",
    "Outcome",
    "OutcomeStatus",
    "CentralizedController",
    "IteratedController",
    "AdaptiveController",
    "TerminatingController",
    "ControllerProtocol",
    "ControllerView",
    "BudgetSplit",
    "KernelTrace",
    "PermitLedger",
    "CONTROLLER_FLAVORS",
    "controller_flavors",
    "make_controller",
    "__version__",
]
