"""repro — a reproduction of Korman & Kutten,
"Controller and estimator for dynamic networks" (PODC 2007 / I&C 2013).

The library provides:

* :mod:`repro.core` — centralized (M,W)-Controllers for dynamic trees
  (known-U, halving-iterated, unknown-U, terminating);
* :mod:`repro.distributed` — the distributed agent-based controller on a
  simulated asynchronous network;
* :mod:`repro.apps` — the Section 5 applications: size estimation, name
  assignment, heavy-child decomposition, dynamic ancestry labels,
  majority commitment;
* :mod:`repro.baselines` — the trivial controller and a reconstruction
  of the AAPS bin-hierarchy controller for growing trees;
* :mod:`repro.tree`, :mod:`repro.sim`, :mod:`repro.workloads`,
  :mod:`repro.metrics` — substrates and measurement utilities.

Quickstart::

    from repro import (
        ControllerSession, Request, RequestKind, SessionConfig,
    )

    session = ControllerSession(
        SessionConfig.of("centralized", m=100, w=20, u=256))
    ticket = session.submit(
        Request(RequestKind.ADD_LEAF, session.tree.root))
    record = ticket.result()
    assert record.granted and session.tree.size == 2

The session layer (:mod:`repro.service`) is the supported way to drive
an engine: one :class:`SessionConfig` describes the whole wiring
(flavour, (M, W, U), schedule policy, delay model, faults, admission
window), and the :class:`ControllerSession` serves requests through
typed envelopes — non-blocking ``submit`` -> ``Ticket``, batched
``submit_many``, streaming ``drain()`` in settlement order, with
saturation reported as an explicit ``BACKPRESSURE`` verdict distinct
from the paper's permit reject.

Above the session sits :mod:`repro.gateway`: a concurrent ingestion
front door that multiplexes many client streams into batched session
feeds through a bounded leveling queue, a token-bucket throttle
(verdict ``SHED``), and a per-session circuit breaker, with health
probes and a machine-audited settle-exactly-once ledger
(:func:`repro.metrics.invariants.audit_gateway`).  ``Gateway`` serves
threads, ``AsyncGateway`` serves asyncio.

For scale-out, :mod:`repro.fleet` runs N sessions over a forest behind
a :class:`FleetRouter` that speaks the same session surface: a global
``(M_total, W_total)`` contract is carved into per-shard budgets by
:class:`FleetConfig`, rebalanced across shards through an explicit
:class:`BudgetTransfer` ledger, and machine-checked end to end by
:func:`repro.metrics.invariants.audit_fleet` (clients are only rejected
once the *global* budget is spent).

Below the session sits the controller registry: every flavour built by
:func:`make_controller` implements
:class:`repro.protocol.ControllerProtocol` — ``handle``,
``handle_batch``, ``unused_permits``, ``detach`` (idempotent), and
``introspect()`` for the protocol-based invariant auditor.  Direct
``handle`` wiring remains supported for library embedders; scenario
driving goes through :func:`repro.service.drive_scenario` (the legacy
``run_scenario`` callable driver was removed in 2.0, see
``docs/architecture.md`` §7).
"""

from repro.errors import (
    ConfigError,
    ControllerError,
    GatewayError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SimulationError,
    TopologyError,
)
from repro.gateway import (
    AsyncGateway,
    BreakerState,
    Gateway,
    GatewayConfig,
    GatewayStats,
    GatewayTicket,
    HealthReport,
)
from repro.protocol import (
    AppProtocol,
    AppView,
    BudgetSplit,
    ControllerProtocol,
    ControllerView,
    SessionProtocol,
)
from repro.tree import DynamicTree, TreeNode
from repro.core import (
    AdaptiveController,
    CentralizedController,
    ControllerParams,
    IteratedController,
    KernelTrace,
    Outcome,
    OutcomeStatus,
    PermitLedger,
    Request,
    RequestKind,
    TerminatingController,
)
from repro.registry import (
    CONTROLLER_FLAVORS,
    controller_flavors,
    make_controller,
)
from repro.service import (
    APP_NAMES,
    AppSpec,
    ControllerSession,
    ControllerSpec,
    IterationRecord,
    OutcomeRecord,
    RequestEnvelope,
    SessionConfig,
    SessionVerdict,
    Ticket,
)
from repro.apps import AppSession, make_app
from repro.fleet import (
    BudgetTransfer,
    FleetConfig,
    FleetRouter,
    ShardSpec,
)

__version__ = "1.5.0"

# The curated public surface, grouped the way README's public-API table
# documents it (tests/test_public_api.py asserts the two stay in sync).
__all__ = [
    # The session layer — the supported way to drive an engine.
    "ControllerSession",
    "SessionConfig",
    "ControllerSpec",
    "RequestEnvelope",
    "OutcomeRecord",
    "SessionVerdict",
    "Ticket",
    # The ingestion gateway — the concurrent front door.
    "Gateway",
    "AsyncGateway",
    "GatewayConfig",
    "GatewayStats",
    "GatewayTicket",
    "BreakerState",
    "HealthReport",
    # The fleet layer — N sessions over a forest behind one router.
    "FleetRouter",
    "FleetConfig",
    "ShardSpec",
    "BudgetTransfer",
    # The application layer — the Section 5 apps behind one spec.
    "AppSpec",
    "AppSession",
    "make_app",
    "APP_NAMES",
    "AppProtocol",
    "AppView",
    "IterationRecord",
    # Registry + protocol types.
    "make_controller",
    "controller_flavors",
    "CONTROLLER_FLAVORS",
    "ControllerProtocol",
    "SessionProtocol",
    "ControllerView",
    "BudgetSplit",
    # Requests and outcomes.
    "Request",
    "RequestKind",
    "Outcome",
    "OutcomeStatus",
    # Substrate and kernel.
    "DynamicTree",
    "TreeNode",
    "ControllerParams",
    "KernelTrace",
    "PermitLedger",
    # Controller classes (importable directly for embedders).
    "CentralizedController",
    "IteratedController",
    "AdaptiveController",
    "TerminatingController",
    # Errors.
    "ReproError",
    "ConfigError",
    "TopologyError",
    "ControllerError",
    "InvariantViolation",
    "SimulationError",
    "ProtocolError",
    "GatewayError",
    "__version__",
]
