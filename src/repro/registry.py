"""The public controller registry: one factory for every flavour.

``make_controller(flavor, tree, m=..., w=..., u=...)`` builds any of the
eight controller flavours behind one call, so the bench CLI, the
scenario grid, examples, and tests share a single construction path
instead of private per-module factories.  Every product implements
:class:`repro.protocol.ControllerProtocol` (``handle`` /
``handle_batch`` / ``unused_permits`` / ``detach`` / ``introspect``).

Registered flavours:

========================  ====================================================
``centralized``           known-U reference engine (Section 3.1)
``iterated``              halving iterations, Observation 3.4 (incl. W = 0)
``adaptive``              unknown-U epochs, Theorem 3.5 (``u`` ignored)
``terminating``           Observation 2.1 terminating variant
``distributed``           agent-based engine, Sections 4.3-4.4
``distributed_iterated``  distributed halving stages, Theorem 4.7
``distributed_adaptive``  distributed unknown-U epochs, Appendix A
                          (``u`` ignored)
``trivial``               the Section 1 root-round-trip baseline
                          (``w``/``u`` ignored; exact (M, 0))
========================  ====================================================
"""

from typing import Any, Callable, Dict, Tuple

from repro.errors import ConfigError
from repro.baselines.trivial import TrivialController
from repro.core.adaptive import AdaptiveController
from repro.core.centralized import CentralizedController
from repro.core.iterated import IteratedController
from repro.core.terminating import TerminatingController
from repro.distributed.adaptive import DistributedAdaptiveController
from repro.distributed.controller import DistributedController
from repro.distributed.iterated import DistributedIteratedController
from repro.protocol import ControllerProtocol
from repro.tree.dynamic_tree import DynamicTree

_Factory = Callable[..., ControllerProtocol]

_NEEDS_U = ("centralized", "iterated", "terminating", "distributed",
            "distributed_iterated")

CONTROLLER_REGISTRY: Dict[str, _Factory] = {
    "centralized": CentralizedController,
    "iterated": IteratedController,
    "adaptive": AdaptiveController,
    "terminating": TerminatingController,
    "distributed": DistributedController,
    "distributed_iterated": DistributedIteratedController,
    "distributed_adaptive": DistributedAdaptiveController,
    "trivial": TrivialController,
}

CONTROLLER_FLAVORS: Tuple[str, ...] = tuple(CONTROLLER_REGISTRY)


def controller_flavors() -> Tuple[str, ...]:
    """The registered flavour names, in registry order."""
    return CONTROLLER_FLAVORS


def resolve_flavor(flavor: str) -> str:
    """Normalize a flavour name (strip, hyphens to underscores) and
    check it against the registry.

    The single definition of what counts as a valid flavour spelling —
    shared by :func:`make_controller` and the session layer's
    ``ControllerSpec``.  Raises :class:`ConfigError` naming the
    registry for anything unknown.
    """
    key = flavor.strip().replace("-", "_")
    if key not in CONTROLLER_REGISTRY:
        raise ConfigError(
            f"unknown controller flavor {flavor!r}; registered: "
            f"{', '.join(CONTROLLER_FLAVORS)}")
    return key


def make_controller(flavor: str, tree: DynamicTree, *, m: int, w: int = 0,
                    u: int = 0, **kwargs: Any) -> ControllerProtocol:
    """Build a controller of the requested ``flavor`` on ``tree``.

    ``m``/``w`` are the (M, W) contract; ``u`` is the known node bound
    (required for every known-U flavour, ignored by the adaptive ones,
    which derive it per epoch).  Extra keyword arguments pass straight
    through to the flavour's constructor (``counters=``, ``scheduler=``,
    ``kernel_trace=``, ...).

    Raises :class:`repro.errors.ConfigError` for an unknown flavour
    (listing the registry) or a missing ``u`` where one is required —
    one exception type for every misconfiguration, whatever the flavour.
    """
    key = resolve_flavor(flavor)
    factory = CONTROLLER_REGISTRY[key]
    if key in _NEEDS_U and u <= 0:
        raise ConfigError(
            f"flavor {key!r} needs the node bound u (got {u!r}); only the "
            "adaptive flavours run without one "
            f"(registered: {', '.join(CONTROLLER_FLAVORS)})")
    if key == "trivial":
        return factory(tree, m=m, **kwargs)
    if key in ("adaptive", "distributed_adaptive"):
        return factory(tree, m=m, w=w, **kwargs)
    return factory(tree, m=m, w=w, u=u, **kwargs)
