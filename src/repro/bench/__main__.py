"""Command-line entry point: ``python -m repro.bench``.

Examples::

    python -m repro.bench list
    python -m repro.bench ancestry --out BENCH_request_engine.json
    python -m repro.bench move_complexity --sizes 200,400,800
    python -m repro.bench batch --steps 2000 --batch-size 64
    python -m repro.bench scenario --topology star --controller terminating
    python -m repro.bench distributed_batch --sizes 100,200
"""

import argparse
import inspect
import json
import sys

from repro.bench.runner import SCENARIOS


def _int_list(text: str):
    return [int(part) for part in text.split(",") if part]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Experiment runner for the (M,W)-Controller "
                    "reproduction (JSON output).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available scenarios")

    common_out = dict(help="write the JSON document to this path as well")

    p = sub.add_parser("ancestry",
                       help="deep-path engine vs legacy wall clock")
    p.add_argument("--sizes", type=_int_list, default=None,
                   help="comma-separated path lengths (default: "
                        "200,400,800,1600,3200)")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--steps-per-node", type=int, default=2,
                   dest="steps_per_node")
    p.add_argument("--out", **common_out)

    p = sub.add_parser("move_complexity",
                       help="Observation 3.4 sweep (bench_e02 shape)")
    p.add_argument("--sizes", type=_int_list, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", **common_out)

    p = sub.add_parser("batch",
                       help="handle_batch equivalence + throughput")
    p.add_argument("--n", type=int, default=600)
    p.add_argument("--steps", type=int, default=2000)
    p.add_argument("--batch-size", type=int, default=64, dest="batch_size")
    p.add_argument("--topology", default="random",
                   choices=["random", "path", "star", "caterpillar"])
    p.add_argument("--mix", default="default",
                   choices=["default", "grow", "plain"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", **common_out)

    p = sub.add_parser("scenario", help="generic knob-driven run")
    p.add_argument("--topology", default="random",
                   choices=["random", "path", "star", "caterpillar"])
    p.add_argument("--controller", default="iterated",
                   choices=["centralized", "iterated", "adaptive",
                            "terminating"])
    p.add_argument("--mix", default="default",
                   choices=["default", "grow", "plain"])
    p.add_argument("--n", type=int, default=500)
    p.add_argument("--steps", type=int, default=1000)
    p.add_argument("--batch-size", type=int, default=1, dest="batch_size")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-skip", action="store_false", dest="skip_ancestry",
                   help="disable the request engine (legacy data paths)")
    p.add_argument("--out", **common_out)

    p = sub.add_parser("distributed_batch",
                       help="concurrent batch through the distributed "
                            "engine")
    p.add_argument("--sizes", type=_int_list, default=None)
    p.add_argument("--requests-per-node", type=float, default=0.5,
                   dest="requests_per_node")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", **common_out)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, fn in SCENARIOS.items():
            summary = (inspect.getdoc(fn) or "").splitlines()[0]
            print(f"{name:20s} {summary}")
        return 0
    runner = SCENARIOS[args.command]
    accepted = set(inspect.signature(runner).parameters)
    kwargs = {k: v for k, v in vars(args).items()
              if k in accepted and v is not None}
    result = runner(**kwargs)
    document = json.dumps(result, indent=2)
    print(document)
    if getattr(args, "out", None):
        with open(args.out, "w") as handle:
            handle.write(document + "\n")
        print(f"# wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
