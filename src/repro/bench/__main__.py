"""Command-line entry point: ``python -m repro.bench``.

Examples::

    python -m repro.bench list
    python -m repro.bench ancestry --out BENCH_request_engine.json
    python -m repro.bench move_complexity --sizes 200,400,800
    python -m repro.bench batch --steps 2000 --batch-size 64
    python -m repro.bench scenario --topology star --controller terminating
    python -m repro.bench scenario --name all --policy fifo,random,adversary \\
        --seeds 0,1,2,3,4 --faults "stall=0.05,storms=3" --out grid.json
    python -m repro.bench distributed_batch --sizes 100,200
    python -m repro.bench session --out BENCH_session.json
    python -m repro.bench apps --out BENCH_apps.json
    python -m repro.bench apps --apps name_assignment --policies adversary
    python -m repro.bench fleet --out BENCH_fleet.json
    python -m repro.bench profile --scenario deep_burst --arms fast
    python -m repro.bench memory --sizes 100,400 --fast-path
"""

import argparse
import inspect
import json
import sys

from repro.bench.runner import SCENARIOS, SESSION_BENCH_FLAVORS
from repro.errors import InvariantViolation
from repro.registry import CONTROLLER_FLAVORS
from repro.sim.policies import SCHEDULE_POLICIES


def _int_list(text: str):
    return [int(part) for part in text.split(",") if part]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Experiment runner for the (M,W)-Controller "
                    "reproduction (JSON output).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available scenarios")

    common_out = dict(help="write the JSON document to this path as well")

    p = sub.add_parser("ancestry",
                       help="deep-path engine vs legacy wall clock")
    p.add_argument("--sizes", type=_int_list, default=None,
                   help="comma-separated path lengths (default: "
                        "200,400,800,1600,3200)")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--steps-per-node", type=int, default=2,
                   dest="steps_per_node")
    p.add_argument("--out", **common_out)

    p = sub.add_parser("move_complexity",
                       help="Observation 3.4 sweep (bench_e02 shape)")
    p.add_argument("--sizes", type=_int_list, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", **common_out)

    p = sub.add_parser("batch",
                       help="handle_batch equivalence + throughput")
    p.add_argument("--n", type=int, default=600)
    p.add_argument("--steps", type=int, default=2000)
    p.add_argument("--batch-size", type=int, default=64, dest="batch_size")
    p.add_argument("--topology", default="random",
                   choices=["random", "path", "star", "caterpillar"])
    p.add_argument("--mix", default="default",
                   choices=["default", "grow", "plain"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", **common_out)

    p = sub.add_parser(
        "scenario",
        help="knob-driven run, or (with --name) the adversarial "
             "catalogue grid with invariant auditing")
    p.add_argument("--name", default=None,
                   help="catalogue scenario name(s), comma-separated, or "
                        "'all' — switches to grid mode (scenario x policy "
                        "x seed, invariant-checked)")
    p.add_argument("--policy", default="fifo,random,adversary",
                   help="grid mode: schedule policies, comma-separated "
                        "(fifo, random, lifo, adversary)")
    p.add_argument("--faults", default=None,
                   help="grid mode: fault plan, e.g. "
                        "'stall=0.05,pauses=2,storms=3'")
    p.add_argument("--seeds", default="0,1,2,3,4",
                   help="grid mode: seeds, comma-separated")
    p.add_argument("--engines", default="iterated,distributed",
                   help="grid mode: engines, comma-separated from the "
                        f"controller registry ({', '.join(CONTROLLER_FLAVORS)})"
                        ", or 'all' for every registered flavor; names are "
                        "validated before any cell runs")
    p.add_argument("--delays", default="uniform",
                   help="grid mode: delay model (unit, uniform, heavytail, "
                        "jitter, burst)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="grid mode: scale the catalogue specs (CI smoke "
                        "uses e.g. 0.2)")
    p.add_argument("--fast-path", action="store_true", dest="fast_path",
                   help="grid mode: re-run every distributed FIFO cell "
                        "on the fast-path engine and assert "
                        "trace-identical tallies/cost/clock")
    p.add_argument("--topology", default="random",
                   choices=["random", "path", "star", "caterpillar"])
    p.add_argument("--controller", default="iterated",
                   choices=list(CONTROLLER_FLAVORS))
    p.add_argument("--mix", default="default",
                   choices=["default", "grow", "plain"])
    p.add_argument("--n", type=int, default=500)
    p.add_argument("--steps", type=int, default=1000)
    p.add_argument("--batch-size", type=int, default=1, dest="batch_size")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-skip", action="store_false", dest="skip_ancestry",
                   help="disable the request engine (legacy data paths)")
    p.add_argument("--out", **common_out)

    p = sub.add_parser("distributed_batch",
                       help="concurrent batch through the distributed "
                            "engine")
    p.add_argument("--sizes", type=_int_list, default=None)
    p.add_argument("--requests-per-node", type=float, default=0.5,
                   dest="requests_per_node")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", **common_out)

    p = sub.add_parser("session",
                       help="session-layer overhead vs direct "
                            "handle_batch (equivalence-checked; "
                            "target <= 5%% amortized)")
    p.add_argument("--n", type=int, default=600)
    p.add_argument("--steps", type=int, default=2000)
    p.add_argument("--batch-size", type=int, default=64, dest="batch_size")
    p.add_argument("--topology", default="random",
                   choices=["random", "path", "star", "caterpillar"])
    p.add_argument("--mix", default="default",
                   choices=["default", "grow", "plain"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--flavor", default="iterated",
                   choices=list(SESSION_BENCH_FLAVORS),
                   help="synchronous flavours only: the bench replays "
                        "its recorded stream lazily, which the "
                        "distributed engines cannot consume")
    p.add_argument("--out", **common_out)

    p = sub.add_parser("apps",
                       help="Section 5 application layer: serve vs "
                            "serve_stream overhead (<= 5%% target), "
                            "msgs/change polylog fits, event-driven "
                            "policy x fault grid (invariant-audited)")
    p.add_argument("--apps", default="all",
                   help="app name(s), comma-separated, or 'all'")
    p.add_argument("--sizes", type=_int_list, default=None,
                   help="complexity sweep sizes (default: 100,200,400)")
    p.add_argument("--steps-per-node", type=int, default=3,
                   dest="steps_per_node")
    p.add_argument("--overhead-n", type=int, default=200,
                   dest="overhead_n")
    p.add_argument("--overhead-steps", type=int, default=600,
                   dest="overhead_steps")
    p.add_argument("--batch-size", type=int, default=64, dest="batch_size")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--policies", default="fifo,random,adversary",
                   help="grid: schedule policies for the event-driven "
                        "cells")
    p.add_argument("--faults", default="stall=0.05",
                   help="grid: fault plan for the faulted cells "
                        "(e.g. 'stall=0.05')")
    p.add_argument("--grid-n", type=int, default=40, dest="grid_n")
    p.add_argument("--grid-steps", type=int, default=120,
                   dest="grid_steps")
    p.add_argument("--out", **common_out)

    p = sub.add_parser("gateway",
                       help="concurrent ingestion through the gateway "
                            "under churn-storm faults: sustained req/s, "
                            "p50/p99 latency, breaker trip/recover "
                            "cycle (invariant-audited)")
    p.add_argument("--scenario", default="mixed_flood",
                   help="catalogue scenario to stream (default: "
                        "mixed_flood)")
    p.add_argument("--seeds", default="0,1,2")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent client threads per cell")
    p.add_argument("--wave", type=int, default=10,
                   help="requests per client submission burst")
    p.add_argument("--batch-size", type=int, default=8, dest="batch_size")
    p.add_argument("--queue-capacity", type=int, default=256,
                   dest="queue_capacity")
    p.add_argument("--policy", default="fifo",
                   choices=list(SCHEDULE_POLICIES))
    p.add_argument("--delays", default="burst")
    p.add_argument("--faults", default="stall=0.15,storms=3,storm_size=6",
                   help="fault plan spec for the churn storm")
    p.add_argument("--breaker-latency", type=float, default=300.0,
                   dest="breaker_latency",
                   help="simulated-clock latency that counts as a "
                        "breaker failure")
    p.add_argument("--breaker-failures", type=int, default=2,
                   dest="breaker_failures")
    p.add_argument("--breaker-cooldown", type=int, default=2,
                   dest="breaker_cooldown")
    p.add_argument("--breaker-probes", type=int, default=1,
                   dest="breaker_probes")
    p.add_argument("--scale", type=float, default=0.5,
                   help="catalogue scenario scale factor")
    p.add_argument("--stagger", type=float, default=0.25)
    p.add_argument("--out", **common_out)

    p = sub.add_parser("fleet",
                       help="sharded controller fleet: simulated "
                            "sustained req/s + scaling efficiency at "
                            "each shard count, 1-shard bit-for-bit "
                            "equivalence vs the plain session, forced "
                            "cross-shard transfers + the global reject "
                            "wave (invariant-audited)")
    p.add_argument("--shards", default="1,2,4,8",
                   help="comma-separated shard counts for the scaling "
                        "cells")
    p.add_argument("--steps", type=int, default=2000,
                   help="requests per scaling cell")
    p.add_argument("--clients", type=int, default=256,
                   help="distinct sticky client origins per cell")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--scale", type=float, default=0.25,
                   help="catalogue scale for the equivalence cell")
    p.add_argument("--out", **common_out)

    p = sub.add_parser("kernel",
                       help="distributed filler lookup: kernel level "
                            "index vs legacy board scan "
                            "(equivalence-checked)")
    p.add_argument("--scenario", default="deep_burst",
                   help="catalogue scenario to replay (default: "
                        "deep_burst)")
    p.add_argument("--seeds", default="0,1")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--stagger", type=float, default=0.25)
    p.add_argument("--out", **common_out)

    p = sub.add_parser("profile",
                       help="cProfile the distributed replay per engine "
                            "arm: hotspot tables + the scheduler-vs-"
                            "protocol self-time split")
    p.add_argument("--scenario", default="deep_burst",
                   help="catalogue scenario to profile (default: "
                        "deep_burst)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--stagger", type=float, default=0.25)
    p.add_argument("--top", type=int, default=12,
                   help="hotspot rows per table")
    p.add_argument("--arms", default="reference,fast",
                   help="comma-separated engine arms (reference, fast)")
    p.add_argument("--out", **common_out)

    p = sub.add_parser("memory",
                       help="Claim 4.8 per-node memory audit under a "
                            "concurrent storm (raises if any node "
                            "exceeds the bound)")
    p.add_argument("--sizes", type=_int_list, default=None,
                   help="tree sizes (default: 100,400,1600)")
    p.add_argument("--stagger", type=float, default=0.25)
    p.add_argument("--fast-path", action="store_true", dest="fast_path",
                   help="audit the fast-path engine instead of the "
                        "reference scheduler")
    p.add_argument("--out", **common_out)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, fn in SCENARIOS.items():
            summary = (inspect.getdoc(fn) or "").splitlines()[0]
            print(f"{name:20s} {summary}")
        return 0
    command = args.command
    if command == "scenario" and getattr(args, "name", None):
        command = "scenario_grid"
    runner = SCENARIOS[command]
    accepted = set(inspect.signature(runner).parameters)
    kwargs = {k: v for k, v in vars(args).items()
              if k in accepted and v is not None}
    failure = None
    try:
        result = runner(**kwargs)
    except InvariantViolation as error:
        # The grid runner attaches the full report to the failure so the
        # violation evidence survives (and CI can upload it).
        result = getattr(error, "document", None)
        if result is None:
            raise
        failure = error
    document = json.dumps(result, indent=2)
    print(document)
    if getattr(args, "out", None):
        with open(args.out, "w") as handle:
            handle.write(document + "\n")
        print(f"# wrote {args.out}", file=sys.stderr)
    if failure is not None:
        raise failure
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
