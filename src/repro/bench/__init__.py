"""``repro.bench`` — the experiment-runner CLI of the request engine.

One-liner reproduction of the perf trajectory::

    python -m repro.bench ancestry --sizes 200,400,800,1600,3200 --out BENCH_ancestry.json
    python -m repro.bench move_complexity
    python -m repro.bench batch --steps 2000 --batch-size 64
    python -m repro.bench scenario --topology path --controller iterated --steps 1000
    python -m repro.bench distributed_batch --sizes 200
    python -m repro.bench kernel --out BENCH_kernel.json
    python -m repro.bench profile --arms reference,fast
    python -m repro.bench memory --fast-path
    python -m repro.bench session --out BENCH_session.json
    python -m repro.bench apps --out BENCH_apps.json
    python -m repro.bench gateway --out BENCH_gateway.json
    python -m repro.bench fleet --out BENCH_fleet.json

Every scenario returns (and prints) a JSON document: the parameters it
ran with, one row per configuration, and the derived headline numbers,
so ``BENCH_*.json`` files checked into the repo are reproducible from
the command line alone.  See :mod:`repro.bench.runner` for the scenario
implementations and ``docs/architecture.md`` for how the engine under
measurement works.
"""

from repro.bench.runner import (
    SCENARIOS,
    run_ancestry,
    run_apps,
    run_batch,
    run_distributed_batch,
    run_fleet,
    run_gateway,
    run_kernel,
    run_memory,
    run_move_complexity,
    run_profile,
    run_scenario_bench,
    run_session_overhead,
)

__all__ = [
    "SCENARIOS",
    "run_ancestry",
    "run_apps",
    "run_batch",
    "run_distributed_batch",
    "run_fleet",
    "run_gateway",
    "run_kernel",
    "run_memory",
    "run_move_complexity",
    "run_profile",
    "run_scenario_bench",
    "run_session_overhead",
]
