"""Benchmark scenario implementations for ``python -m repro.bench``.

Each ``run_*`` function is pure measurement: it builds its workload,
runs it, and returns a JSON-serializable dict.  Wall-clock numbers are
the **minimum over ``repeats`` runs** (the standard way to suppress
scheduler noise); correctness-sensitive quantities (move counters,
outcome tallies) are additionally cross-checked between the engine and
legacy configurations, so a benchmark run doubles as an equivalence
check.
"""

import random
import time
from typing import Dict, List, Optional

from repro.core.adaptive import AdaptiveController
from repro.core.centralized import CentralizedController
from repro.core.iterated import IteratedController
from repro.core.requests import Request, RequestKind
from repro.core.terminating import TerminatingController
from repro.distributed.controller import DistributedController
from repro.metrics.fitting import log_log_slope, observation_3_4_bound
from repro.workloads.scenarios import (
    NodePicker,
    TreeMirror,
    build_caterpillar,
    build_path,
    build_random_tree,
    build_star,
    default_mix,
    grow_only_mix,
    random_request,
    request_spec,
    run_scenario,
)

DEFAULT_SIZES = [200, 400, 800, 1600, 3200]  # the bench_e02 sweep

_TOPOLOGIES = {
    "path": build_path,
    "random": build_random_tree,
    "star": build_star,
    "caterpillar": build_caterpillar,
}

_MIXES = {
    "default": default_mix,
    "grow": grow_only_mix,
    "plain": lambda: {RequestKind.PLAIN: 1.0},
}


def _build(topology: str, n: int, seed: int, skip_ancestry: bool):
    builder = _TOPOLOGIES[topology]
    if builder is build_random_tree:
        tree = builder(n, seed=seed)
    else:
        tree = builder(n)
    tree.skip_ancestry = skip_ancestry
    return tree


def _controller(kind: str, tree, m: int, w: int, u: int):
    if kind == "centralized":
        controller = CentralizedController(tree, m=m, w=w, u=u)
        return controller, controller.handle, controller.handle_batch
    if kind == "iterated":
        controller = IteratedController(tree, m=m, w=w, u=u)
        return controller, controller.handle, controller.handle_batch
    if kind == "adaptive":
        controller = AdaptiveController(tree, m=m, w=w)
        return controller, controller.handle, controller.handle_batch
    if kind == "terminating":
        controller = TerminatingController(tree, m=m, w=w, u=u)
        return controller, controller.submit, controller.handle_batch
    raise ValueError(f"unknown controller kind {kind!r}")


# ----------------------------------------------------------------------
# ancestry — the acceptance benchmark of the request engine.
# ----------------------------------------------------------------------
def run_ancestry(sizes: Optional[List[int]] = None, repeats: int = 3,
                 seed: int = 0, steps_per_node: int = 2) -> Dict:
    """Deep-path request serving: engine vs legacy wall clock.

    A path of ``n`` nodes receives ``n * steps_per_node`` PLAIN requests
    at uniformly random nodes (a pre-generated stream — PLAIN requests
    leave the topology untouched, so the identical stream is replayed
    in both modes and only the controller is timed):

    * **legacy** — ``skip_ancestry=False``: the seed's data paths
      (naive parent-pointer walks, dict store probes, full filler
      climbs), driven by sequential ``handle``;
    * **engine** — ``skip_ancestry=True``: skip-pointer jump tables,
      slot-pinned stores, the indexed filler scan, driven by
      ``handle_batch``.

    Move counters and grant tallies are asserted identical between the
    two modes; the headline is the wall-clock ratio on the deepest
    path.
    """
    sizes = sizes or DEFAULT_SIZES
    rows = []
    for n in sizes:
        steps = n * steps_per_node
        timings = {}
        checks = {}
        for label, skip in (("legacy", False), ("engine", True)):
            best = None
            for _ in range(max(repeats, 1)):
                tree = _build("path", n, seed, skip)
                nodes = list(tree.nodes())
                rng = random.Random(seed + n)
                requests = [
                    Request(RequestKind.PLAIN,
                            nodes[rng.randrange(len(nodes))])
                    for _ in range(steps)
                ]
                controller = IteratedController(
                    tree, m=4 * n, w=n // 4, u=2 * n)
                start = time.perf_counter()
                if skip:
                    outcomes = controller.handle_batch(requests)
                else:
                    outcomes = [controller.handle(r) for r in requests]
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
                checks[label] = (
                    controller.counters.total,
                    sum(1 for o in outcomes if o.granted),
                )
            timings[label] = best
        if checks["legacy"] != checks["engine"]:
            raise AssertionError(
                f"engine diverged from legacy at n={n}: "
                f"{checks['engine']} != {checks['legacy']}"
            )
        rows.append({
            "n": n,
            "steps": steps,
            "legacy_ms": round(timings["legacy"] * 1000, 3),
            "engine_ms": round(timings["engine"] * 1000, 3),
            "speedup": round(timings["legacy"] / timings["engine"], 3),
            "moves": checks["engine"][0],
            "granted": checks["engine"][1],
        })
    return {
        "scenario": "ancestry",
        "params": {"sizes": sizes, "repeats": repeats, "seed": seed,
                   "steps_per_node": steps_per_node},
        "rows": rows,
        "deep_path_speedup": rows[-1]["speedup"],
        "max_speedup": max(r["speedup"] for r in rows),
    }


# ----------------------------------------------------------------------
# move_complexity — the bench_e02 sweep as a CLI one-liner.
# ----------------------------------------------------------------------
def run_move_complexity(sizes: Optional[List[int]] = None,
                        seed: int = 0) -> Dict:
    """Observation 3.4 on deep paths: moves vs ``O(U log^2 U log(M/W))``.

    Mirrors ``benchmarks/bench_e02_move_complexity.py``: sweep the path
    length under the default churn mix and report measured/bound ratios
    plus the log-log slope (near-linear growth expected).
    """
    sizes = sizes or DEFAULT_SIZES
    rows = []
    measured = []
    for n in sizes:
        tree = build_path(n)
        u, m, w = 2 * n, 4 * n, n // 4
        controller = IteratedController(tree, m=m, w=w, u=u)
        start = time.perf_counter()
        result = run_scenario(tree, controller.handle, steps=n, seed=n)
        elapsed = time.perf_counter() - start
        bound = observation_3_4_bound(u, m, w)
        moves = controller.counters.total
        measured.append(moves)
        rows.append({
            "n": n, "u": u, "m": m, "w": w,
            "moves": moves,
            "bound": int(bound),
            "ratio": round(moves / bound, 4),
            "granted": result.granted,
            "rejected": result.rejected,
            "wall_ms": round(elapsed * 1000, 3),
        })
    return {
        "scenario": "move_complexity",
        "params": {"sizes": sizes, "seed": seed},
        "rows": rows,
        "log_log_slope": round(log_log_slope(sizes, measured), 4),
        "max_ratio": max(r["ratio"] for r in rows),
    }


# ----------------------------------------------------------------------
# batch — handle_batch equivalence + throughput on a twin tree.
# ----------------------------------------------------------------------
def run_batch(n: int = 600, steps: int = 2000, batch_size: int = 64,
              topology: str = "random", mix: str = "default",
              seed: int = 0) -> Dict:
    """Sequential vs batched handling of the *same* request stream.

    Tree A is driven sequentially while the stream is recorded as
    tree-independent specs; tree B (a twin built identically) replays
    the stream through ``handle_batch`` in ``batch_size`` chunks via a
    lazily-resolved :class:`TreeMirror`.  Outcomes, grant tallies and
    move counters must match exactly — that equality is this PR's
    batch-semantics contract — and both wall clocks are reported.
    """
    mix_map = _MIXES[mix]()
    tree_a = _build(topology, n, seed, True)
    tree_b = _build(topology, n, seed, True)
    u, m, w = 4 * n, 4 * n, max(n // 4, 1)
    ctrl_a = IteratedController(tree_a, m=m, w=w, u=u)
    ctrl_b = IteratedController(tree_b, m=m, w=w, u=u)

    rng = random.Random(seed)
    picker = NodePicker(tree_a)
    mirror = TreeMirror(tree_b)
    outcomes_a = []
    specs = []
    start = time.perf_counter()
    sequential_time = 0.0
    for _ in range(steps):
        request = random_request(tree_a, rng, mix=mix_map, picker=picker)
        specs.append(request_spec(request))
        t0 = time.perf_counter()
        outcomes_a.append(ctrl_a.handle(request))
        sequential_time += time.perf_counter() - t0
    generation_time = time.perf_counter() - start - sequential_time
    picker.detach()

    outcomes_b = []
    start = time.perf_counter()
    for base in range(0, len(specs), batch_size):
        chunk = specs[base:base + batch_size]
        outcomes_b.extend(ctrl_b.handle_batch(mirror.requests(chunk)))
    batched_time = time.perf_counter() - start
    mirror.detach()

    status_a = [o.status.value for o in outcomes_a]
    status_b = [o.status.value for o in outcomes_b]
    if status_a != status_b:
        first = next(i for i, (a, b) in enumerate(zip(status_a, status_b))
                     if a != b)
        raise AssertionError(
            f"batched outcome diverged at step {first}: "
            f"{status_a[first]} != {status_b[first]}"
        )
    if ctrl_a.counters.snapshot() != ctrl_b.counters.snapshot():
        raise AssertionError(
            f"batched counters diverged: {ctrl_b.counters.snapshot()} "
            f"!= {ctrl_a.counters.snapshot()}"
        )
    return {
        "scenario": "batch",
        "params": {"n": n, "steps": steps, "batch_size": batch_size,
                   "topology": topology, "mix": mix, "seed": seed},
        "sequential_ms": round(sequential_time * 1000, 3),
        "batched_ms": round(batched_time * 1000, 3),
        "generation_ms": round(generation_time * 1000, 3),
        "granted": ctrl_a.granted,
        "rejected": ctrl_a.rejected,
        "moves": ctrl_a.counters.total,
        "outcomes_identical": True,
        "counters_identical": True,
        "requests_per_sec_batched": round(
            steps / batched_time if batched_time > 0 else float("inf"), 1),
    }


# ----------------------------------------------------------------------
# scenario — the generic knob-driven run.
# ----------------------------------------------------------------------
def run_scenario_bench(topology: str = "random", controller: str = "iterated",
                       mix: str = "default", n: int = 500, steps: int = 1000,
                       batch_size: int = 1, seed: int = 0,
                       skip_ancestry: bool = True,
                       m_factor: int = 4, w_divisor: int = 4) -> Dict:
    """Run one controller/topology/mix combination at a given scale."""
    tree = _build(topology, n, seed, skip_ancestry)
    u = 4 * n
    m = m_factor * n
    w = max(n // w_divisor, 1)
    ctrl, submit, submit_batch = _controller(controller, tree, m, w, u)
    start = time.perf_counter()
    result = run_scenario(
        tree, submit, steps=steps, seed=seed, mix=_MIXES[mix](),
        batch_size=batch_size,
        submit_batch=submit_batch if batch_size > 1 else None,
    )
    elapsed = time.perf_counter() - start
    counters = ctrl.counters.snapshot()
    return {
        "scenario": "scenario",
        "params": {"topology": topology, "controller": controller,
                   "mix": mix, "n": n, "steps": steps,
                   "batch_size": batch_size, "seed": seed,
                   "skip_ancestry": skip_ancestry, "m": m, "w": w, "u": u},
        "granted": result.granted,
        "rejected": result.rejected,
        "cancelled": result.cancelled,
        "pending": result.pending,
        "counters": counters,
        "tree_size": tree.size,
        "wall_ms": round(elapsed * 1000, 3),
        "requests_per_sec": round(
            steps / elapsed if elapsed > 0 else float("inf"), 1),
    }


# ----------------------------------------------------------------------
# distributed_batch — the request queue of the distributed engine.
# ----------------------------------------------------------------------
def run_distributed_batch(sizes: Optional[List[int]] = None,
                          requests_per_node: float = 0.5,
                          seed: int = 0) -> Dict:
    """Pipeline a concurrent batch through the distributed controller.

    All requests are injected up front (``submit_batch``); agents
    interleave under the locking discipline and the scheduler runs to
    quiescence.  Reported: grant tallies, message counters, and the
    simulated-time compression vs serving the batch one request at a
    time (sequential lower bound: the sum of per-request round trips).
    """
    sizes = sizes or [200, 400]
    rows = []
    for n in sizes:
        tree = build_random_tree(n, seed=seed)
        rng = random.Random(seed + n)
        nodes = list(tree.nodes())
        count = max(int(n * requests_per_node), 1)
        requests = [
            Request(RequestKind.PLAIN, nodes[rng.randrange(len(nodes))])
            for _ in range(count)
        ]
        controller = DistributedController(tree, m=4 * n, w=n, u=2 * n)
        start = time.perf_counter()
        outcomes = controller.submit_batch(requests)
        elapsed = time.perf_counter() - start
        rows.append({
            "n": n,
            "requests": count,
            "granted": sum(1 for o in outcomes if o.granted),
            "rejected": controller.rejected,
            "messages": controller.counters.total,
            "simulated_time": round(controller.scheduler.now, 3),
            "wall_ms": round(elapsed * 1000, 3),
        })
    return {
        "scenario": "distributed_batch",
        "params": {"sizes": sizes, "requests_per_node": requests_per_node,
                   "seed": seed},
        "rows": rows,
    }


SCENARIOS = {
    "ancestry": run_ancestry,
    "move_complexity": run_move_complexity,
    "batch": run_batch,
    "scenario": run_scenario_bench,
    "distributed_batch": run_distributed_batch,
}
